"""§7.3 — "Can Tango adapt to system scale expansion?"

Shape claims: the LC QoS-guarantee satisfaction rate does not degrade as
the system grows (per-cluster load held constant); per-node BE throughput
stays roughly flat (no central bottleneck); and DSS-LC decision latency
remains a tiny fraction of the QoS targets at every size.
"""

from repro.experiments.scale_expansion import main as scale_main


def test_scale_expansion(once):
    result = once(scale_main)
    sizes = sorted(result)
    small, large = result[sizes[0]], result[sizes[-1]]

    # QoS holds (or improves) as the system grows 8x
    assert large["qos_rate"] >= small["qos_rate"] - 0.05

    # per-node throughput stays within 2x band (work-conserving scaling)
    ratio = large["throughput_per_node"] / max(small["throughput_per_node"], 1e-9)
    assert 0.5 <= ratio <= 2.0

    # decision latency stays far below the smallest QoS target (250 ms)
    for n, stats in result.items():
        assert stats["dss_decision_ms"] < 25.0, f"{n} clusters"
