"""Figure 12 — LC × BE algorithm pairing matrix.

Shape claims: DSS-LC yields the best LC QoS under every BE pairing and its
QoS barely moves across BE policies (HRM insulation); the DSS-LC × DCG-BE
cell is the best (or near-best) throughput pairing.
"""

import numpy as np

from repro.experiments.fig12 import BE_SET, LC_SET, run_fig12


def test_fig12_pairing(once):
    result = once(run_fig12, "multi")
    qos, thr = result["qos"], result["throughput"]

    # DSS-LC wins (or ties within noise) the QoS comparison for each BE policy
    wins = 0
    for be in BE_SET:
        best_lc = max(LC_SET, key=lambda lc: qos[(lc, be)])
        if qos[("dss-lc", be)] >= qos[(best_lc, be)] - 0.01:
            wins += 1
    assert wins >= 3  # at least 3 of 4 columns

    # LC results are insensitive to the BE policy under DSS-LC (HRM buffering)
    dss_row = [qos[("dss-lc", be)] for be in BE_SET]
    assert max(dss_row) - min(dss_row) < 0.08

    # the Tango pairing is at or near the top of the throughput matrix
    tango_cell = thr[("dss-lc", "dcg-be")]
    best = max(thr.values())
    assert tango_cell >= 0.9 * best
