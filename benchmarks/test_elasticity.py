"""§2.1 motivation — elasticity mechanism comparison.

Shape claims: D-VPA restores capacity orders of magnitude faster than both
K8s-native paths, with zero downtime and zero interruptions; the HPA path
is the slowest (sync period + cold start); native VPA interrupts workloads.
"""

from repro.experiments.elasticity import main as elasticity_main


def test_elasticity_mechanisms(once):
    result = once(elasticity_main)
    hpa, nvpa, dvpa = result["hpa"], result["native-vpa"], result["d-vpa"]

    # D-VPA reacts in tens of ms; both native paths take seconds
    assert dvpa.time_to_capacity_ms < 50.0
    assert nvpa.time_to_capacity_ms > 1_000.0
    assert hpa.time_to_capacity_ms > 1_000.0

    # ~100x speedup over either native mechanism
    assert nvpa.time_to_capacity_ms / dvpa.time_to_capacity_ms > 50.0
    assert hpa.time_to_capacity_ms / dvpa.time_to_capacity_ms > 50.0

    # disruption profile: only the delete-and-rebuild path interrupts
    assert dvpa.downtime_ms == 0.0 and dvpa.interrupts == 0
    assert nvpa.interrupts > 0 and nvpa.downtime_ms > 0.0
    assert hpa.downtime_ms == 0.0
