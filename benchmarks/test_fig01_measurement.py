"""Figure 1 — industrial edge-cloud measurement (motivation).

Shape claims: (a) LC-only deployments leave mean utilisation below ~20 %
even with diurnal peaks; (b) LC requests complete within roughly 300 ms.
"""

from repro.experiments.fig1 import main as fig1_main


def test_fig1_measurement(once):
    result = once(fig1_main)
    # (a) severe underutilisation when LC is hosted alone
    assert result["mean_utilization"] < 0.25
    assert result["peak_utilization"] < 0.5
    # the diurnal curve actually varies (peaks vs troughs)
    util = result["utilization"]
    assert max(util) > 2.0 * (min(util) + 1e-3)
    # (b) LC latency in the ~300 ms regime
    assert 50.0 <= result["mean_latency_ms"] <= 350.0
    assert result["p95_latency_ms"] <= 500.0
