"""Figure 10 — QoS re-assurance mechanism on/off under P1/P2/P3.

Shape claims: enabling re-assurance never hurts the LC QoS-guarantee
satisfaction rate, improves it under at least one pattern, and costs little
BE throughput.
"""

from repro.experiments.fig10 import main as fig10_main


def test_fig10_reassurance(once):
    result = once(fig10_main)
    improvements = 0
    for pattern, arms in result.items():
        q_with = arms["with"]["qos_rate"]
        q_without = arms["without"]["qos_rate"]
        # never clearly worse
        assert q_with >= q_without - 0.03, pattern
        if q_with > q_without + 1e-6:
            improvements += 1
        # BE throughput cost stays small
        t_with = arms["with"]["throughput"]
        t_without = arms["without"]["throughput"]
        assert t_with >= 0.85 * t_without, pattern
    assert improvements >= 1
