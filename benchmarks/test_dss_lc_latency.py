"""§7.2 — DSS-LC decision-latency scaling with node count.

Shape claims: decision time grows roughly linearly with the node count
(the paper reports 1.99 ms at 500 nodes and 3.98 ms at 1000 — a clean 2×),
and stays far below LC QoS targets.  Our absolute numbers are higher than
the paper's because the min-cost-max-flow solver runs in pure Python rather
than OR-Tools' C++ — see EXPERIMENTS.md.
"""

from repro.experiments.dss_latency import main as dss_main


def test_dss_lc_decision_latency(once):
    result = once(dss_main)
    # monotone growth in node count
    sizes = sorted(result)
    latencies = [result[n] for n in sizes]
    assert all(a < b for a, b in zip(latencies, latencies[1:]))
    # roughly-linear shape: 1000 nodes within ~1.5x-6x of 500 nodes
    ratio = result[1000] / result[500]
    assert 1.3 <= ratio <= 6.0
    # always far below the smallest LC QoS target (250 ms)
    assert max(latencies) < 125.0
