"""Design-choice ablations (beyond the paper's figures).

* re-assurance thresholds: the paper's (α, β) choice is no worse on QoS
  than loose thresholds;
* preemption machinery: removing BE expansion reduces utilisation; the
  full HRM stays best on the QoS × throughput frontier;
* DCG-BE reward mix η: the η=1 paper setting is competitive.
"""

from repro.experiments.ablations import (
    run_preemption_ablation,
    run_reward_ablation,
    run_threshold_ablation,
)


def test_threshold_ablation(once):
    result = once(run_threshold_ablation, "small")
    default = result["default (α=0.25, β=0.45)"]
    loose = result["loose (α=-0.5, β=0.9)"]
    assert default["qos_rate"] >= loose["qos_rate"] - 0.03
    # every variant still yields a functioning system
    assert all(v["throughput"] > 0 for v in result.values())


def test_preemption_ablation(once):
    result = once(run_preemption_ablation, "small")
    full = result["full HRM"]
    no_expand = result["no BE expansion"]
    # BE expansion is what soaks idle resources: removing it drops utilisation
    assert full["utilization"] > no_expand["utilization"]
    # full HRM keeps QoS at least as good as the crippled variants
    for name, arm in result.items():
        assert full["qos_rate"] >= arm["qos_rate"] - 0.05, name


def test_reward_ablation(once):
    result = once(run_reward_ablation, "multi")
    eta1 = result["eta=1.0"]["throughput"]
    best = max(v["throughput"] for v in result.values())
    # the paper's η=1 is competitive with the best mix
    assert eta1 >= 0.85 * best


def test_coordination_ablation(once):
    from repro.experiments.ablations import run_coordination_ablation

    result = once(run_coordination_ablation, "small")
    parallel = result["parallel (paper)"]
    coordinated = result["coordinated"]
    # the joint solve never oversubscribes links across types, so its QoS
    # is at least comparable to the paper's per-type-parallel default
    assert coordinated["qos_rate"] >= parallel["qos_rate"] - 0.05
    assert all(v["qos_rate"] > 0.5 for v in result.values())
