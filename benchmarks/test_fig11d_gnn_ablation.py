"""Figure 11(d) — GNN encoder ablation inside DCG-BE.

Shape claims: GraphSAGE is the strongest encoder for the scheduling policy;
message-passing encoders as a family are competitive with or better than
the no-GNN Native-A2C variant.
"""

from repro.experiments.fig11 import run_fig11d


def test_fig11d_gnn_ablation(once):
    result = once(run_fig11d, "multi")
    thr = {k: v["throughput"] for k, v in result.items()}
    # GraphSAGE is best or within noise of the best (strictly above native)
    best = max(thr.values())
    assert thr["graphsage"] >= 0.93 * best
    assert thr["graphsage"] >= thr["native"] * 0.98
    # every encoder still produces a functioning scheduler
    assert min(thr.values()) > 0
