"""Figure 11(c) — DCG-BE vs BE scheduling baselines.

Shape claims: the inter-cluster algorithms beat K8s-native's local-only
round-robin, and DCG-BE delivers the best long-term throughput of all.
"""

from repro.experiments.fig11 import run_fig11c


def test_fig11c_dcg_be(once):
    result = once(run_fig11c, "multi")
    thr = {k: v["throughput"] for k, v in result.items()}
    # DCG-BE is the best BE scheduler
    assert thr["dcg-be"] >= max(thr.values()) - 1e-9
    # inter-cluster scheduling beats the local-only K8s default
    assert thr["dcg-be"] > thr["k8s-native"]
    assert thr["load-greedy"] > thr["k8s-native"] * 0.95
    # DCG-BE leads GNN-SAC (paper: ≈ +9.3 %)
    assert thr["dcg-be"] > thr["gnn-sac"]
