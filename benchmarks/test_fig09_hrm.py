"""Figure 9 — HRM vs K8s-native under patterns P1/P2/P3.

Shape claims: HRM lifts overall utilisation under every pattern (Fig. 9(d))
by letting BE soak idle resources and LC preempt when needed, while
K8s-native's fixed partitions stay low and turbulent.
"""

from repro.experiments.fig9 import main as fig9_main


def test_fig9_hrm_effectiveness(once):
    result = once(fig9_main)
    for pattern, arms in result.items():
        with_hrm = arms["with_hrm"]["mean_overall"]
        without = arms["without_hrm"]["mean_overall"]
        # HRM clearly higher utilisation under every pattern
        assert with_hrm > without * 1.25, pattern
        # BE visibly occupies resources under HRM (idle-resource soaking)
        assert max(arms["with_hrm"]["be_utilization"]) > 0.1, pattern
    # the P3 (both random) pattern shows the largest relative gain or at
    # least a substantial one — co-location flexibility dominates there
    p3 = result["P3"]
    assert p3["with_hrm"]["mean_overall"] > 1.5 * p3["without_hrm"]["mean_overall"]
