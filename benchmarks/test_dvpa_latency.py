"""§7.1 — D-VPA scaling-operation latency vs native VPA.

Shape claims: one in-place D-VPA resize ≈ 23 ms; the delete-and-rebuild
path is ~100× slower and interrupts the container.
"""

from repro.experiments.dvpa_latency import main as dvpa_main


def test_dvpa_latency(once):
    result = once(dvpa_main)
    # ~23 ms per operation
    assert 10.0 <= result["dvpa_mean_ms"] <= 40.0
    # "approximately 100 times" faster than delete-and-rebuild
    assert 50.0 <= result["speedup"] <= 200.0
    # D-VPA never interrupts; the native path always does
    assert result["dvpa_interrupts"] == 0
    assert result["native_interrupts"] > 0
