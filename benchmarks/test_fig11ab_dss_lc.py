"""Figure 11(a,b) — DSS-LC vs LC scheduling baselines.

Shape claims: DSS-LC achieves the best QoS-guarantee satisfaction rate, a
competitive (lowest-band) average latency, and the fewest abandoned
requests; K8s-native round-robin trails it clearly.
"""

from repro.experiments.fig11 import run_fig11ab


def test_fig11ab_dss_lc(once):
    result = once(run_fig11ab, "small")
    dss = result["dss-lc"]
    # best (or tied-best) satisfaction rate across all baselines
    for name, arm in result.items():
        assert dss["qos_rate"] >= arm["qos_rate"] - 0.005, name
    # clearly above the K8s-native default
    assert dss["qos_rate"] > result["k8s-native"]["qos_rate"]
    # fewest abandoned requests
    assert dss["abandoned"] <= min(a["abandoned"] for a in result.values())
    # stability: per-period QoS never collapses
    assert min(dss["qos_per_period"]) > 0.5
