"""Figure 13 — Tango vs CERES vs DSACO (state-of-the-art comparison).

Shape claims (the paper's headline numbers):

* Tango's resource utilisation exceeds CERES's by a large margin
  (paper: +36.9 %);
* Tango's LC QoS-guarantee satisfaction rate beats DSACO's
  (paper: +11.3 %);
* Tango's long-term BE throughput beats CERES's (paper: +47.6 %).
"""

from repro.experiments.fig13 import main as fig13_main


def test_fig13_sota_comparison(once):
    result = once(fig13_main, "constrained")
    tango, ceres, dsaco = result["tango"], result["ceres"], result["dsaco"]

    # utilisation: Tango >> CERES (paper +36.9%; accept anything > +15%)
    assert tango["utilization"] > ceres["utilization"] * 1.15

    # QoS: Tango >= DSACO with a real margin
    assert tango["qos_rate"] > dsaco["qos_rate"]

    # throughput: Tango >> CERES (paper +47.6%; accept anything > +15%)
    assert tango["throughput"] > ceres["throughput"] * 1.15

    # Tango dominates or matches on every axis simultaneously
    assert tango["qos_rate"] >= max(ceres["qos_rate"], dsaco["qos_rate"]) - 0.03
