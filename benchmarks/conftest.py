"""Benchmark-suite configuration.

Every bench regenerates one of the paper's figures/tables via the harness in
:mod:`repro.experiments`, printing the same rows the paper reports and
asserting the *shape* claims (who wins, by roughly what factor).  Absolute
numbers differ from the paper — our substrate is a behaviour-level simulator
on one machine, not the authors' hybrid testbed — see EXPERIMENTS.md.

Simulation-driven benches run a single round: the simulations are
deterministic, so repeated timing rounds would only re-measure the same run.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _once(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _once
