"""Fig. 11(c)'s time axis — DCG-BE improves while training online.

Weak-shape claims only (online RL at bench horizons is noisy): the
cumulative-mean throughput of the learning agent does not collapse over
episodes, and by the second half it is competitive with the K8s-native
reference measured on the identical traces.
"""

import numpy as np

from repro.experiments.learning_curve import main as curve_main


def test_learning_curve(once):
    result = once(curve_main)
    learned = result["dcg_be"]
    static = result["k8s_native"]
    cumulative = result["dcg_be_cumulative_mean"]

    # training never collapses the policy: cumulative mean stays within
    # 25% of its starting level
    assert min(cumulative) >= 0.75 * cumulative[0]

    # second-half average is competitive with (or better than) the static
    # reference on the same traces
    half = len(learned) // 2
    late_learned = float(np.mean(learned[half:]))
    late_static = float(np.mean(static[half:]))
    assert late_learned >= 0.9 * late_static
