"""Runner path tests: distributed BE, drop caps, delay accounting."""

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig, SimulationRunner
from repro.workloads.spec import ServiceKind, default_catalog
from repro.workloads.trace import SyntheticTrace, TraceConfig, TraceRecord

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


def small_run(be_policy="k8s-native", lc_policy="k8s-native", manager="hrm",
              duration=6_000.0, **runner_kw):
    config = TangoConfig(
        manager=manager,
        lc_policy=lc_policy,
        be_policy=be_policy,
        reassurance_enabled=(manager == "hrm"),
        topology=TopologyConfig(n_clusters=3, workers_per_cluster=2, seed=2),
        runner=RunnerConfig(duration_ms=duration, **runner_kw),
    )
    trace = SyntheticTrace(
        TraceConfig(n_clusters=3, duration_ms=duration, seed=2,
                    lc_peak_rps=10.0, be_peak_rps=4.0)
    ).generate()
    system = TangoSystem(config)
    metrics = system.run(trace)
    return system, metrics


class TestDistributedBEPath:
    def test_dsaco_be_dispatch_is_distributed(self):
        system, metrics = small_run(be_policy="dsaco", lc_policy="dsaco",
                                    manager="static")
        runner = system.last_runner
        assert runner._be_distributed
        # the central forwarding queue is never used on this path
        assert len(runner._central_be) == 0
        assert metrics.be_completed > 0

    def test_centralised_be_pays_wan_forwarding(self):
        """BE requests forwarded to central carry non-trivial network delay."""
        from repro.metrics.collectors import PeriodCollector

        completed = []
        original = PeriodCollector.on_completion

        def hook(self, request):
            completed.append(request)
            return original(self, request)

        PeriodCollector.on_completion = hook
        try:
            system, _ = small_run()
        finally:
            PeriodCollector.on_completion = original
        central = system.system.central_cluster_id
        remote_be = [
            r for r in completed
            if not r.is_lc and r.origin_cluster != central
        ]
        if remote_be:  # topology-dependent, but typically non-empty
            assert all(r.network_delay_ms > 1.0 for r in remote_be)


class TestRequeueBounds:
    def test_be_drop_after_max_reschedules(self):
        """A BE request evicted too often is eventually dropped, not looped."""
        system, metrics = small_run(max_be_reschedules=0)
        runner = system.last_runner
        if metrics.be_evictions > 0:
            assert runner.dropped_be > 0
            assert runner.dropped_be <= metrics.be_evictions

    def test_requeue_disabled_drops_immediately(self):
        system, metrics = small_run(requeue_evicted_be=False)
        runner = system.last_runner
        assert runner.dropped_be == metrics.be_evictions


class TestTraceHandling:
    def test_unknown_service_records_skipped(self):
        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=0),
            runner=RunnerConfig(duration_ms=2_000.0),
        )
        bogus = TraceRecord(
            time_ms=10.0, cluster_id=0, service="no-such-service",
            kind=ServiceKind.LC, cpu=1.0, memory=100.0,
        )
        real = TraceRecord(
            time_ms=20.0, cluster_id=0, service=LC.name,
            kind=ServiceKind.LC, cpu=1.0, memory=100.0,
        )
        metrics = TangoSystem(config).run([bogus, real])
        assert metrics.lc_arrived == 1

    def test_cluster_id_wrapped_into_range(self):
        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=0),
            runner=RunnerConfig(duration_ms=2_000.0),
        )
        record = TraceRecord(
            time_ms=10.0, cluster_id=7, service=LC.name,
            kind=ServiceKind.LC, cpu=1.0, memory=100.0,
        )
        system = TangoSystem(config)
        metrics = system.run([record])
        assert metrics.lc_arrived == 1  # 7 % 2 == cluster 1

    def test_unsorted_trace_accepted(self):
        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=0),
            runner=RunnerConfig(duration_ms=2_000.0),
        )
        records = [
            TraceRecord(time_ms=t, cluster_id=0, service=LC.name,
                        kind=ServiceKind.LC, cpu=1.0, memory=100.0)
            for t in (500.0, 10.0, 250.0)
        ]
        metrics = TangoSystem(config).run(records)
        assert metrics.lc_arrived == 3


class TestSACPersistence:
    def test_sac_save_load_roundtrip(self, rng, tmp_path):
        import numpy as np

        from repro.nn.sac import SACAgent, SACConfig

        cfg = SACConfig(hidden=(8,), encoder_hidden=(8,))
        agent = SACAgent(4, rng, config=cfg)
        agent.save(tmp_path / "sac")
        clone = SACAgent(4, np.random.default_rng(123), config=cfg)
        clone.load(tmp_path / "sac")
        for p1, p2 in zip(agent.optimizer.params, clone.optimizer.params):
            assert np.allclose(p1, p2)
        # target nets re-synced to the restored live heads
        for live, tgt in zip(clone.q1.net.params, clone.q1_target.net.params):
            assert np.allclose(live, tgt)
