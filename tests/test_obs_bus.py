"""Unit tests for the observability event bus (repro.obs.bus)."""

import pytest

from repro.obs.bus import EventBus
from repro.obs.events import (
    NodeCrashed,
    RequestArrived,
    RequestCompleted,
    RequestScheduled,
)


def arrived(i, t=0.0):
    return RequestArrived(time_ms=t, request_id=i, service="svc", lc=True)


class TestSubscription:
    def test_typed_handler_sees_only_its_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(RequestArrived, seen.append)
        bus.publish(arrived(1))
        bus.publish(NodeCrashed(time_ms=1.0, node="w0"))
        assert [e.request_id for e in seen] == [1]

    def test_wildcard_handler_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        bus.publish(arrived(1))
        bus.publish(NodeCrashed(time_ms=1.0, node="w0"))
        assert [e.kind for e in seen] == ["request.arrived", "failure.node_crashed"]

    def test_dispatch_order_is_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(RequestArrived, lambda e: order.append("first"))
        bus.subscribe(RequestArrived, lambda e: order.append("second"))
        bus.subscribe(None, lambda e: order.append("wildcard"))
        bus.publish(arrived(1))
        # typed handlers run before wildcards, each in subscription order
        assert order == ["first", "second", "wildcard"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(RequestArrived, seen.append)
        bus.publish(arrived(1))
        bus.unsubscribe(RequestArrived, handler)
        bus.publish(arrived(2))
        assert len(seen) == 1

    def test_subscribe_many(self):
        bus = EventBus()
        seen = []
        bus.subscribe_many(
            {RequestArrived: seen.append, RequestCompleted: seen.append}
        )
        bus.publish(arrived(1))
        bus.publish(RequestCompleted(time_ms=1.0, request_id=1))
        assert len(seen) == 2

    def test_late_subscription_invalidates_dispatch_cache(self):
        bus = EventBus()
        first, second = [], []
        bus.subscribe(RequestArrived, first.append)
        bus.publish(arrived(1))  # caches the handler tuple
        bus.subscribe(RequestArrived, second.append)
        bus.publish(arrived(2))
        assert len(first) == 2 and len(second) == 1


class TestRingAndCounts:
    def test_ring_bounded_but_counts_are_not(self):
        bus = EventBus(capacity=4)
        for i in range(10):
            bus.publish(arrived(i))
        assert len(bus.events()) == 4
        assert [e.request_id for e in bus.events()] == [6, 7, 8, 9]
        assert bus.count(RequestArrived) == 10
        assert bus.count("request.arrived") == 10
        assert bus.published == 10

    def test_events_filtered_by_class(self):
        bus = EventBus()
        bus.publish(arrived(1))
        bus.publish(NodeCrashed(time_ms=1.0, node="w0"))
        assert len(bus.events(NodeCrashed)) == 1
        assert len(bus.events(RequestArrived, NodeCrashed)) == 2

    def test_tail(self):
        bus = EventBus()
        for i in range(5):
            bus.publish(arrived(i))
        assert [e.request_id for e in bus.tail(2)] == [3, 4]
        assert bus.tail(0) == []

    def test_clear_keeps_subscriptions(self):
        bus = EventBus()
        seen = []
        bus.subscribe(RequestArrived, seen.append)
        bus.publish(arrived(1))
        bus.clear()
        assert bus.published == 0 and bus.events() == []
        bus.publish(arrived(2))
        assert len(seen) == 2

    def test_counts_snapshot(self):
        bus = EventBus()
        bus.publish(arrived(1))
        bus.publish(arrived(2))
        assert bus.counts() == {"request.arrived": 2}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)


class TestEventToDict:
    def test_to_dict_excludes_request_reference(self):
        ev = RequestScheduled(
            time_ms=5.0, request_id=3, service="svc", node="w1",
            cost_ms=12.5, request=object(),
        )
        d = ev.to_dict()
        assert d["kind"] == "request.scheduled"
        assert d["cost_ms"] == 12.5
        assert "request" not in d

    def test_kind_is_class_level(self):
        assert RequestArrived.kind == "request.arrived"
        assert NodeCrashed.kind == "failure.node_crashed"
