"""End-to-end tests for the observability subsystem on real runs.

The core guarantee: with ``RunnerConfig(observe=True)`` the runner routes
the lifecycle through the bus and the collector bridge replays the exact
call sequence of the direct path — so RunMetrics fingerprints must stay
bit-identical to the seed recordings, while traces, the metric registry,
and the kube audit stream all populate from the same event stream.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.kube.events import Reason
from repro.obs.events import DispatchRound, PeriodSampled
from repro.sim.runner import RunnerConfig, SimulationRunner
from repro.workloads.trace import SyntheticTrace, TraceConfig

DATA = os.path.join(os.path.dirname(__file__), "data", "seed_metrics.json")


def fingerprint(metrics) -> dict:
    # mirrors tests/test_perf_determinism.py — the seed fingerprint shape
    return {
        "lc_arrived": metrics.lc_arrived,
        "lc_completed": metrics.lc_completed,
        "lc_satisfied": metrics.lc_satisfied,
        "lc_abandoned": metrics.lc_abandoned,
        "be_arrived": metrics.be_arrived,
        "be_completed": metrics.be_completed,
        "be_evictions": metrics.be_evictions,
        "lc_latency_sum": round(sum(metrics.lc_latencies_ms), 6),
        "utilization": [round(u, 12) for u in metrics.utilization],
        "qos_rate_per_period": [round(r, 12) for r in metrics.qos_rate_per_period],
        "per_service": {k: list(v) for k, v in sorted(metrics.per_service.items())},
    }


def observed_run(factory=TangoConfig.tango, *, clusters=3, workers=3,
                 duration=8_000.0, seed=1, lc=15.0, be=5.0, **runner_kwargs):
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=clusters, duration_ms=duration, seed=seed,
            lc_peak_rps=lc, be_peak_rps=be,
        )
    ).generate()
    cfg = factory(
        topology=TopologyConfig(
            n_clusters=clusters, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(
            duration_ms=duration, observe=True, **runner_kwargs
        ),
    )
    system = TangoSystem(cfg)
    metrics = system.run(trace)
    return system, metrics


@pytest.fixture(scope="module")
def recorded():
    with open(DATA) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def tango_run():
    """One shared observed tango run (module-scoped: runs take seconds)."""
    return observed_run(record_events=True)


class TestDeterminismParity:
    """Observability on must not perturb scheduling outcomes."""

    def test_tango_fingerprint_unchanged(self, recorded, tango_run):
        _, metrics = tango_run
        assert fingerprint(metrics) == recorded["tango_small"]

    def test_k8s_native_fingerprint_unchanged(self, recorded):
        _, metrics = observed_run(TangoConfig.k8s_native)
        assert fingerprint(metrics) == recorded["k8s_native_small"]


class TestTraces:
    def test_every_completed_request_has_full_span_chain(self, tango_run):
        system, metrics = tango_run
        tracer = system.last_runner.hub.tracer
        completed = tracer.completed()
        assert len(completed) == metrics.lc_completed + metrics.be_completed
        required = {"master_queue", "schedule", "ship", "node_queue",
                    "execute", "complete"}
        for trace in completed:
            names = trace.span_names()
            assert names[0] == "master_queue"
            assert names[-1] == "complete"
            assert required.issubset(names), (
                f"request {trace.request_id} missing spans: "
                f"{required - set(names)}"
            )
            assert all(s.end_ms is not None for s in trace.spans)

    def test_trace_jsonl_round_trips(self, tango_run, tmp_path):
        system, _ = tango_run
        tracer = system.last_runner.hub.tracer
        path = tmp_path / "traces.jsonl"
        written = tracer.write_jsonl(str(path), status="completed")
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert written == len(rows) == len(tracer.completed())
        assert all(r["status"] == "completed" for r in rows)


class TestMetricsRegistry:
    def test_counters_agree_with_run_metrics(self, tango_run):
        system, metrics = tango_run
        reg = system.last_runner.hub.registry
        arrived = reg.get("requests_arrived_total")
        assert arrived.value(kind="lc") == metrics.lc_arrived
        assert arrived.value(kind="be") == metrics.be_arrived
        completed = reg.get("requests_completed_total")
        assert completed.value(kind="lc") == metrics.lc_completed
        assert completed.value(kind="be") == metrics.be_completed
        latency = reg.get("lc_latency_ms")
        assert latency.count() == len(metrics.lc_latencies_ms)
        assert latency.sum() == pytest.approx(sum(metrics.lc_latencies_ms))

    def test_period_gauges_sampled(self, tango_run):
        system, metrics = tango_run
        hub = system.last_runner.hub
        assert hub.periods == len(metrics.utilization)
        assert hub.bus.count(PeriodSampled) == hub.periods
        util = hub.registry.get("utilization")
        assert util is not None
        # the last sampled system utilization matches the collector's
        assert util.value(kind="system") == pytest.approx(
            metrics.utilization[-1]
        )
        assert hub.registry.get("node_queue_depth") is not None

    def test_prometheus_export_parses(self, tango_run):
        system, _ = tango_run
        text = system.last_runner.hub.registry.to_prometheus()
        typed = set()
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE"):
                _, _, name, mtype = line.split(" ")
                assert mtype in ("counter", "gauge", "histogram")
                typed.add(name)
                continue
            if line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            if value_part != "+Inf":
                float(value_part)
            base = name_part.split("{", 1)[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
                    break
            assert base in typed, f"sample {base} missing a # TYPE header"
        assert "tango_requests_arrived_total" in typed
        assert "tango_lc_latency_ms" in typed


class TestBusTraffic:
    def test_scheduler_dispatch_rounds_published(self, tango_run):
        system, _ = tango_run
        bus = system.last_runner.hub.bus
        rounds = bus.events(DispatchRound)
        schedulers = {ev.scheduler for ev in rounds}
        assert "dss-lc" in schedulers
        assert "dcg-be" in schedulers
        assert all(ev.assigned <= ev.offered for ev in rounds)

    def test_hrm_events_flow(self, tango_run):
        system, _ = tango_run
        counts = system.last_runner.hub.bus.counts()
        # tango's HRM resizes LC allocations constantly on a loaded system
        assert counts.get("hrm.dvpa_resized", 0) > 0

    def test_recorder_fed_through_bridge(self, tango_run):
        system, metrics = tango_run
        recorder = system.last_runner.events
        assert recorder is not None
        # one Scheduled emission per shipped assignment, dedup-counted
        assert recorder.count(Reason.SCHEDULED) >= metrics.lc_completed
        assert recorder.events(Reason.SCHEDULED)  # entries survived dedup


class TestDisabledPath:
    def test_disabled_run_has_no_observability_state(self):
        cfg = TangoConfig.tango(
            topology=TopologyConfig(
                n_clusters=2, workers_per_cluster=2, seed=0
            ),
            runner=RunnerConfig(duration_ms=500.0),
        )
        system = TangoSystem(cfg)
        trace = SyntheticTrace(
            TraceConfig(n_clusters=2, duration_ms=500.0, seed=0)
        ).generate()
        system.run(trace)
        runner = system.last_runner
        assert runner.hub is None and runner.bus is None
        assert runner.events is None
        assert system.lc_scheduler.bus is None

    def test_rewire_resets_bus_on_shared_publishers(self):
        """Publishers are reused across runs: a disabled run must not
        inherit the previous run's bus."""
        system, _ = observed_run(clusters=2, workers=2, duration=500.0)
        assert system.lc_scheduler.bus is not None
        # building a disabled runner over the same system resets every bus
        SimulationRunner(
            system.system, [], system.catalog,
            system.lc_scheduler, system.be_scheduler,
            config=RunnerConfig(duration_ms=500.0),
            state_storage=system.storage,
            reassurance=system.reassurance,
        )
        assert system.lc_scheduler.bus is None
        assert system.be_scheduler.bus is None
        assert system.manager.bus is None


class TestCli:
    def test_trace_command_emits_jsonl(self, capsys):
        from repro.cli import main

        rc = main([
            "trace", "--clusters", "2", "--workers", "2",
            "--duration", "2", "--status", "completed", "--limit", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines()]
        assert 0 < len(rows) <= 5
        for row in rows:
            assert row["status"] == "completed"
            assert [s["name"] for s in row["spans"]][-1] == "complete"

    def test_trace_metrics_out_prom(self, capsys, tmp_path):
        from repro.cli import main

        prom = tmp_path / "m.prom"
        rc = main([
            "trace", "--clusters", "2", "--workers", "2", "--duration", "2",
            "--limit", "1", "--metrics-out", str(prom),
        ])
        assert rc == 0
        text = prom.read_text()
        assert "# TYPE tango_requests_arrived_total counter" in text

    def test_bench_json(self, capsys):
        from repro.cli import main

        rc = main(["bench", "--json", "--duration", "1", "--clusters", "2"])
        assert rc == 0
        result = json.loads(capsys.readouterr().out)
        assert result["ticks"] > 0
        assert result["ticks_per_sec"] > 0
        assert "stage_ms" in result
