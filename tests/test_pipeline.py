"""Tick-pipeline decomposition: stages, wiring, remap counting, drop cap.

The runner's per-tick control flow is a list of stage objects sharing one
``SimContext`` — profiled and unprofiled runs drive the *same* loop, with
profiling as a wrapper.  These tests pin the stage contract (names, order,
profiler keys), the idempotent publisher wiring, the trace-remap counter,
and the BE requeue drop cap.
"""

from __future__ import annotations

import inspect
import logging

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.obs.events import RequestDropped, RequestRequeued
from repro.sim.failures import FailureConfig
from repro.sim.pipeline import STAGE_NAMES, requeue_evicted
from repro.sim.request import ServiceRequest
from repro.sim.runner import RunnerConfig, SimulationRunner
from repro.workloads.spec import ServiceKind, default_catalog
from repro.workloads.trace import SyntheticTrace, TraceConfig, TraceRecord


def small_system(factory=TangoConfig.tango, *, clusters=2, workers=2,
                 duration_ms=2_000.0, seed=0, **runner_kwargs):
    config = factory(
        topology=TopologyConfig(
            n_clusters=clusters, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(duration_ms=duration_ms, **runner_kwargs),
    )
    return TangoSystem(config)


def small_trace(*, clusters=2, duration_ms=2_000.0, seed=0):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=clusters, duration_ms=duration_ms, seed=seed,
            lc_peak_rps=10.0, be_peak_rps=4.0,
        )
    ).generate()


def build_runner(system, trace):
    return SimulationRunner(
        system.system,
        trace,
        system.catalog,
        system.lc_scheduler,
        system.be_scheduler,
        config=system.config.runner,
        state_storage=system.storage,
        reassurance=system.reassurance,
    )


class TestStageDecomposition:
    def test_stage_names_without_injector(self):
        system = small_system()
        runner = build_runner(system, [])
        expected = [
            n for n in STAGE_NAMES if n not in ("failures", "invariants")
        ]
        assert runner.pipeline.stage_names() == expected

    def test_failures_stage_present_with_injector(self):
        system = small_system(failures=FailureConfig())
        runner = build_runner(system, [])
        expected = [n for n in STAGE_NAMES if n != "invariants"]
        assert runner.pipeline.stage_names() == expected

    def test_all_stages_present_with_checker_and_injector(self):
        system = small_system(
            failures=FailureConfig(), check_invariants=True
        )
        runner = build_runner(system, [])
        assert runner.pipeline.stage_names() == list(STAGE_NAMES)

    def test_profiled_and_unprofiled_share_one_loop(self):
        # profiling is a wrapper around the same pipeline; the old
        # hand-rolled duplicate of the tick sequence is gone.
        source = inspect.getsource(SimulationRunner.run)
        assert source.count("run_tick") == 1
        for legacy in ("_inject_arrivals", "_dispatch_lc", "_dispatch_be",
                       "_step_nodes", "_apply_failures"):
            assert legacy not in source

    def test_profiler_covers_every_stage(self):
        system = small_system(profile=True)
        trace = small_trace()
        metrics = system.run(trace)
        assert metrics.lc_arrived > 0
        stage_ms = system.last_runner.profiler.stage_ms()
        expected = set(STAGE_NAMES) - {"failures", "invariants"}
        assert expected.issubset(stage_ms)

    def test_profiled_run_matches_unprofiled(self):
        trace = small_trace()
        plain = small_system().run(trace)
        profiled = small_system(profile=True).run(trace)
        assert plain.lc_completed == profiled.lc_completed
        assert plain.be_completed == profiled.be_completed
        assert sum(plain.lc_latencies_ms) == sum(profiled.lc_latencies_ms)


class TestPublisherWiring:
    def test_wiring_is_idempotent(self):
        system = small_system(observe=True)
        runner = build_runner(system, [])
        emitter = system.lc_scheduler.emitter
        bus = system.lc_scheduler.bus
        runner._wire_publishers()  # wiring twice must change nothing
        assert system.lc_scheduler.emitter is emitter
        assert system.lc_scheduler.bus is bus

    def test_shared_dsaco_wired_once_for_both_roles(self):
        system = small_system(TangoConfig.dsaco, observe=True)
        runner = build_runner(system, [])
        assert system.lc_scheduler is system.be_scheduler
        assert system.lc_scheduler.emitter is runner.emitter
        assert system.lc_scheduler.bus is runner.bus

    def test_rewire_resets_schedulers_and_reassurance(self):
        """One system reused across observe-on and observe-off runs: the
        second (disabled) run must reset every publisher, including the
        schedulers and the re-assurance mechanism."""
        system = small_system(observe=True)
        trace = small_trace()
        system.run(trace)
        assert system.lc_scheduler.bus is not None
        assert system.be_scheduler.bus is not None
        assert system.reassurance is not None
        assert system.reassurance.bus is not None
        assert system.manager.bus is not None

        # same system, observability off
        system.config.runner.observe = False
        metrics = system.run(trace)
        assert metrics.lc_arrived > 0
        runner = system.last_runner
        assert runner.bus is None
        for publisher in (system.lc_scheduler, system.be_scheduler,
                          system.reassurance, system.manager):
            assert publisher.bus is None
            assert publisher.emitter is runner.emitter
            assert not publisher.emitter.enabled


class TestBERequeueDropCap:
    def _runner_and_request(self, **runner_kwargs):
        system = small_system(observe=True, **runner_kwargs)
        runner = build_runner(system, [])
        be_spec = next(s for s in system.catalog
                       if s.kind is ServiceKind.BE)
        request = ServiceRequest(spec=be_spec, origin_cluster=0,
                                 arrival_ms=0.0)
        return runner, request

    def test_request_over_cap_dropped_exactly_once(self):
        runner, request = self._runner_and_request()
        ctx = runner.ctx
        cap = runner.config.max_be_reschedules
        request.reschedules = cap  # the next requeue attempt exceeds it
        queue_before = len(runner.system.cluster(0).be_queue)

        requeue_evicted(ctx, request, now_ms=100.0)

        assert runner.dropped_be == 1
        # not silently requeued after the drop
        assert len(runner.system.cluster(0).be_queue) == queue_before
        drops = runner.bus.events(RequestDropped)
        assert len(drops) == 1
        assert drops[0].request_id == request.request_id
        assert drops[0].reschedules == cap + 1
        assert runner.bus.count(RequestRequeued) == 0

    def test_request_under_cap_requeued_not_dropped(self):
        runner, request = self._runner_and_request()
        ctx = runner.ctx
        request.reschedules = runner.config.max_be_reschedules - 1

        requeue_evicted(ctx, request, now_ms=100.0)

        assert runner.dropped_be == 0
        assert request in runner.system.cluster(0).be_queue
        assert runner.bus.count(RequestDropped) == 0
        assert runner.bus.count(RequestRequeued) == 1

    def test_requeue_disabled_drops_immediately(self):
        runner, request = self._runner_and_request(requeue_evicted_be=False)
        requeue_evicted(runner.ctx, request, now_ms=50.0)
        assert runner.dropped_be == 1
        assert runner.bus.count(RequestDropped) == 1


class TestTraceRemap:
    def _remap_trace(self, catalog):
        lc = next(s for s in catalog if s.is_lc)
        rows = []
        for i in range(6):
            # cluster 5 does not exist in a 2-cluster topology
            cluster = 5 if i % 2 else 0
            rows.append(TraceRecord(
                time_ms=10.0 * i, cluster_id=cluster, service=lc.name,
                kind=lc.kind, cpu=1.0, memory=1.0,
            ))
        return rows

    def test_remapped_arrivals_counted_and_warned_once(self, caplog):
        system = small_system(duration_ms=500.0)
        trace = self._remap_trace(system.catalog)
        with caplog.at_level(logging.WARNING, logger="repro.sim.pipeline"):
            metrics = system.run(trace)
        assert metrics.trace_remapped == 3
        assert metrics.lc_arrived == 6  # remapped requests still arrive
        warnings = [r for r in caplog.records
                    if "remapping" in r.getMessage()]
        assert len(warnings) == 1

    def test_clean_trace_reports_zero(self):
        system = small_system(duration_ms=500.0)
        trace = small_trace(duration_ms=500.0)
        metrics = system.run(trace)
        assert metrics.trace_remapped == 0
