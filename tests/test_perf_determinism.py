"""Determinism pin for the hot-path performance layer.

The snapshot index, active-set stepping, pooled MCMF arenas, batched
GraphSAGE sampling, and memoized latency model are all required to leave
scheduling outcomes *bit-identical* — same seeds, same RunMetrics.  The
fingerprints in ``tests/data/seed_metrics.json`` were recorded against the
pre-refactor tree (``scripts/record_seed_metrics.py``); any drift here
means an optimisation changed behaviour, not just speed.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

DATA = os.path.join(os.path.dirname(__file__), "data", "seed_metrics.json")


def fingerprint(metrics) -> dict:
    return {
        "lc_arrived": metrics.lc_arrived,
        "lc_completed": metrics.lc_completed,
        "lc_satisfied": metrics.lc_satisfied,
        "lc_abandoned": metrics.lc_abandoned,
        "be_arrived": metrics.be_arrived,
        "be_completed": metrics.be_completed,
        "be_evictions": metrics.be_evictions,
        "lc_latency_sum": round(sum(metrics.lc_latencies_ms), 6),
        "utilization": [round(u, 12) for u in metrics.utilization],
        "qos_rate_per_period": [round(r, 12) for r in metrics.qos_rate_per_period],
        "per_service": {k: list(v) for k, v in sorted(metrics.per_service.items())},
    }


def run_case(factory, *, clusters=3, workers=3, duration=8_000.0, seed=1,
             lc=15.0, be=5.0):
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=clusters, duration_ms=duration, seed=seed,
            lc_peak_rps=lc, be_peak_rps=be,
        )
    ).generate()
    cfg = factory(
        topology=TopologyConfig(
            n_clusters=clusters, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(duration_ms=duration),
    )
    return fingerprint(TangoSystem(cfg).run(trace))


@pytest.fixture(scope="module")
def recorded():
    with open(DATA) as fh:
        return json.load(fh)


class TestBitIdenticalToSeed:
    def test_tango_small(self, recorded):
        assert run_case(TangoConfig.tango) == recorded["tango_small"]

    def test_k8s_native_small(self, recorded):
        assert run_case(TangoConfig.k8s_native) == recorded["k8s_native_small"]

    def test_dsaco_small(self, recorded):
        assert run_case(TangoConfig.dsaco) == recorded["dsaco_small"]

    def test_tango_mid(self, recorded):
        got = run_case(
            TangoConfig.tango, clusters=6, workers=5, duration=6_000.0,
            seed=7, lc=40.0, be=12.0,
        )
        assert got == recorded["tango_mid"]
