"""Min-cost max-flow solver tests, including cross-checks vs networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.mcmf import MinCostMaxFlow


class TestBasics:
    def test_single_edge(self):
        net = MinCostMaxFlow(2)
        net.add_edge(0, 1, 5, 3)
        result = net.solve(0, 1)
        assert result.flow == 5
        assert result.cost == 15

    def test_two_parallel_paths_prefers_cheap(self):
        net = MinCostMaxFlow(4)
        net.add_edge(0, 1, 10, 1)
        net.add_edge(1, 3, 10, 1)
        net.add_edge(0, 2, 10, 5)
        net.add_edge(2, 3, 10, 5)
        result = net.solve(0, 3, max_flow=10)
        assert result.flow == 10
        assert result.cost == 10 * 2  # everything over the cheap path

    def test_spill_to_expensive_path(self):
        net = MinCostMaxFlow(4)
        e_cheap1 = net.add_edge(0, 1, 4, 1)
        net.add_edge(1, 3, 4, 1)
        e_exp1 = net.add_edge(0, 2, 10, 5)
        net.add_edge(2, 3, 10, 5)
        result = net.solve(0, 3, max_flow=6)
        assert result.flow == 6
        assert result.edge_flows[e_cheap1] == 4
        assert result.edge_flows[e_exp1] == 2
        assert result.cost == 4 * 2 + 2 * 10

    def test_max_flow_bounded_by_cut(self):
        net = MinCostMaxFlow(3)
        net.add_edge(0, 1, 3, 0)
        net.add_edge(1, 2, 100, 0)
        assert net.solve(0, 2).flow == 3

    def test_disconnected_graph_zero_flow(self):
        net = MinCostMaxFlow(4)
        net.add_edge(0, 1, 5, 1)
        net.add_edge(2, 3, 5, 1)
        result = net.solve(0, 3)
        assert result.flow == 0
        assert result.cost == 0

    def test_flow_conservation(self):
        net = MinCostMaxFlow(5)
        net.add_edge(0, 1, 4, 1)
        net.add_edge(0, 2, 4, 2)
        net.add_edge(1, 3, 3, 1)
        net.add_edge(2, 3, 5, 1)
        net.add_edge(1, 2, 2, 0)
        net.add_edge(3, 4, 6, 1)
        net.solve(0, 4)
        assert net.flow_conservation_violations(0, 4) == {}

    def test_negative_cost_edge(self):
        net = MinCostMaxFlow(3)
        net.add_edge(0, 1, 2, -5)
        net.add_edge(1, 2, 2, 1)
        result = net.solve(0, 2)
        assert result.flow == 2
        assert result.cost == 2 * (-5) + 2 * 1


class TestValidation:
    def test_rejects_bad_node(self):
        net = MinCostMaxFlow(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1, 1)

    def test_rejects_negative_capacity(self):
        net = MinCostMaxFlow(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 1)

    def test_rejects_same_source_sink(self):
        net = MinCostMaxFlow(2)
        with pytest.raises(ValueError):
            net.solve(1, 1)

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            MinCostMaxFlow(0)


@st.composite
def random_networks(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=1, max_value=16))
    edges = []
    seen = set()
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v or (u, v) in seen:
            # parallel (u, v) edges with different costs cannot be expressed
            # in a simple nx.DiGraph, so keep one edge per ordered pair
            continue
        seen.add((u, v))
        cap = draw(st.integers(min_value=0, max_value=20))
        cost = draw(st.integers(min_value=0, max_value=50))
        edges.append((u, v, cap, cost))
    return n, edges


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_networks())
    def test_matches_networkx_max_flow_min_cost(self, net_spec):
        n, edges = net_spec
        if not edges:
            return
        ours = MinCostMaxFlow(n)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for u, v, cap, cost in edges:
            ours.add_edge(u, v, cap, cost)
            graph.add_edge(u, v, capacity=cap, weight=cost)
        source, sink = 0, n - 1
        result = ours.solve(source, sink)
        nx_flow_value = nx.maximum_flow_value(graph, source, sink)
        assert result.flow == nx_flow_value
        if nx_flow_value > 0:
            nx_dict = nx.max_flow_min_cost(graph, source, sink)
            nx_cost = nx.cost_of_flow(graph, nx_dict)
            assert result.cost == nx_cost

    @settings(max_examples=40, deadline=None)
    @given(random_networks())
    def test_conservation_always_holds(self, net_spec):
        n, edges = net_spec
        if not edges:
            return
        net = MinCostMaxFlow(n)
        for u, v, cap, cost in edges:
            net.add_edge(u, v, cap, cost)
        net.solve(0, n - 1)
        assert net.flow_conservation_violations(0, n - 1) == {}
