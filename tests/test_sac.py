"""Discrete SAC agent tests."""

import numpy as np
import pytest

from repro.nn.gnn import adjacency_from_edges
from repro.nn.sac import SACAgent, SACConfig, SACTransition


def tiny_sac(rng, **kw):
    cfg = SACConfig(
        hidden=(16, 8),
        encoder_hidden=(8,),
        batch_size=kw.pop("batch_size", 8),
        train_interval=kw.pop("train_interval", 8),
        buffer_size=kw.pop("buffer_size", 64),
        **kw,
    )
    return SACAgent(4, rng, config=cfg)


def ring(n):
    return adjacency_from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def transition(rng, n=3, action=0, reward=1.0, terminal=False):
    feats = rng.normal(size=(n, 4))
    nxt = None if terminal else rng.normal(size=(n, 4))
    return SACTransition(
        features=feats,
        adj=ring(n),
        mask=None,
        action=action,
        reward=reward,
        next_features=nxt,
        next_adj=None if terminal else ring(n),
        next_mask=None,
    )


class TestActing:
    def test_action_in_range(self, rng):
        agent = tiny_sac(rng)
        for _ in range(5):
            a = agent.act(rng.normal(size=(6, 4)), ring(6))
            assert 0 <= a < 6

    def test_mask_respected(self, rng):
        agent = tiny_sac(rng)
        mask = np.array([0, 1, 0], dtype=bool)
        for _ in range(5):
            assert agent.act(rng.normal(size=(3, 4)), ring(3), mask) == 1


class TestLearning:
    def test_training_fires_after_buffer_fills(self, rng):
        agent = tiny_sac(rng, batch_size=4, train_interval=4)
        fired = [agent.record(transition(rng)) for _ in range(8)]
        assert any(fired)
        assert agent.train_steps >= 1

    def test_buffer_bounded(self, rng):
        agent = tiny_sac(rng, buffer_size=16, batch_size=4, train_interval=1000)
        for _ in range(40):
            agent.record(transition(rng))
        assert len(agent._buffer) == 16

    def test_terminal_transition_target_is_reward(self, rng):
        agent = tiny_sac(rng)
        t = transition(rng, reward=2.5, terminal=True)
        assert agent._soft_q_target(t) == pytest.approx(2.5)

    def test_nonterminal_target_includes_bootstrap(self, rng):
        agent = tiny_sac(rng, gamma=0.9)
        t = transition(rng, reward=1.0)
        target = agent._soft_q_target(t)
        assert target != pytest.approx(1.0)

    def test_polyak_moves_targets(self, rng):
        agent = tiny_sac(rng, tau=0.5)
        for p in agent.q1.net.params:
            p += 1.0
        before = [p.copy() for p in agent.q1_target.net.params]
        agent._polyak_update()
        moved = any(
            not np.allclose(b, p)
            for b, p in zip(before, agent.q1_target.net.params)
        )
        assert moved

    def test_training_updates_parameters(self, rng):
        agent = tiny_sac(rng, batch_size=4, train_interval=4)
        before = [p.copy() for p in agent.optimizer.params]
        for _ in range(8):
            agent.record(transition(rng))
        assert any(
            not np.allclose(b, p)
            for b, p in zip(before, agent.optimizer.params)
        )
