"""Unit tests for the metric registry and its exporters (repro.obs.metrics)."""

import io
import json

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("reqs")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_labels_are_independent_series(self):
        c = Counter("reqs")
        c.inc(kind="lc")
        c.inc(kind="lc")
        c.inc(kind="be")
        assert c.value(kind="lc") == 2.0
        assert c.value(kind="be") == 1.0
        assert c.value() == 3.0  # unlabelled read sums all series

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("reqs").inc(-1.0)

    def test_label_order_does_not_matter(self):
        c = Counter("reqs")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2.0


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("util")
        g.set(0.4)
        g.set(0.7)
        assert g.value() == 0.7

    def test_inc_accumulates(self):
        g = Gauge("depth")
        g.inc(3.0, node="w0")
        g.inc(-1.0, node="w0")
        assert g.value(node="w0") == 2.0


class TestHistogram:
    def test_count_sum_and_bucket_placement(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == 555.0
        samples = list(h.samples())
        # cumulative buckets: le=10 → 1, le=100 → 2, le=+Inf → 3
        by_le = {dict(key)["le"]: value for suffix, key, value in samples
                 if suffix == "_bucket"}
        assert by_le == {"10": 1.0, "100": 2.0, "+Inf": 3.0}

    def test_boundary_value_falls_in_lower_bucket(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(10.0)  # le is inclusive, Prometheus semantics
        by_le = {dict(key)["le"]: value for suffix, key, value in h.samples()
                 if suffix == "_bucket"}
        assert by_le["10"] == 1.0

    def test_per_label_series(self):
        h = Histogram("lat")
        h.observe(30.0, service="a")
        h.observe(30.0, service="b")
        assert h.count(service="a") == 1
        assert h.count() == 2

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(100.0, 10.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricRegistry()
        a = reg.counter("reqs")
        b = reg.counter("reqs")
        assert a is b

    def test_type_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("reqs")
        with pytest.raises(TypeError):
            reg.gauge("reqs")
        with pytest.raises(TypeError):
            reg.histogram("reqs")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("bad name!")

    def test_names_sorted(self):
        reg = MetricRegistry()
        reg.gauge("zz")
        reg.counter("aa")
        assert reg.names() == ["aa", "zz"]


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricRegistry(prefix="tango")
        reg.counter("requests_total", help="total requests").inc(5, kind="lc")
        reg.gauge("utilization").set(0.5)
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert "# HELP tango_requests_total total requests" in lines
        assert "# TYPE tango_requests_total counter" in lines
        assert 'tango_requests_total{kind="lc"} 5' in lines
        assert "# TYPE tango_utilization gauge" in lines
        assert "tango_utilization 0.5" in lines
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative_with_inf(self):
        reg = MetricRegistry(prefix="t")
        h = reg.histogram("lat_ms", buckets=(10.0, 100.0))
        h.observe(5.0)
        h.observe(50.0)
        lines = reg.to_prometheus().splitlines()
        assert 't_lat_ms_bucket{le="10"} 1' in lines
        assert 't_lat_ms_bucket{le="100"} 2' in lines
        assert 't_lat_ms_bucket{le="+Inf"} 2' in lines
        assert "t_lat_ms_sum 55" in lines
        assert "t_lat_ms_count 2" in lines

    def test_every_sample_line_parses(self):
        """Sample lines must be `name{labels} value` with a float value."""
        reg = MetricRegistry()
        reg.counter("c").inc(kind="lc", node="w0")
        reg.histogram("h").observe(42.0, service="s")
        for line in reg.to_prometheus().splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value_part = line.rsplit(" ", 1)
            if value_part == "+Inf":
                continue
            float(value_part)  # must not raise
            assert name_part[0].isalpha()

    def test_empty_prefix(self):
        reg = MetricRegistry(prefix="")
        reg.counter("c").inc()
        assert "c 1" in reg.to_prometheus().splitlines()


class TestJsonlExport:
    def test_one_object_per_sample(self):
        reg = MetricRegistry(prefix="tango")
        reg.counter("reqs").inc(3, kind="lc")
        reg.gauge("util").set(0.25)
        buf = io.StringIO()
        written = reg.to_jsonl(buf)
        rows = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert written == len(rows) == 2
        by_metric = {r["metric"]: r for r in rows}
        assert by_metric["tango_reqs"]["value"] == 3.0
        assert by_metric["tango_reqs"]["labels"] == {"kind": "lc"}
        assert by_metric["tango_util"]["type"] == "gauge"

    def test_write_jsonl_roundtrip(self, tmp_path):
        reg = MetricRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.jsonl"
        assert reg.write_jsonl(str(path)) == 1
        assert json.loads(path.read_text())["metric"] == "tango_c"

    def test_as_dict_view(self):
        reg = MetricRegistry()
        reg.counter("c").inc(2, kind="be")
        assert reg.as_dict() == {"c": {'c{kind="be"}': 2.0}}
