"""GNN encoder tests: aggregation semantics, shapes, and gradient flow."""

import numpy as np
import pytest

from repro.nn.gnn import (
    GATEncoder,
    GCNEncoder,
    GraphSAGEEncoder,
    IdentityEncoder,
    adjacency_from_edges,
)


def line_graph(n):
    return adjacency_from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestAdjacency:
    def test_undirected(self):
        adj = adjacency_from_edges(3, [(0, 1), (1, 2)])
        assert adj[0] == [1]
        assert sorted(adj[1]) == [0, 2]

    def test_ignores_self_loops_and_duplicates(self):
        adj = adjacency_from_edges(2, [(0, 0), (0, 1), (1, 0)])
        assert adj[0] == [1]
        assert adj[1] == [0]


class TestGraphSAGE:
    def test_output_shape(self, rng):
        enc = GraphSAGEEncoder(5, [8, 8], rng, sample_size=3)
        h = enc.encode(rng.normal(size=(6, 5)), line_graph(6))
        assert h.shape == (6, 8)

    def test_isolated_node_keeps_self_path(self, rng):
        enc = GraphSAGEEncoder(3, [4], rng)
        # neighbour aggregation is empty, but the separate self path still
        # produces a non-trivial embedding
        a = enc.aggregation_matrix([[]], np.zeros((1, 3)), 0)
        assert np.allclose(a, [[0.0]])
        h = enc.encode(np.ones((1, 3)), [[]])
        assert np.abs(h).sum() > 0

    def test_mean_aggregation_row_stochastic(self, rng):
        enc = GraphSAGEEncoder(3, [4], rng, sample_size=2)
        adj = line_graph(5)
        a = enc.aggregation_matrix(adj, np.zeros((5, 3)), 0)
        assert np.allclose(a.sum(axis=1), 1.0)

    def test_self_features_survive_deep_aggregation(self, rng):
        """The CONCAT form must let the actor tell clique members apart."""
        n = 6
        clique = adjacency_from_edges(
            n, [(i, j) for i in range(n) for j in range(i + 1, n)]
        )
        enc = GraphSAGEEncoder(4, [8, 8], rng, sample_size=5)
        x = rng.normal(size=(n, 4))
        h = enc.encode(x, clique)
        # embeddings of distinct nodes differ even in a complete graph
        assert not np.allclose(h[0], h[1], atol=1e-6)

    def test_sampling_caps_neighbourhood(self, rng):
        enc = GraphSAGEEncoder(3, [4], rng, sample_size=2)
        star = adjacency_from_edges(6, [(0, i) for i in range(1, 6)])
        a = enc.aggregation_matrix(star, np.zeros((6, 3)), 0)
        # row 0: at most 2 sampled neighbours (self handled separately)
        assert np.count_nonzero(a[0]) <= 2

    def test_rejects_bad_sample_size(self, rng):
        with pytest.raises(ValueError):
            GraphSAGEEncoder(3, [4], rng, sample_size=0)

    def test_gradient_flow_to_all_layers(self, rng):
        enc = GraphSAGEEncoder(4, [6, 6], rng)
        h = enc.encode(rng.normal(size=(5, 4)), line_graph(5))
        enc.backward(np.ones_like(h))
        assert all(np.abs(g).sum() > 0 for g in enc.grads)

    def test_gradient_check(self, rng):
        enc = GraphSAGEEncoder(3, [4], rng, sample_size=10)  # no subsampling
        x = rng.normal(size=(4, 3))
        adj = line_graph(4)

        def loss():
            return float((enc.encode(x, adj) ** 2).sum())

        # fix sampling randomness: sample_size > degree means deterministic
        enc.zero_grad()
        h = enc.encode(x, adj)
        enc.backward(2 * h)
        eps = 1e-6
        w = enc.weights[0]
        num = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                orig = w[i, j]
                w[i, j] = orig + eps
                hi = loss()
                w[i, j] = orig - eps
                lo = loss()
                w[i, j] = orig
                num[i, j] = (hi - lo) / (2 * eps)
        assert np.allclose(enc.grads[0], num, atol=1e-4)


class TestGCN:
    def test_symmetric_normalisation(self, rng):
        enc = GCNEncoder(3, [4], rng)
        adj = line_graph(3)
        a = enc.aggregation_matrix(adj, np.zeros((3, 3)), 0)
        assert np.allclose(a, a.T)
        # eigenvalues of the normalised adjacency are within [-1, 1]
        eig = np.linalg.eigvalsh(a)
        assert eig.max() <= 1.0 + 1e-9

    def test_output_shape(self, rng):
        enc = GCNEncoder(5, [8, 8], rng)
        h = enc.encode(rng.normal(size=(6, 5)), line_graph(6))
        assert h.shape == (6, 8)


class TestGAT:
    def test_attention_rows_sum_to_one(self, rng):
        enc = GATEncoder(3, [4], rng)
        adj = line_graph(4)
        a = enc.aggregation_matrix(adj, rng.normal(size=(4, 3)), 0)
        assert np.allclose(a.sum(axis=1), 1.0)
        assert (a >= 0).all()

    def test_attention_depends_on_features(self, rng):
        enc = GATEncoder(3, [4], rng)
        adj = line_graph(4)
        a1 = enc.aggregation_matrix(adj, rng.normal(size=(4, 3)), 0)
        a2 = enc.aggregation_matrix(adj, rng.normal(size=(4, 3)), 0)
        assert not np.allclose(a1, a2)

    def test_output_shape(self, rng):
        enc = GATEncoder(5, [8, 8], rng)
        h = enc.encode(rng.normal(size=(6, 5)), line_graph(6))
        assert h.shape == (6, 8)


class TestIdentity:
    def test_no_message_passing(self, rng):
        enc = IdentityEncoder(3, [4], rng)
        x = rng.normal(size=(4, 3))
        # changing a neighbour's features must not affect node 0's embedding
        h1 = enc.encode(x, line_graph(4))
        x2 = x.copy()
        x2[1] += 10.0
        h2 = enc.encode(x2, line_graph(4))
        assert np.allclose(h1[0], h2[0])

    def test_differs_from_graphsage(self, rng):
        x = np.random.default_rng(0).normal(size=(4, 3))
        ident = IdentityEncoder(3, [4], np.random.default_rng(1))
        sage = GraphSAGEEncoder(3, [4], np.random.default_rng(1))
        h_i = ident.encode(x, line_graph(4))
        h_s = sage.encode(x, line_graph(4))
        assert not np.allclose(h_i, h_s)


class TestGradientChecks:
    def _numeric_check(self, enc, x, adj, rng):
        import numpy as np

        enc.zero_grad()
        h = enc.encode(x, adj)
        enc.backward(2 * h)
        eps = 1e-6
        w = enc.weights[0]
        num = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                orig = w[i, j]
                w[i, j] = orig + eps
                hi = float((enc.encode(x, adj) ** 2).sum())
                w[i, j] = orig - eps
                lo = float((enc.encode(x, adj) ** 2).sum())
                w[i, j] = orig
                num[i, j] = (hi - lo) / (2 * eps)
        stride = enc._stride()
        assert np.allclose(enc.grads[0], num, atol=1e-4)

    def test_gcn_gradient_check(self, rng):
        enc = GCNEncoder(3, [4], rng)
        self._numeric_check(enc, rng.normal(size=(4, 3)), line_graph(4), rng)

    def test_graphsage_self_weight_gradient_check(self, rng):
        import numpy as np

        enc = GraphSAGEEncoder(3, [4], rng, sample_size=10)
        x = rng.normal(size=(4, 3))
        adj = line_graph(4)
        enc.zero_grad()
        h = enc.encode(x, adj)
        enc.backward(2 * h)
        eps = 1e-6
        ws = enc.self_weights[0]
        num = np.zeros_like(ws)
        for i in range(ws.shape[0]):
            for j in range(ws.shape[1]):
                orig = ws[i, j]
                ws[i, j] = orig + eps
                hi = float((enc.encode(x, adj) ** 2).sum())
                ws[i, j] = orig - eps
                lo = float((enc.encode(x, adj) ** 2).sum())
                ws[i, j] = orig
                num[i, j] = (hi - lo) / (2 * eps)
        # self-weight grads live at stride offset 2
        assert np.allclose(enc.grads[2], num, atol=1e-4)

    def test_identity_gradient_check(self, rng):
        enc = IdentityEncoder(3, [4], rng)
        self._numeric_check(enc, rng.normal(size=(3, 3)), line_graph(3), rng)
