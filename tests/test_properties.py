"""Cross-module property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.flow.graph import SupplyDemandGraph, solve_transport
from repro.hrm.qos import QoSDetector
from repro.hrm.reassurance import ReassuranceConfig, ReassuranceMechanism
from repro.kube.cgroups import CFS_PERIOD_US, CGroupError, CGroupTree
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)


class TestCGroupInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        targets=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=16.0),
                st.floats(min_value=16.0, max_value=8192.0),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_resize_sequence_never_violates_hierarchy(self, targets):
        """Any sequence of resizes keeps child limits ≤ parent limits."""
        tree = CGroupTree()
        tree.create_pod_group(
            "burstable", "prop", ["c0"], cpu_limit_cores=1.0,
            memory_limit_mib=512.0,
        )
        for cpu, mem in targets:
            tree.resize_pod(
                "burstable", "prop", "c0", ResourceVector(cpu=cpu, memory=mem)
            )
            pod = tree.pod_group("burstable", "prop")
            child = pod.children["c0"]
            assert child.cpu_limit_cores() <= pod.cpu_limit_cores() + 1e-9
            assert child.memory_limit_mib() <= pod.memory_limit_mib() + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        cpu=st.floats(min_value=0.1, max_value=16.0),
        mem=st.floats(min_value=16.0, max_value=8192.0),
    )
    def test_resize_is_idempotent(self, cpu, mem):
        tree = CGroupTree()
        tree.create_pod_group(
            "burstable", "idem", ["c0"], cpu_limit_cores=1.0,
            memory_limit_mib=512.0,
        )
        target = ResourceVector(cpu=cpu, memory=mem)
        tree.resize_pod("burstable", "idem", "c0", target)
        second = tree.resize_pod("burstable", "idem", "c0", target)
        # second identical resize is a no-op except possibly shares rewrites
        pod = tree.pod_group("burstable", "idem")
        assert pod.cpu_limit_cores() == pytest.approx(cpu)


class TestReassuranceInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        latencies=st.lists(
            st.floats(min_value=1.0, max_value=5_000.0),
            min_size=1,
            max_size=50,
        )
    )
    def test_minima_always_within_bounds(self, latencies):
        """No latency history can push minima outside [floor, ceiling]."""
        det = QoSDetector()
        mech = ReassuranceMechanism(det, ReassuranceConfig(period_ms=0.0))
        for i, latency in enumerate(latencies):
            det.observe("n", LC.name, float(i), latency)
            mech.run(float(i), {"n": {LC.name: LC}})
        result = mech.min_resources("n", LC)
        floor = LC.min_resources * mech.config.floor_fraction
        ceiling = LC.reference_resources * mech.config.ceiling_multiple
        assert result.cpu >= floor.cpu - 1e-9
        assert result.cpu <= ceiling.cpu + 1e-9
        assert result.memory >= floor.memory - 1e-9
        assert result.memory <= ceiling.memory + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.floats(min_value=1.2, max_value=4.0))
    def test_sustained_violation_converges_to_ceiling(self, ratio):
        det = QoSDetector()
        mech = ReassuranceMechanism(det, ReassuranceConfig(period_ms=0.0))
        for i in range(200):
            det.observe("n", LC.name, float(i), LC.qos_target_ms * ratio)
            mech.run(float(i), {"n": {LC.name: LC}})
        ceiling = LC.reference_resources * mech.config.ceiling_multiple
        assert mech.min_resources("n", LC).cpu == pytest.approx(
            ceiling.cpu, rel=0.15
        )


class TestTransportOptimality:
    @settings(max_examples=40, deadline=None)
    @given(
        pending=st.integers(min_value=1, max_value=12),
        caps=st.lists(st.integers(min_value=0, max_value=6), min_size=2,
                      max_size=4),
        data=st.data(),
    )
    def test_matches_brute_force_on_stars(self, pending, caps, data):
        """On star graphs the LP optimum equals the greedy-by-delay fill."""
        delays = [
            data.draw(st.floats(min_value=0.5, max_value=50.0))
            for _ in caps
        ]
        graph = SupplyDemandGraph()
        graph.supplies = [pending] + [-c for c in caps]
        for i, d in enumerate(delays):
            graph.edges.append((0, 1 + i, d, 1000))
        result = solve_transport(graph)

        # greedy fill in increasing-delay order is optimal for a star
        order = np.argsort(delays)
        remaining = pending
        expected_cost = 0.0
        for idx in order:
            take = min(remaining, caps[idx])
            expected_cost += take * delays[idx]
            remaining -= take
        placed = pending - remaining
        assert result.placed == placed
        assert result.total_delay_ms == pytest.approx(expected_cost, abs=0.05)


class TestDetectorProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=1_000.0),
            min_size=1,
            max_size=60,
        )
    )
    def test_tail_between_min_and_max(self, values):
        det = QoSDetector(min_keep=100)
        for i, v in enumerate(values):
            det.observe("n", "svc", float(i), v)
        tail = det.tail_latency_ms("n", "svc")
        assert min(values) - 1e-9 <= tail <= max(values) + 1e-9
