"""Metrics pipeline tests: windows, collectors, and run summaries."""

import pytest

from repro.cluster.topology import EdgeCloudSystem, TopologyConfig
from repro.metrics.collectors import PERIOD_MS, PeriodCollector
from repro.metrics.window import TimeWindow, percentile
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


class TestWindow:
    def test_percentile_empty_is_none(self):
        assert percentile([], 95) is None

    def test_expiry(self):
        w = TimeWindow(horizon_ms=100.0)
        w.add(0.0, 1.0)
        w.add(50.0, 2.0)
        w.add(200.0, 3.0)
        assert w.values() == [2.0, 3.0] or w.values() == [3.0]

    def test_stats(self):
        w = TimeWindow(horizon_ms=1000.0)
        for i in range(10):
            w.add(float(i), float(i))
        assert w.mean() == pytest.approx(4.5)
        assert w.count() == 10
        assert w.sum() == pytest.approx(45.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            TimeWindow(0.0)


def lc_request(arrival=0.0):
    return ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=arrival)


def be_request(arrival=0.0):
    return ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=arrival)


class TestCollector:
    def make(self):
        system = EdgeCloudSystem(TopologyConfig(n_clusters=2, workers_per_cluster=2))
        return PeriodCollector(system)

    def test_satisfaction_rate_counts_against_arrivals(self):
        collector = self.make()
        good, late = lc_request(), lc_request()
        for r in (good, late):
            collector.on_arrival(r)
        good.completed_ms = LC.qos_target_ms * 0.5
        late.completed_ms = LC.qos_target_ms * 2.0
        collector.on_completion(good)
        collector.on_completion(late)
        assert collector.metrics.qos_satisfaction_rate == pytest.approx(0.5)

    def test_abandoned_counts_against_rate(self):
        collector = self.make()
        a, b = lc_request(), lc_request()
        collector.on_arrival(a)
        collector.on_arrival(b)
        a.completed_ms = 1.0
        collector.on_completion(a)
        collector.on_abandon(b)
        assert collector.metrics.qos_satisfaction_rate == pytest.approx(0.5)
        assert collector.metrics.lc_abandoned == 1

    def test_be_throughput_counts_completions(self):
        collector = self.make()
        for _ in range(3):
            r = be_request()
            collector.on_arrival(r)
            r.completed_ms = 100.0
            collector.on_completion(r)
        assert collector.metrics.be_throughput == 3

    def test_period_sampling_cadence(self):
        collector = self.make()
        assert not collector.maybe_sample(PERIOD_MS / 2)
        assert collector.maybe_sample(PERIOD_MS)
        assert not collector.maybe_sample(PERIOD_MS + 1)
        assert collector.maybe_sample(2 * PERIOD_MS)
        assert len(collector.metrics.utilization) == 2

    def test_per_period_counters_reset(self):
        collector = self.make()
        r = lc_request()
        collector.on_arrival(r)
        collector.maybe_sample(PERIOD_MS)
        assert collector.metrics.lc_arrivals_per_period == [1]
        collector.maybe_sample(2 * PERIOD_MS)
        assert collector.metrics.lc_arrivals_per_period == [1, 0]

    def test_empty_rate_defaults_to_one(self):
        collector = self.make()
        assert collector.metrics.qos_satisfaction_rate == 1.0

    def test_summary_keys(self):
        s = self.make().metrics.summary()
        assert set(s) == {
            "qos_satisfaction_rate",
            "be_throughput",
            "mean_utilization",
            "lc_abandoned",
            "lc_tail_latency_ms",
            "be_evictions",
        }


class TestPerServiceBreakdown:
    def test_counts_and_rates(self):
        collector = PeriodCollector(
            EdgeCloudSystem(TopologyConfig(n_clusters=1, workers_per_cluster=1))
        )
        good, late = lc_request(), lc_request()
        collector.on_arrival(good)
        collector.on_arrival(late)
        good.completed_ms = LC.qos_target_ms * 0.5
        late.completed_ms = LC.qos_target_ms * 2.0
        collector.on_completion(good)
        collector.on_completion(late)
        rates = collector.metrics.service_qos_rates()
        assert rates[LC.name] == pytest.approx(0.5)

    def test_unseen_service_defaults_satisfied(self):
        collector = PeriodCollector(
            EdgeCloudSystem(TopologyConfig(n_clusters=1, workers_per_cluster=1))
        )
        assert collector.metrics.service_qos_rates() == {}

    def test_be_services_tracked_too(self):
        collector = PeriodCollector(
            EdgeCloudSystem(TopologyConfig(n_clusters=1, workers_per_cluster=1))
        )
        r = be_request()
        collector.on_arrival(r)
        r.completed_ms = 1e6
        collector.on_completion(r)
        assert collector.metrics.service_qos_rates()[BE.name] == 1.0
