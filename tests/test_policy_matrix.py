"""Every manager × LC policy × BE policy combination must run clean.

The pairing experiment (Fig. 12) covers the interesting cells at length;
this matrix sweep covers *all* of them briefly — with runtime invariant
validation enabled — so a regression in any pairing is caught by the unit
suite, not only by the slow benches.
"""

import itertools

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.core.config import BE_POLICIES, LC_POLICIES, MANAGERS
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

_TRACE = None


def get_trace():
    global _TRACE
    if _TRACE is None:
        _TRACE = SyntheticTrace(
            TraceConfig(n_clusters=2, duration_ms=2_500.0, seed=4,
                        lc_peak_rps=10.0, be_peak_rps=4.0)
        ).generate()
    return _TRACE


def run_combo(manager, lc, be):
    config = TangoConfig(
        manager=manager,
        lc_policy=lc,
        be_policy=be,
        reassurance_enabled=(manager == "hrm"),
        topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=4),
        runner=RunnerConfig(duration_ms=2_500.0, validate=True),
    )
    return TangoSystem(config).run(get_trace())


# full cartesian product, minus nothing: every cell must be constructible
MATRIX = sorted(itertools.product(MANAGERS, LC_POLICIES, BE_POLICIES))


@pytest.mark.parametrize("manager,lc,be", MATRIX)
def test_policy_combination_runs_clean(manager, lc, be):
    metrics = run_combo(manager, lc, be)
    # work flows end to end under every combination
    assert metrics.lc_arrived > 0
    assert metrics.be_arrived > 0
    assert 0.0 <= metrics.qos_satisfaction_rate <= 1.0
    # bookkeeping identities hold (validate=True also checked every tick)
    assert metrics.lc_completed + metrics.lc_abandoned <= metrics.lc_arrived
