"""QoS detector and re-assurance (Algorithm 1) tests."""

import pytest

from repro.hrm.qos import QoSDetector
from repro.hrm.reassurance import (
    LEVEL_EXCELLENT,
    LEVEL_POOR,
    LEVEL_STABLE,
    ReassuranceConfig,
    ReassuranceMechanism,
)


class TestDetector:
    def test_slack_score_definition(self, lc_spec):
        """δ = 1 − ξ/γ with ξ the windowed p95."""
        det = QoSDetector()
        for _ in range(10):
            det.observe("n0", lc_spec.name, 0.0, lc_spec.qos_target_ms / 2)
        slack = det.slack_score("n0", lc_spec.name, lc_spec)
        assert slack == pytest.approx(0.5)

    def test_negative_slack_on_violation(self, lc_spec):
        det = QoSDetector()
        for _ in range(10):
            det.observe("n0", lc_spec.name, 0.0, lc_spec.qos_target_ms * 2)
        assert det.slack_score("n0", lc_spec.name, lc_spec) == pytest.approx(-1.0)

    def test_none_without_samples(self, lc_spec):
        assert QoSDetector().slack_score("n0", lc_spec.name, lc_spec) is None

    def test_be_services_have_no_slack(self, be_spec):
        det = QoSDetector()
        det.observe("n0", be_spec.name, 0.0, 100.0)
        assert det.slack_score("n0", be_spec.name, be_spec) is None

    def test_window_expiry_keeps_minimum(self, lc_spec):
        det = QoSDetector(window_ms=100.0, min_keep=4)
        for i in range(20):
            det.observe("n0", lc_spec.name, float(i), 100.0)
        det.observe("n0", lc_spec.name, 10_000.0, 100.0)
        assert det.sample_count("n0", lc_spec.name) >= 4

    def test_tail_latency_is_percentile(self, lc_spec):
        det = QoSDetector(min_keep=100)
        for v in range(1, 101):
            det.observe("n0", lc_spec.name, 0.0, float(v))
        assert det.tail_latency_ms("n0", lc_spec.name) == pytest.approx(95.05)

    def test_per_node_per_service_isolation(self, lc_spec):
        det = QoSDetector()
        det.observe("n0", lc_spec.name, 0.0, 10.0)
        assert det.tail_latency_ms("n1", lc_spec.name) is None

    def test_expire_on_read_drops_stale_tail(self, lc_spec):
        """Regression: a window that stops receiving completions must not
        report its last tail forever once the reader passes ``now_ms``."""
        det = QoSDetector(window_ms=100.0, min_keep=2)
        for i in range(10):
            det.observe("n0", lc_spec.name, float(i * 10), 500.0)
        det.observe("n0", lc_spec.name, 100.0, 1.0)
        det.observe("n0", lc_spec.name, 101.0, 2.0)
        # without now_ms the old samples still dominate the percentile
        assert det.tail_latency_ms("n0", lc_spec.name) > 100.0
        # a read far past the window keeps only the min_keep floor — the
        # two fresh samples — so the stale 500 ms tail is gone
        tail = det.tail_latency_ms("n0", lc_spec.name, now_ms=1_000.0)
        assert tail == pytest.approx(1.95)
        assert det.sample_count("n0", lc_spec.name) == 2

    def test_expire_on_read_honors_min_keep(self, lc_spec):
        det = QoSDetector(window_ms=100.0, min_keep=4)
        for i in range(6):
            det.observe("n0", lc_spec.name, float(i), 50.0)
        det.tail_latency_ms("n0", lc_spec.name, now_ms=10_000.0)
        assert det.sample_count("n0", lc_spec.name) == 4

    def test_expire_on_read_deterministic(self, lc_spec):
        """Two detectors fed identically and read identically agree, no
        matter how reads interleave with observes."""
        a = QoSDetector(window_ms=100.0, min_keep=2)
        b = QoSDetector(window_ms=100.0, min_keep=2)
        for det in (a, b):
            for i in range(10):
                det.observe("n0", lc_spec.name, float(i * 30), float(i))
        a.tail_latency_ms("n0", lc_spec.name, now_ms=150.0)  # extra read
        assert a.tail_latency_ms(
            "n0", lc_spec.name, now_ms=300.0
        ) == b.tail_latency_ms("n0", lc_spec.name, now_ms=300.0)

    def test_purge_node_clears_all_state(self, catalog):
        lc = [s for s in catalog if s.is_lc][:2]
        det = QoSDetector()
        for spec in lc:
            for _ in range(5):
                det.observe("n0", spec.name, 0.0, 10.0)
                det.observe("n1", spec.name, 0.0, 10.0)
        det.tail_latency_ms("n0", lc[0].name)  # populate the memo cache
        det.purge_node("n0")
        assert det.sample_count("n0", lc[0].name) == 0
        assert det._node_services.get("n0") is None
        assert all(key[0] != "n0" for key in det._samples)
        assert all(key[0] != "n0" for key in det._tail_cache)
        # other nodes untouched
        assert det.sample_count("n1", lc[0].name) == 5
        # slack queries after the purge behave like a cold node
        specs = {s.name: s for s in lc}
        assert det.node_min_slack("n0", specs) == 1.0
        # purging a node that never reported is a no-op
        det.purge_node("never-seen")

    def test_node_min_slack_over_services(self, catalog):
        lc = [s for s in catalog if s.is_lc][:2]
        det = QoSDetector()
        for _ in range(8):
            det.observe("n0", lc[0].name, 0.0, lc[0].qos_target_ms * 0.5)
            det.observe("n0", lc[1].name, 0.0, lc[1].qos_target_ms * 1.5)
        specs = {s.name: s for s in lc}
        assert det.node_min_slack("n0", specs) == pytest.approx(-0.5)


class TestAlgorithm1:
    def make(self, alpha=0.1, beta=0.5):
        det = QoSDetector()
        mech = ReassuranceMechanism(
            det, ReassuranceConfig(alpha=alpha, beta=beta, period_ms=0.0)
        )
        return det, mech

    def fill(self, det, spec, node, latency_ratio):
        for _ in range(10):
            det.observe(node, spec.name, 0.0, spec.qos_target_ms * latency_ratio)

    def test_classification_levels(self, lc_spec):
        det, mech = self.make()
        self.fill(det, lc_spec, "n0", 1.5)  # slack = -0.5 < α → poor
        assert mech.classify("n0", lc_spec) == LEVEL_POOR
        self.fill(det, lc_spec, "n1", 0.2)  # slack = 0.8 > β → excellent
        assert mech.classify("n1", lc_spec) == LEVEL_EXCELLENT
        self.fill(det, lc_spec, "n2", 0.7)  # slack = 0.3 in (α, β) → stable
        assert mech.classify("n2", lc_spec) == LEVEL_STABLE

    def test_poor_increases_minimum(self, lc_spec):
        det, mech = self.make()
        self.fill(det, lc_spec, "n0", 1.5)
        before = mech.min_resources("n0", lc_spec)
        mech.run(0.0, {"n0": {lc_spec.name: lc_spec}})
        after = mech.min_resources("n0", lc_spec)
        assert after.cpu > before.cpu

    def test_excellent_decreases_minimum(self, lc_spec):
        det, mech = self.make()
        self.fill(det, lc_spec, "n0", 0.1)
        before = mech.min_resources("n0", lc_spec)
        mech.run(0.0, {"n0": {lc_spec.name: lc_spec}})
        after = mech.min_resources("n0", lc_spec)
        assert after.cpu < before.cpu

    def test_stable_leaves_minimum(self, lc_spec):
        det, mech = self.make()
        self.fill(det, lc_spec, "n0", 0.7)
        before = mech.min_resources("n0", lc_spec)
        assert mech.run(0.0, {"n0": {lc_spec.name: lc_spec}}) == 0
        assert mech.min_resources("n0", lc_spec).approx_equal(before)

    def test_ceiling_and_floor_respected(self, lc_spec):
        det, mech = self.make()
        cfg = mech.config
        self.fill(det, lc_spec, "n0", 3.0)
        for _ in range(100):
            mech.run(0.0, {"n0": {lc_spec.name: lc_spec}})
        ceiling = lc_spec.reference_resources * cfg.ceiling_multiple
        assert mech.min_resources("n0", lc_spec).fits_in(ceiling)

        det2, mech2 = self.make()
        self.fill(det2, lc_spec, "n0", 0.01)
        for _ in range(100):
            mech2.run(0.0, {"n0": {lc_spec.name: lc_spec}})
        floor = lc_spec.min_resources * mech2.config.floor_fraction
        assert floor.fits_in(mech2.min_resources("n0", lc_spec) + floor * 1e-6)

    def test_period_gates_runs(self, lc_spec):
        det = QoSDetector()
        mech = ReassuranceMechanism(det, ReassuranceConfig(period_ms=100.0))
        for _ in range(10):
            det.observe("n0", lc_spec.name, 0.0, lc_spec.qos_target_ms * 2)
        nodes = {"n0": {lc_spec.name: lc_spec}}
        assert mech.run(0.0, nodes) == 1
        assert mech.run(50.0, nodes) == 0  # inside the period
        assert mech.run(150.0, nodes) == 1

    def test_small_steps(self, lc_spec):
        """'high frequency with a small proportion' — one step is < 15%."""
        det, mech = self.make()
        self.fill(det, lc_spec, "n0", 2.0)
        before = mech.min_resources("n0", lc_spec)
        mech.run(0.0, {"n0": {lc_spec.name: lc_spec}})
        after = mech.min_resources("n0", lc_spec)
        assert after.cpu / before.cpu < 1.15

    def test_requires_alpha_below_beta(self):
        with pytest.raises(ValueError):
            ReassuranceMechanism(
                QoSDetector(), ReassuranceConfig(alpha=0.9, beta=0.1)
            )

    def test_reset_per_node(self, lc_spec):
        det, mech = self.make()
        self.fill(det, lc_spec, "n0", 2.0)
        mech.run(0.0, {"n0": {lc_spec.name: lc_spec}})
        assert not mech.min_resources("n0", lc_spec).approx_equal(
            lc_spec.min_resources
        )
        mech.reset("n0")
        assert mech.min_resources("n0", lc_spec).approx_equal(
            lc_spec.min_resources
        )
