"""Failure-injection tests: crashes, partitions, and graceful degradation."""

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import EdgeCloudSystem, TopologyConfig
from repro.sim.failures import FailureConfig, FailureInjector
from repro.sim.request import RequestState, ServiceRequest
from repro.sim.runner import RunnerConfig
from repro.workloads.spec import ServiceKind, default_catalog
from repro.workloads.trace import SyntheticTrace, TraceConfig

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


def make_system():
    return EdgeCloudSystem(TopologyConfig(n_clusters=3, workers_per_cluster=2,
                                          seed=0))


class TestInjector:
    def test_crash_takes_node_down_then_recovers(self):
        system = make_system()
        injector = FailureInjector(
            system,
            FailureConfig(node_mtbf_ms=1.0, node_downtime_ms=100.0, seed=1),
        )
        injector.apply(10.0)
        assert len(injector.down_nodes) >= 1
        name = next(iter(injector.down_nodes))
        assert injector.node_is_down(name)
        injector.apply(10_000.0)
        assert not injector.node_is_down(name)
        kinds = [e.kind for e in injector.events]
        assert "crash" in kinds and "recover" in kinds

    def test_crash_displaces_running_and_queued(self):
        system = make_system()
        worker = system.clusters[0].workers[0]

        class AdmitAll:
            def admit(self, node, request, now_ms):
                from repro.cluster.node import AdmitDecision

                demand = request.spec.min_resources
                if not demand.fits_in(node.free()):
                    return None
                return AdmitDecision(allocation=demand)

            def on_complete(self, node, running, now_ms):
                pass

            def tick(self, node, now_ms):
                pass

        worker.manager = AdmitAll()
        running_be = ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=0.0)
        queued_lc = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        worker.enqueue(running_be, 0.0)
        worker.step(0.0, 25.0)
        worker.enqueue(queued_lc, 25.0)
        assert len(worker.running) == 1

        injector = FailureInjector(
            system, FailureConfig(node_mtbf_ms=None, seed=0)
        )
        displaced = injector._crash(worker, 50.0)
        assert worker.running == {}
        assert worker.allocated.is_zero()
        ids = {r.request_id for r in displaced}
        assert running_be.request_id in ids
        assert queued_lc.request_id in ids
        assert running_be.state is RequestState.QUEUED_MASTER
        assert running_be.evictions == 1

    def test_partition_excludes_cluster_then_heals(self):
        system = make_system()
        injector = FailureInjector(
            system,
            FailureConfig(
                node_mtbf_ms=None,
                partition_mtbf_ms=1.0,
                partition_duration_ms=50.0,
                seed=3,
            ),
        )
        injector.apply(10.0)
        partitioned = [
            c for c in range(3) if injector.cluster_is_partitioned(c)
        ]
        if partitioned:  # central cluster is never partitioned
            injector.apply(10_000.0)
            assert not any(
                injector.cluster_is_partitioned(c) for c in range(3)
            )

    def test_central_cluster_never_partitioned(self):
        system = make_system()
        injector = FailureInjector(
            system,
            FailureConfig(
                node_mtbf_ms=None,
                partition_mtbf_ms=0.5,
                partition_duration_ms=1e9,
                seed=5,
            ),
        )
        for t in range(1, 200):
            injector.apply(float(t * 10))
        assert not injector.cluster_is_partitioned(system.central_cluster_id)

    def test_disabled_injection_never_fires(self):
        system = make_system()
        injector = FailureInjector(
            system,
            FailureConfig(node_mtbf_ms=None, partition_mtbf_ms=None),
        )
        for t in range(100):
            assert injector.apply(float(t * 100)) == []
        assert injector.events == []

    def test_deterministic_for_seed(self):
        events = []
        for _ in range(2):
            system = make_system()
            injector = FailureInjector(
                system, FailureConfig(node_mtbf_ms=500.0, seed=9)
            )
            for t in range(200):
                injector.apply(float(t * 25))
            events.append([(e.time_ms, e.kind, e.target) for e in injector.events])
        assert events[0] == events[1]


class TestEndToEndWithFailures:
    def test_system_survives_crashes(self):
        """Tango keeps serving under node churn; no conservation violations."""
        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=3, workers_per_cluster=3, seed=1),
            runner=RunnerConfig(
                duration_ms=10_000.0,
                failures=FailureConfig(
                    node_mtbf_ms=1_500.0, node_downtime_ms=2_000.0, seed=2
                ),
            ),
        )
        trace = SyntheticTrace(
            TraceConfig(n_clusters=3, duration_ms=10_000.0, seed=1,
                        lc_peak_rps=12.0, be_peak_rps=4.0)
        ).generate()
        system = TangoSystem(config)
        metrics = system.run(trace)
        runner = system.last_runner
        assert runner.injector is not None
        assert any(e.kind == "crash" for e in runner.injector.events)
        # progress continues despite churn
        assert metrics.lc_completed > 0
        assert metrics.be_completed > 0
        # resource conservation still holds everywhere
        for worker in system.system.all_workers():
            total = worker.allocated + worker.free()
            assert total.approx_equal(worker.capacity, tol=1e-6)

    def test_failures_reduce_but_do_not_zero_qos(self):
        def run(failures):
            config = TangoConfig.tango(
                topology=TopologyConfig(n_clusters=3, workers_per_cluster=3,
                                        seed=1),
                runner=RunnerConfig(duration_ms=8_000.0, failures=failures),
            )
            trace = SyntheticTrace(
                TraceConfig(n_clusters=3, duration_ms=8_000.0, seed=1)
            ).generate()
            return TangoSystem(config).run(trace)

        healthy = run(None)
        churned = run(FailureConfig(node_mtbf_ms=1_000.0,
                                    node_downtime_ms=2_000.0, seed=4))
        assert churned.qos_satisfaction_rate <= healthy.qos_satisfaction_rate + 0.02
        assert churned.qos_satisfaction_rate > 0.3
