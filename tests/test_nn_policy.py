"""Masked-softmax policy utilities (the DCG-BE context filter)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.policy import (
    categorical_entropy,
    entropy_grad,
    masked_log_softmax,
    masked_softmax,
    sample_categorical,
    softmax_grad_from_logp_grad,
)


class TestMaskedSoftmax:
    def test_unmasked_sums_to_one(self):
        p = masked_softmax(np.array([1.0, 2.0, 3.0]))
        assert p.sum() == pytest.approx(1.0)
        assert p[2] > p[1] > p[0]

    def test_mask_zeroes_invalid_actions(self):
        p = masked_softmax(np.array([10.0, 1.0, 1.0]), np.array([0, 1, 1]))
        assert p[0] == 0.0
        assert p.sum() == pytest.approx(1.0)

    def test_all_masked_falls_back_to_uniform(self):
        p = masked_softmax(np.array([1.0, 2.0]), np.array([0, 0]))
        assert np.allclose(p, [0.5, 0.5])

    def test_mask_matches_renormalized_probs(self):
        # p̂ = p * c / Σ(p * c) — the paper's element-wise filter
        logits = np.array([0.3, -1.0, 2.0, 0.0])
        mask = np.array([1, 0, 1, 1])
        full = masked_softmax(logits)
        expected = full * mask
        expected /= expected.sum()
        assert np.allclose(masked_softmax(logits, mask), expected)

    def test_large_logits_stable(self):
        p = masked_softmax(np.array([1e9, 1e9 - 1.0]))
        assert np.isfinite(p).all()
        assert p.sum() == pytest.approx(1.0)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_probabilities_valid(self, logits):
        p = masked_softmax(np.array(logits))
        assert (p >= 0).all()
        assert p.sum() == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.array([0.5, 1.5, -0.5])
        assert np.allclose(
            masked_log_softmax(logits), np.log(masked_softmax(logits))
        )


class TestSampling:
    def test_deterministic_on_degenerate(self, rng):
        assert sample_categorical(np.array([0.0, 1.0, 0.0]), rng) == 1

    def test_respects_distribution(self, rng):
        counts = np.zeros(2)
        p = np.array([0.8, 0.2])
        for _ in range(2000):
            counts[sample_categorical(p, rng)] += 1
        assert counts[0] / 2000 == pytest.approx(0.8, abs=0.05)


class TestEntropy:
    def test_uniform_maximises_entropy(self):
        h_uniform = categorical_entropy(np.array([0.25] * 4))
        h_skewed = categorical_entropy(np.array([0.97, 0.01, 0.01, 0.01]))
        assert h_uniform == pytest.approx(np.log(4))
        assert h_skewed < h_uniform

    def test_degenerate_zero_entropy(self):
        assert categorical_entropy(np.array([1.0, 0.0])) == 0.0

    def test_entropy_grad_matches_numerical(self):
        logits = np.array([0.1, 0.7, -0.3])
        eps = 1e-6
        analytic = entropy_grad(masked_softmax(logits))
        for i in range(3):
            z = logits.copy()
            z[i] += eps
            hi = categorical_entropy(masked_softmax(z))
            z[i] -= 2 * eps
            lo = categorical_entropy(masked_softmax(z))
            assert analytic[i] == pytest.approx((hi - lo) / (2 * eps), abs=1e-4)


class TestLogProbGrad:
    def test_matches_numerical(self):
        logits = np.array([0.2, -0.4, 1.1])
        action = 2
        eps = 1e-6
        probs = masked_softmax(logits)
        analytic = softmax_grad_from_logp_grad(probs, action, 1.0)
        for i in range(3):
            z = logits.copy()
            z[i] += eps
            hi = np.log(masked_softmax(z)[action])
            z[i] -= 2 * eps
            lo = np.log(masked_softmax(z)[action])
            assert analytic[i] == pytest.approx((hi - lo) / (2 * eps), abs=1e-4)

    def test_coefficient_scales(self):
        probs = masked_softmax(np.array([0.0, 1.0]))
        g1 = softmax_grad_from_logp_grad(probs, 0, 1.0)
        g3 = softmax_grad_from_logp_grad(probs, 0, 3.0)
        assert np.allclose(g3, 3 * g1)
