"""Invariant-checker tests: clean runs pass, corrupted state is caught."""

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.resources import ResourceVector
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig
from repro.sim.validation import InvariantChecker, InvariantViolation
from repro.workloads.trace import SyntheticTrace, TraceConfig


def run_validated(manager_policy_kwargs=None):
    kwargs = manager_policy_kwargs or {}
    config = TangoConfig.tango(
        topology=TopologyConfig(n_clusters=3, workers_per_cluster=2, seed=1),
        runner=RunnerConfig(duration_ms=6_000.0, validate=True),
        **kwargs,
    )
    trace = SyntheticTrace(
        TraceConfig(n_clusters=3, duration_ms=6_000.0, seed=1,
                    lc_peak_rps=15.0, be_peak_rps=6.0)
    ).generate()
    system = TangoSystem(config)
    metrics = system.run(trace)
    return system, metrics


class TestCleanRuns:
    def test_tango_passes_every_tick(self):
        system, _ = run_validated()
        assert system.last_runner.checker.checks_run > 100

    def test_all_stacks_pass(self):
        for factory in (TangoConfig.k8s_native, TangoConfig.ceres):
            config = factory(
                topology=TopologyConfig(n_clusters=2, workers_per_cluster=2,
                                        seed=0),
                runner=RunnerConfig(duration_ms=4_000.0, validate=True),
            )
            trace = SyntheticTrace(
                TraceConfig(n_clusters=2, duration_ms=4_000.0, seed=0)
            ).generate()
            TangoSystem(config).run(trace)  # raises on violation

    def test_validated_run_with_failures(self):
        from repro.sim.failures import FailureConfig

        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=1),
            runner=RunnerConfig(
                duration_ms=5_000.0,
                validate=True,
                failures=FailureConfig(node_mtbf_ms=1_000.0,
                                       node_downtime_ms=1_000.0, seed=3),
            ),
        )
        trace = SyntheticTrace(
            TraceConfig(n_clusters=2, duration_ms=5_000.0, seed=1)
        ).generate()
        TangoSystem(config).run(trace)  # raises on violation


class TestDetection:
    def make_system(self):
        system, _ = run_validated()
        return system

    def test_detects_unbacked_allocation(self):
        system = self.make_system()
        worker = system.system.clusters[0].workers[0]
        checker = InvariantChecker(system.system)
        worker._allocated = worker._allocated + ResourceVector(cpu=1.0)
        # either the conservation or the backing invariant must trip
        with pytest.raises(InvariantViolation):
            checker.check(0.0, system.last_runner.collector.metrics)

    def test_detects_metric_inconsistency(self):
        system = self.make_system()
        checker = InvariantChecker(system.system)
        metrics = system.last_runner.collector.metrics
        metrics.lc_satisfied = metrics.lc_completed + 10
        with pytest.raises(InvariantViolation, match="satisfied"):
            checker.check(0.0, metrics)
