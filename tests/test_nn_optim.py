"""Optimizer behaviour tests."""

import numpy as np
import pytest

from repro.nn.optim import Adam, SGD, clip_grad_norm


def quadratic_problem():
    """Minimise ||x - target||^2 from zero."""
    target = np.array([1.0, -2.0, 3.0])
    x = np.zeros(3)
    g = np.zeros(3)

    def compute_grad():
        g[...] = 2 * (x - target)

    return x, g, target, compute_grad


class TestSGD:
    def test_converges_on_quadratic(self):
        x, g, target, compute = quadratic_problem()
        opt = SGD([x], [g], lr=0.1)
        for _ in range(200):
            compute()
            opt.step()
        assert np.allclose(x, target, atol=1e-3)

    def test_momentum_accelerates(self):
        x1, g1, target, c1 = quadratic_problem()
        x2, g2, _, c2 = quadratic_problem()
        plain = SGD([x1], [g1], lr=0.01)
        momentum = SGD([x2], [g2], lr=0.01, momentum=0.9)
        for _ in range(50):
            c1(); plain.step()
            c2(); momentum.step()
        assert np.linalg.norm(x2 - target) < np.linalg.norm(x1 - target)

    def test_mismatched_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(2)], [])


class TestAdam:
    def test_converges_on_quadratic(self):
        x, g, target, compute = quadratic_problem()
        opt = Adam([x], [g], lr=0.05)
        for _ in range(500):
            compute()
            opt.step()
        assert np.allclose(x, target, atol=1e-2)

    def test_first_step_size_is_lr(self):
        # with bias correction, |Δx| of the first step equals lr exactly
        x = np.array([0.0])
        g = np.array([123.0])
        opt = Adam([x], [g], lr=2e-4)
        opt.step()
        assert abs(x[0] + 2e-4) < 1e-9

    def test_updates_in_place(self):
        x = np.zeros(3)
        g = np.ones(3)
        opt = Adam([x], [g], lr=0.1)
        ref = x
        opt.step()
        assert ref is x  # object identity preserved (in-place update)
        assert not np.allclose(x, 0.0)

    def test_mismatched_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(2)], [np.zeros(2), np.zeros(2)])


class TestClip:
    def test_clip_reduces_norm(self):
        g = [np.full(4, 10.0)]
        total = clip_grad_norm(g, max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(g[0]) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        g = [np.array([0.1, 0.1])]
        before = g[0].copy()
        clip_grad_norm(g, max_norm=10.0)
        assert np.allclose(g[0], before)

    def test_zero_grad_safe(self):
        g = [np.zeros(3)]
        assert clip_grad_norm(g, 1.0) == 0.0
