"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import WorkerNode
from repro.cluster.resources import ResourceVector
from repro.workloads.spec import ServiceKind, default_catalog


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def catalog():
    return default_catalog()


@pytest.fixture
def lc_spec(catalog):
    return next(s for s in catalog if s.kind is ServiceKind.LC)


@pytest.fixture
def be_spec(catalog):
    return next(s for s in catalog if s.kind is ServiceKind.BE)


@pytest.fixture
def small_node():
    """A 4-CPU / 8-GiB worker, the paper's physical worker SKU."""
    return WorkerNode(
        name="w0",
        cluster_id=0,
        capacity=ResourceVector(cpu=4.0, memory=8 * 1024.0, bandwidth=1000.0,
                                disk=64 * 1024.0),
    )


def make_request(spec, origin=0, arrival=0.0):
    from repro.sim.request import ServiceRequest

    return ServiceRequest(spec=spec, origin_cluster=origin, arrival_ms=arrival)
