"""HRM manager tests: regulations, preemption, BE expansion (§4.1)."""

import pytest

from repro.cluster.node import WorkerNode
from repro.cluster.resources import ResourceVector
from repro.hrm.qos import QoSDetector
from repro.hrm.reassurance import ReassuranceConfig, ReassuranceMechanism
from repro.hrm.regulations import HRMConfig, HRMManager
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

rv = ResourceVector.of
CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


def hrm(**cfg):
    det = QoSDetector()
    mech = ReassuranceMechanism(det, ReassuranceConfig())
    return HRMManager(det, mech, HRMConfig(**cfg))


def node_with(manager, cpu=4.0, mem=8192.0):
    node = WorkerNode("w0", 0, rv(cpu=cpu, memory=mem))
    node.manager = manager
    return node


def req(spec, arrival=0.0):
    return ServiceRequest(spec=spec, origin_cluster=0, arrival_ms=arrival)


class TestAdmission:
    def test_lc_admitted_with_adjusted_minimum(self):
        manager = hrm()
        node = node_with(manager)
        decision = manager.admit(node, req(LC), 0.0)
        assert decision is not None
        assert decision.allocation.approx_equal(
            manager.reassurance.min_resources(node.name, LC).min_with(node.capacity)
        )

    def test_admission_charges_dvpa_latency(self):
        manager = hrm()
        node = node_with(manager)
        decision = manager.admit(node, req(LC), 0.0)
        assert decision.overhead_ms > 0

    def test_dvpa_latency_can_be_disabled(self):
        manager = hrm(charge_dvpa_latency=False)
        node = node_with(manager)
        assert manager.admit(node, req(LC), 0.0).overhead_ms == 0.0

    def test_be_denied_when_full_never_preempts(self):
        manager = hrm()
        node = node_with(manager, cpu=0.2, mem=100.0)
        assert manager.admit(node, req(BE), 0.0) is None
        assert manager.preemption_evictions == 0


class TestPreemption:
    def fill_with_be(self, manager, node, count=3):
        """Run BE requests until the node is packed."""
        for _ in range(count):
            node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)

    def test_lc_squeezes_be_cpu(self):
        manager = hrm()
        # memory plentiful so only CPU is contended; capacity chosen so the
        # two BE minima fill the node and the LC demand cannot fit free CPU
        node = node_with(manager, cpu=1.2, mem=64_000.0)
        self.fill_with_be(manager, node, count=2)
        cpu_before = [r.allocation.cpu for r in node.running_be()]
        decision = manager.admit(node, req(LC), 0.0)
        assert decision is not None
        cpu_after = [r.allocation.cpu for r in node.running_be()]
        assert sum(cpu_after) < sum(cpu_before)
        assert decision.evicted == []  # compressible path: no eviction

    def test_lc_evicts_be_for_memory(self):
        manager = hrm()
        # memory-constrained node: BE packs all memory
        node = node_with(manager, cpu=16.0, mem=2 * 1024.0)
        self.fill_with_be(manager, node, count=2)
        assert node.free().memory < LC.min_resources.memory
        decision = manager.admit(node, req(LC), 0.0)
        assert decision is not None
        assert len(decision.evicted) >= 1
        assert all(not rr.is_lc for rr in decision.evicted)

    def test_admission_fails_when_even_eviction_cannot_help(self):
        manager = hrm()
        node = node_with(manager, cpu=0.05, mem=16.0)
        assert manager.admit(node, req(LC), 0.0) is None

    def test_eviction_prefers_least_progress(self):
        manager = hrm()
        node = node_with(manager, cpu=16.0, mem=3 * 1024.0)
        node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)
        # let the first BE make progress, then add a fresh one
        for t in range(1, 20):
            node.step(t * 25.0, 25.0)
        first = next(iter(node.running.values()))
        node.enqueue(req(BE), 500.0)
        node.step(500.0, 25.0)
        if len(node.running) < 2:
            pytest.skip("node too small to co-run two BE jobs")
        decision = manager.admit(node, req(LC), 525.0)
        assert decision is not None and decision.evicted
        evicted_ids = {rr.request.request_id for rr in decision.evicted}
        # the older (more progressed) BE should be spared when possible
        assert first.request.request_id not in evicted_ids or len(evicted_ids) > 1


class TestBEExpansion:
    def test_be_grows_into_idle_resources(self):
        manager = hrm()
        node = node_with(manager, cpu=8.0, mem=16_384.0)
        node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)
        rr = next(iter(node.running.values()))
        start_cpu = rr.allocation.cpu
        for t in range(1, 10):
            manager.tick(node, t * 25.0)
        assert rr.allocation.cpu > start_cpu

    def test_expansion_capped_at_multiple_of_reference(self):
        manager = hrm()
        cap_mult = manager.config.be_expand_cap
        node = node_with(manager, cpu=64.0, mem=64_000.0)
        node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)
        rr = next(iter(node.running.values()))
        for t in range(1, 100):
            manager.tick(node, t * 25.0)
        assert rr.allocation.cpu <= BE.reference_resources.cpu * cap_mult + 0.1

    def test_no_expansion_when_node_full(self):
        manager = hrm()
        node = node_with(manager, cpu=1.0, mem=2048.0)
        node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)
        free_before = node.free().cpu
        manager.tick(node, 25.0)
        assert node.free().cpu <= free_before + 1e-9


class TestQoSFeedback:
    def test_completion_feeds_detector(self):
        manager = hrm()
        node = node_with(manager)
        r = req(LC)
        node.enqueue(r, 0.0)
        t = 0.0
        for _ in range(200):
            done, _, _ = node.step(t, 25.0)
            t += 25.0
            if done:
                break
        assert manager.detector.sample_count(node.name, LC.name) == 1
