"""Tests for the supply/demand transport lowering used by DSS-LC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.graph import SupplyDemandGraph, solve_transport


def make_star(pending: int, capacities, delays):
    """Master at node 0 supplying `pending`, workers 1..n absorbing."""
    graph = SupplyDemandGraph()
    graph.supplies = [pending] + [-c for c in capacities]
    for i, delay in enumerate(delays):
        graph.edges.append((0, 1 + i, delay, 1000))
    return graph


class TestTransport:
    def test_prefers_low_delay_worker(self):
        graph = make_star(3, [10, 10], [1.0, 50.0])
        result = solve_transport(graph)
        assert result.placed == 3
        assert result.absorbed == {1: 3}

    def test_spills_when_cheap_worker_full(self):
        graph = make_star(8, [5, 10], [1.0, 50.0])
        result = solve_transport(graph)
        assert result.placed == 8
        assert result.absorbed[1] == 5
        assert result.absorbed[2] == 3

    def test_respects_link_capacity(self):
        graph = SupplyDemandGraph()
        graph.supplies = [6, -10]
        graph.edges = [(0, 1, 1.0, 4)]
        result = solve_transport(graph)
        assert result.placed == 4

    def test_total_delay_accounting(self):
        graph = make_star(2, [2], [7.5])
        result = solve_transport(graph)
        assert result.total_delay_ms == pytest.approx(15.0, abs=0.01)

    def test_empty_graph(self):
        result = solve_transport(SupplyDemandGraph())
        assert result.placed == 0
        assert result.routed == {}

    def test_insufficient_capacity_partial_placement(self):
        graph = make_star(10, [3, 2], [1.0, 2.0])
        result = solve_transport(graph)
        assert result.placed == 5

    def test_multi_hop_relay(self):
        # master(0) → relay(1) → worker(2); relay has no capacity itself
        graph = SupplyDemandGraph()
        graph.supplies = [2, 0, -2]
        graph.edges = [(0, 1, 1.0, 10), (1, 2, 1.0, 10)]
        result = solve_transport(graph)
        assert result.placed == 2
        assert result.absorbed == {2: 2}
        assert result.routed[(0, 1)] == 2
        assert result.routed[(1, 2)] == 2


class TestTransportProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        pending=st.integers(min_value=0, max_value=30),
        caps=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=6),
    )
    def test_placed_never_exceeds_supply_or_capacity(self, pending, caps):
        delays = [float(i + 1) for i in range(len(caps))]
        result = solve_transport(make_star(pending, caps, delays))
        assert result.placed <= pending
        assert result.placed <= sum(caps)
        assert result.placed == min(pending, sum(caps))  # star is always feasible

    @settings(max_examples=50, deadline=None)
    @given(
        pending=st.integers(min_value=1, max_value=30),
        caps=st.lists(st.integers(min_value=1, max_value=10), min_size=2, max_size=6),
    )
    def test_absorption_respects_per_node_capacity(self, pending, caps):
        delays = [float(i + 1) for i in range(len(caps))]
        result = solve_transport(make_star(pending, caps, delays))
        for j, count in result.absorbed.items():
            assert count <= caps[j - 1]

    @settings(max_examples=30, deadline=None)
    @given(pending=st.integers(min_value=1, max_value=20))
    def test_greedy_delay_ordering(self, pending):
        # with ample capacity everywhere, everything goes to the closest node
        caps = [100, 100, 100]
        result = solve_transport(make_star(pending, caps, [5.0, 1.0, 9.0]))
        assert result.absorbed == {2: pending}
