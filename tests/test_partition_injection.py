"""Runner-level WAN partition coverage.

The injector-level partition mechanics live in tests/test_failures.py;
these tests drive partitions through the whole runner loop and assert the
behaviours a management framework must keep under a WAN split:

* a partitioned cluster's workers disappear from scheduler snapshots and
  no dispatch decision targets them while the partition is active;
* dispatch keeps working on the remaining topology (LC still completes);
* the heal restores visibility;
* partition/heal events land on the observability bus and in the kube
  audit stream.
"""

from __future__ import annotations

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.kube.events import Reason
from repro.obs.events import (
    PartitionHealed,
    PartitionStarted,
    RequestScheduled,
)
from repro.sim.engine import TICK_MS
from repro.sim.failures import FailureConfig
from repro.sim.runner import RunnerConfig, SimulationRunner
from repro.workloads.trace import SyntheticTrace, TraceConfig

CLUSTERS = 3
WORKERS = 2


def partition_config(seed=3, duration_ms=4_000.0):
    return RunnerConfig(
        duration_ms=duration_ms,
        observe=True,
        record_events=True,
        obs_ring_capacity=100_000,
        # refresh the scheduler snapshots every tick so a partition is
        # visible to the very next dispatch round (no staleness window).
        state_refresh_ms=TICK_MS,
        failures=FailureConfig(
            node_mtbf_ms=None,  # isolate partitions from crashes
            partition_mtbf_ms=600.0,
            partition_duration_ms=400.0,
            seed=seed,
        ),
    )


def run_partitioned(seed=3, duration_ms=4_000.0):
    cfg = TangoConfig.tango(
        topology=TopologyConfig(
            n_clusters=CLUSTERS, workers_per_cluster=WORKERS, seed=0
        ),
        runner=partition_config(seed=seed, duration_ms=duration_ms),
    )
    system = TangoSystem(cfg)
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=CLUSTERS, duration_ms=duration_ms, seed=1,
            lc_peak_rps=15.0, be_peak_rps=5.0,
        )
    ).generate()
    metrics = system.run(trace)
    return system, metrics


class TestPartitionRun:
    def test_partitions_happen_and_dispatch_continues(self):
        system, metrics = run_partitioned()
        runner = system.last_runner
        bus = runner.hub.bus
        starts = bus.count(PartitionStarted)
        assert starts >= 1, "config must actually trigger partitions"
        # service survives: LC work keeps completing on the rest of the
        # topology despite clusters dropping off the WAN
        assert metrics.lc_completed > 0
        assert metrics.be_completed > 0

    def test_heals_follow_starts(self):
        system, _ = run_partitioned()
        bus = system.last_runner.hub.bus
        starts = bus.count(PartitionStarted)
        heals = bus.count(PartitionHealed)
        # every partition heals eventually; a start can extend an already
        # active partition (merging into one heal), and partitions still
        # active at the end of the run are outstanding — so heals never
        # exceed starts minus what is still open
        assert 0 < heals <= starts
        outstanding = len(system.last_runner.injector._partitioned)
        assert starts - heals >= outstanding

    def test_central_cluster_never_partitioned(self):
        system, _ = run_partitioned()
        bus = system.last_runner.hub.bus
        central = system.system.central_cluster_id
        for ev in bus.events(PartitionStarted):
            assert ev.cluster_id != central

    def test_no_dispatch_into_partitioned_cluster(self):
        """Reconstruct partition windows from the event stream and check
        no scheduling decision targeted an isolated cluster."""
        system, _ = run_partitioned()
        bus = system.last_runner.hub.bus
        windows = {}  # cluster -> [start, heal)
        open_at = {}
        for ev in bus.events(PartitionStarted, PartitionHealed):
            if isinstance(ev, PartitionStarted):
                open_at[ev.cluster_id] = ev.time_ms
            else:
                windows.setdefault(ev.cluster_id, []).append(
                    (open_at.pop(ev.cluster_id), ev.time_ms)
                )
        for cid, start in open_at.items():  # unhealed at end of run
            windows.setdefault(cid, []).append((start, float("inf")))
        assert windows
        for ev in bus.events(RequestScheduled):
            for start, heal in windows.get(ev.cluster_id, ()):
                assert not (start <= ev.time_ms < heal), (
                    f"request {ev.request_id} scheduled into partitioned "
                    f"cluster {ev.cluster_id} at t={ev.time_ms}"
                )

    def test_events_reach_kube_audit_stream(self):
        system, _ = run_partitioned()
        runner = system.last_runner
        recorder = runner.events
        bus = runner.hub.bus
        assert recorder.count(Reason.PARTITIONED) == bus.count(PartitionStarted)
        assert recorder.count(Reason.PARTITION_HEALED) == bus.count(
            PartitionHealed
        )
        entry = recorder.events(Reason.PARTITIONED)[0]
        assert entry.type == "Warning"
        assert entry.involved.startswith("cluster/")

    def test_bus_matches_injector_event_log(self):
        system, _ = run_partitioned()
        runner = system.last_runner
        legacy = [e for e in runner.injector.events if e.kind == "partition"]
        assert len(legacy) == runner.hub.bus.count(PartitionStarted)

    def test_metric_counters(self):
        system, _ = run_partitioned()
        runner = system.last_runner
        reg = runner.hub.registry
        bus = runner.hub.bus
        assert reg.get("wan_partitions_total").value() == bus.count(
            PartitionStarted
        )
        assert reg.get("wan_heals_total").value() == bus.count(PartitionHealed)


class TestSnapshotVisibility:
    """Deterministic check of the partition → snapshot → heal path."""

    def make_runner(self):
        cfg = TangoConfig.tango(
            topology=TopologyConfig(
                n_clusters=CLUSTERS, workers_per_cluster=WORKERS, seed=0
            ),
            runner=partition_config(),
        )
        system = TangoSystem(cfg)
        runner = SimulationRunner(
            system.system, [], system.catalog,
            system.lc_scheduler, system.be_scheduler,
            config=partition_config(),
            state_storage=system.storage,
            reassurance=system.reassurance,
        )
        return system, runner

    def test_partitioned_cluster_hidden_then_restored(self):
        system, runner = self.make_runner()
        injector = runner.injector
        storage = runner.storage
        victim = 1
        assert victim != system.system.central_cluster_id

        snap = storage.refresh(0.0, force=True)
        assert {n.cluster_id for n in snap.nodes} == set(range(CLUSTERS))
        full_count = len(snap.nodes)

        # partition: workers of the victim cluster vanish from snapshots
        injector._partitioned[victim] = 1_000.0  # heals at t=1000
        snap = storage.refresh(100.0, force=True)
        assert victim not in {n.cluster_id for n in snap.nodes}
        assert len(snap.nodes) == full_count - WORKERS
        assert snap.nodes_of([victim]) == []

        # heal via the injector's own tick hook → visibility restored
        # and the heal event is published on the bus
        injector.apply(1_500.0)
        assert not injector.cluster_is_partitioned(victim)
        snap = storage.refresh(1_600.0, force=True)
        assert len(snap.nodes) == full_count
        assert victim in {n.cluster_id for n in snap.nodes}
        heals = runner.hub.bus.events(PartitionHealed)
        assert [ev.cluster_id for ev in heals] == [victim]
