"""D-VPA tests: in-place scaling semantics and the ~100× latency advantage."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.hrm.dvpa import DVPA, DVPA_SCALE_LATENCY_MS
from repro.kube.kubelet import CONTAINER_COLD_START_MS
from repro.kube.objects import ContainerSpec, Pod, PodSpec
from repro.kube.vpa import NativeVPA

rv = ResourceVector.of


class TestScaling:
    def test_scale_changes_limit(self):
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        dvpa.scale("svc", rv(cpu=2.0, memory=1024))
        assert dvpa.current_limit("svc").cpu == pytest.approx(2.0)

    def test_noop_scale_costs_nothing(self):
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        ops = dvpa.stats.operations
        assert dvpa.scale("svc", rv(cpu=1.0, memory=512)) == 0.0
        assert dvpa.stats.operations == ops

    def test_latency_matches_paper_measurement(self):
        """§7.1: a single scaling operation takes ~23 ms."""
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        latency = dvpa.scale("svc", rv(cpu=2.0, memory=1024))
        assert 15.0 <= latency <= 30.0

    def test_detailed_mode_drives_real_cgroups(self):
        dvpa = DVPA("n0", detailed=True)
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        latency = dvpa.scale("svc", rv(cpu=2.0, memory=1024))
        assert latency > 0
        assert dvpa.tree is not None
        assert len(dvpa.tree.write_log) > 0

    def test_grow_and_release_are_inverse(self):
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        dvpa.grow("svc", rv(cpu=0.5, memory=256))
        assert dvpa.current_limit("svc").cpu == pytest.approx(1.5)
        dvpa.release("svc", rv(cpu=0.5, memory=256))
        assert dvpa.current_limit("svc").cpu == pytest.approx(1.0)

    def test_release_clamps_at_zero(self):
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        dvpa.release("svc", rv(cpu=99.0, memory=99999))
        assert dvpa.current_limit("svc").cpu == 0.0

    def test_release_unknown_service_is_noop(self):
        assert DVPA("n0").release("ghost", rv(cpu=1.0)) == 0.0

    def test_stats_track_direction(self):
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))  # first op counts as expand
        dvpa.scale("svc", rv(cpu=2.0, memory=512))
        dvpa.scale("svc", rv(cpu=0.5, memory=512))
        assert dvpa.stats.expansions >= 2
        assert dvpa.stats.shrinks >= 1


class TestAgainstNativeVPA:
    def test_dvpa_is_about_100x_faster(self):
        """The headline §7.1 comparison: 23 ms vs delete-and-rebuild."""
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        dvpa_latency = dvpa.scale("svc", rv(cpu=2.0, memory=1024))

        pod = Pod(
            name="app",
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        "main", requests=rv(cpu=1.0, memory=512),
                        limits=rv(cpu=1.0, memory=512),
                    )
                ]
            ),
        )
        native_latency = NativeVPA().resize(pod, rv(cpu=2.0, memory=1024)).latency_ms
        ratio = native_latency / dvpa_latency
        assert 50 <= ratio <= 200  # "approximately 100 times"

    def test_dvpa_never_interrupts(self):
        dvpa = DVPA("n0")
        dvpa.scale("svc", rv(cpu=1.0, memory=512))
        # no pod deletion anywhere in the path: current limit always defined
        dvpa.scale("svc", rv(cpu=4.0, memory=2048))
        assert dvpa.current_limit("svc") is not None
