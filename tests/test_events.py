"""Event recorder tests and runner integration."""

import pytest

from repro.kube.events import ClusterEvent, EventRecorder, Reason


class TestRecorder:
    def test_emit_and_query(self):
        rec = EventRecorder()
        rec.emit(100.0, Reason.SCHEDULED, "req/1", "placed on n0")
        rec.emit(200.0, Reason.EVICTED, "req/2", "preempted", type="Warning")
        assert len(rec.events()) == 2
        assert len(rec.events(reason=Reason.EVICTED)) == 1
        assert rec.events(involved="req/1")[0].message == "placed on n0"

    def test_dedup_within_window_counts(self):
        rec = EventRecorder(dedup_window_ms=1_000.0)
        assert rec.emit(0.0, Reason.SCHEDULED, "req/1", "a") is not None
        assert rec.emit(100.0, Reason.SCHEDULED, "req/1", "b") is None
        assert rec.count(Reason.SCHEDULED, "req/1") == 2
        # outside the window a new entry appears
        assert rec.emit(2_000.0, Reason.SCHEDULED, "req/1", "c") is not None

    def test_capacity_bounded(self):
        rec = EventRecorder(capacity=5, dedup_window_ms=0.0)
        for i in range(20):
            rec.emit(float(i), Reason.SCHEDULED, f"req/{i}", "x")
        assert len(rec.events()) == 5
        assert rec.tail(3)[-1].involved == "req/19"

    def test_count_aggregates_over_objects(self):
        rec = EventRecorder()
        rec.emit(0.0, Reason.EVICTED, "req/1", "x")
        rec.emit(0.0, Reason.EVICTED, "req/2", "x")
        assert rec.count(Reason.EVICTED) == 2

    def test_render_format(self):
        rec = EventRecorder()
        rec.emit(1_500.0, Reason.SCHEDULED, "req/9", "hello")
        out = rec.render()
        assert "REASON" in out and "Scheduled" in out and "req/9" in out

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventRecorder(capacity=0)


class TestRunnerIntegration:
    def test_runner_emits_audit_stream(self):
        from repro import TangoConfig, TangoSystem
        from repro.cluster.topology import TopologyConfig
        from repro.sim.runner import RunnerConfig
        from repro.workloads.trace import SyntheticTrace, TraceConfig

        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=1),
            runner=RunnerConfig(duration_ms=4_000.0, record_events=True),
        )
        trace = SyntheticTrace(
            TraceConfig(n_clusters=2, duration_ms=4_000.0, seed=1)
        ).generate()
        system = TangoSystem(config)
        metrics = system.run(trace)
        recorder = system.last_runner.events
        assert recorder is not None
        assert recorder.count(Reason.SCHEDULED) > 0
        if metrics.be_evictions:
            assert recorder.count(Reason.EVICTED) > 0

    def test_events_disabled_by_default(self):
        from repro import TangoConfig, TangoSystem
        from repro.cluster.topology import TopologyConfig
        from repro.sim.runner import RunnerConfig

        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=1),
            runner=RunnerConfig(duration_ms=1_000.0),
        )
        system = TangoSystem(config)
        system.run([])
        assert system.last_runner.events is None
