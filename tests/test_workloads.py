"""Service catalog, synthetic trace, and pattern workload tests."""

import numpy as np
import pytest

from repro.workloads.patterns import PatternConfig, PatternKind, PatternWorkload
from repro.workloads.spec import CatalogError, ServiceKind, ServiceSpec, default_catalog
from repro.workloads.trace import SyntheticTrace, TraceConfig, diurnal_rate
from repro.cluster.resources import ResourceVector


class TestCatalog:
    def test_ten_types_five_each(self, catalog):
        assert len(catalog) == 10
        kinds = [s.kind for s in catalog]
        assert kinds.count(ServiceKind.LC) == 5
        assert kinds.count(ServiceKind.BE) == 5

    def test_lc_targets_around_300ms(self, catalog):
        """Fig. 1(b): LC requests respond within approximately 300 ms."""
        targets = [s.qos_target_ms for s in catalog if s.is_lc]
        assert 200 <= np.mean(targets) <= 400

    def test_latency_sensitivity_tiers(self, catalog):
        for s in catalog:
            if s.is_lc:
                assert s.latency_sensitivity in (2, 3)
            else:
                assert s.latency_sensitivity in (0, 1)

    def test_be_has_no_finite_target(self, catalog):
        assert all(
            not np.isfinite(s.qos_target_ms) for s in catalog if not s.is_lc
        )

    def test_minimum_below_reference(self, catalog):
        for s in catalog:
            assert s.min_resources.cpu < s.reference_resources.cpu

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(CatalogError):
            ServiceSpec(
                name="bad",
                kind=ServiceKind.LC,
                latency_sensitivity=3,
                qos_target_ms=-5.0,
                base_service_ms=10.0,
                min_resources=ResourceVector(cpu=1),
                reference_resources=ResourceVector(cpu=1),
            )
        with pytest.raises(CatalogError):
            ServiceSpec(
                name="bad2",
                kind=ServiceKind.BE,
                latency_sensitivity=0,
                qos_target_ms=float("inf"),
                base_service_ms=0.0,
                min_resources=ResourceVector(cpu=1),
                reference_resources=ResourceVector(cpu=1),
            )


class TestDiurnalShape:
    def test_normalised_to_at_most_one(self):
        hours = np.linspace(0, 24, 200)
        values = [diurnal_rate(h) for h in hours]
        assert max(values) <= 1.0
        assert min(values) > 0.0

    def test_afternoon_peak_exceeds_night(self):
        assert diurnal_rate(15.0) > 2 * diurnal_rate(4.0)

    def test_periodic(self):
        assert diurnal_rate(3.0) == pytest.approx(diurnal_rate(27.0))


class TestSyntheticTrace:
    def make(self, **kw):
        kw.setdefault("duration_ms", 10_000.0)
        kw.setdefault("n_clusters", 3)
        kw.setdefault("seed", 9)
        return SyntheticTrace(TraceConfig(**kw))

    def test_deterministic_per_seed(self):
        a = self.make().generate()
        b = self.make().generate()
        assert len(a) == len(b)
        assert all(
            r1.time_ms == r2.time_ms and r1.service == r2.service
            for r1, r2 in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = self.make(seed=1).generate()
        b = self.make(seed=2).generate()
        assert [r.time_ms for r in a[:50]] != [r.time_ms for r in b[:50]]

    def test_sorted_by_time_within_duration(self):
        records = self.make().generate()
        times = [r.time_ms for r in records]
        assert times == sorted(times)
        assert all(0 <= t < 10_000.0 for t in times)

    def test_both_kinds_present(self):
        records = self.make().generate()
        kinds = {r.kind for r in records}
        assert kinds == {ServiceKind.LC, ServiceKind.BE}

    def test_cluster_ids_in_range(self):
        records = self.make().generate()
        assert {r.cluster_id for r in records} <= {0, 1, 2}

    def test_rate_follows_diurnal_curve(self):
        trace = self.make(hours_per_second=1.0, duration_ms=20_000.0)
        # compare instantaneous rates at trough vs peak hours
        t_peak = (15.0 - trace.config.start_hour) * 1000.0
        t_trough = (28.0 - trace.config.start_hour) * 1000.0
        r_peak = trace.rate_at(t_peak, 0, ServiceKind.LC)
        r_trough = trace.rate_at(t_trough, 0, ServiceKind.LC)
        assert r_peak > r_trough

    def test_utilization_profile_below_20_percent(self):
        """Fig. 1(a): LC alone leaves edge clouds under ~20 % utilisation."""
        trace = self.make(duration_ms=30_000.0, lc_peak_rps=8.0)
        profile = trace.utilization_profile(capacity_cpu_per_cluster=16.0)
        assert profile["utilization"].mean() < 0.25


class TestPatterns:
    def records_for(self, pattern, seed=1):
        cfg = PatternConfig(pattern=pattern, duration_ms=20_000.0, seed=seed)
        return PatternWorkload(cfg).generate(), PatternWorkload(cfg)

    @staticmethod
    def per_second_counts(records, kind, duration_s=20):
        counts = np.zeros(duration_s)
        for r in records:
            if r.kind is kind:
                counts[min(duration_s - 1, int(r.time_ms / 1000.0))] += 1
        return counts

    def test_p1_lc_is_periodic(self):
        records, wl = self.records_for(PatternKind.P1)
        lc = self.per_second_counts(records, ServiceKind.LC)
        be = self.per_second_counts(records, ServiceKind.BE)
        # periodic LC has higher variance-to-mean structure than Poisson BE?
        # instead check the schedule directly: rates oscillate for LC only
        r0 = wl.rates_at(0.0)
        r_quarter = wl.rates_at(wl.config.period_ms / 4.0)
        assert r_quarter[0] != pytest.approx(r0[0])
        assert r_quarter[1] == pytest.approx(r0[1])

    def test_p2_be_is_periodic(self):
        _, wl = self.records_for(PatternKind.P2)
        r0 = wl.rates_at(0.0)
        r_quarter = wl.rates_at(wl.config.period_ms / 4.0)
        assert r_quarter[0] == pytest.approx(r0[0])
        assert r_quarter[1] != pytest.approx(r0[1])

    def test_p3_both_constant_rate(self):
        _, wl = self.records_for(PatternKind.P3)
        assert wl.rates_at(0.0) == wl.rates_at(1234.0)

    def test_mean_rates_close_to_config(self):
        records, wl = self.records_for(PatternKind.P3)
        lc_rate = sum(1 for r in records if r.kind is ServiceKind.LC) / 20.0
        assert lc_rate == pytest.approx(wl.config.lc_mean_rps, rel=0.3)

    def test_deterministic(self):
        a, _ = self.records_for(PatternKind.P1, seed=3)
        b, _ = self.records_for(PatternKind.P1, seed=3)
        assert [r.time_ms for r in a] == [r.time_ms for r in b]
