"""Property tests for the cluster partitioner and the merge contract.

The serial↔sharded equivalence proof rests on a handful of partitioner
properties (every cluster in exactly one shard, permutation stability,
canonical concatenation order, balance) plus one executor property —
results return in payload order, never completion order.  Hypothesis
drives the former; a deliberately out-of-order executor spliced into a
live runner pins the latter end to end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.metrics.fingerprint import metrics_fingerprint
from repro.sim.runner import RunnerConfig
from repro.sim.sharding import (
    ShardExecutor,
    ShardPlan,
    partition_clusters,
)
from repro.workloads.trace import SyntheticTrace, TraceConfig

ids_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200
)
shards_strategy = st.integers(min_value=1, max_value=32)


class TestPartitionProperties:
    @given(ids=ids_strategy, n=shards_strategy)
    @settings(max_examples=200, deadline=None)
    def test_exactly_one_shard(self, ids, n):
        shards = partition_clusters(ids, n)
        flat = [cid for shard in shards for cid in shard]
        assert sorted(flat) == sorted(set(ids))
        assert len(flat) == len(set(flat))

    @given(ids=ids_strategy, n=shards_strategy, perm_seed=st.integers())
    @settings(max_examples=200, deadline=None)
    def test_permutation_stable(self, ids, n, perm_seed):
        import random

        shuffled = list(ids)
        random.Random(perm_seed).shuffle(shuffled)
        assert partition_clusters(shuffled, n) == partition_clusters(ids, n)

    @given(ids=ids_strategy, n=shards_strategy)
    @settings(max_examples=200, deadline=None)
    def test_concat_is_canonical_order(self, ids, n):
        # the merge barrier concatenates per-shard results in shard
        # order; this property makes that THE cluster-ascending order.
        shards = partition_clusters(ids, n)
        flat = [cid for shard in shards for cid in shard]
        assert flat == sorted(set(ids))

    @given(ids=ids_strategy, n=shards_strategy)
    @settings(max_examples=200, deadline=None)
    def test_balanced_and_nonempty(self, ids, n):
        shards = partition_clusters(ids, n)
        sizes = [len(s) for s in shards]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        assert len(shards) == min(n, len(set(ids)))

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            partition_clusters([1, 2, 3], 0)

    def test_empty_ids(self):
        assert partition_clusters([], 4) == []


class TestShardPlan:
    @given(ids=ids_strategy, n=shards_strategy)
    @settings(max_examples=100, deadline=None)
    def test_shard_of_inverts_shards(self, ids, n):
        plan = ShardPlan.build(ids, n)
        for i, members in enumerate(plan.shards):
            for cid in members:
                assert plan.shard_of[cid] == i

    def test_split_nodes_preserves_order(self):
        class FakeNode:
            def __init__(self, cluster_id, name):
                self.cluster_id = cluster_id
                self.name = name

        worker_list = [
            FakeNode(cid, f"n{cid}-{k}") for cid in range(5) for k in range(3)
        ]
        plan = ShardPlan.build(range(5), 2)
        slices = plan.split_nodes(worker_list)
        flat = [node for s in slices for node in s]
        assert flat == worker_list


class ReversedCompletionExecutor(ShardExecutor):
    """Executes payloads in *reverse* order — simulating shards finishing
    out of order — while honoring the contract that results come back in
    payload order.  Any merge that accidentally depended on completion
    order would diverge under this executor."""

    def __init__(self):
        self.calls = 0

    def run_tasks(self, fn, payloads):
        self.calls += 1
        results = {}
        for i in reversed(range(len(payloads))):
            results[i] = fn(payloads[i])
        return [results[i] for i in range(len(payloads))]


class TestMergeOrderIndependence:
    def test_out_of_order_completion_is_invisible(self):
        def build():
            config = TangoConfig.tango(
                topology=TopologyConfig(
                    n_clusters=6, workers_per_cluster=2, seed=1
                ),
                runner=RunnerConfig(
                    duration_ms=2_500.0, shards=3, parallel_backend="serial"
                ),
            )
            trace = SyntheticTrace(
                TraceConfig(
                    n_clusters=6,
                    duration_ms=2_500.0,
                    seed=1,
                    lc_peak_rps=15.0,
                    be_peak_rps=5.0,
                )
            ).generate()
            return TangoSystem(config), trace

        system, trace = build()
        straight = metrics_fingerprint(system.run(trace))
        system.last_runner.close()

        system, trace = build()
        runner = system._build_runner(trace)
        executor = ReversedCompletionExecutor()
        swapped = 0
        for stage in runner.pipeline.stages:
            if hasattr(stage, "executor"):
                stage.executor = executor
                swapped += 1
        assert swapped >= 3  # lc + refresh + step + reassure (non-profiled)
        reversed_fp = metrics_fingerprint(runner.run())
        runner.close()

        assert executor.calls > 0
        assert reversed_fp == straight
