"""Static partition (K8s-native) and CERES resource-manager tests."""

import pytest

from repro.baselines.ceres import CeresConfig, CeresManager
from repro.baselines.static import StaticPartitionManager
from repro.cluster.node import WorkerNode
from repro.cluster.resources import ResourceVector
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

rv = ResourceVector.of
CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


def node_with(manager, cpu=4.0, mem=8192.0):
    node = WorkerNode("w0", 0, rv(cpu=cpu, memory=mem))
    node.manager = manager
    return node


def req(spec):
    return ServiceRequest(spec=spec, origin_cluster=0, arrival_ms=0.0)


class TestStaticPartition:
    def test_reference_allocation_granted(self):
        mgr = StaticPartitionManager(lc_share=0.5)
        node = node_with(mgr)
        decision = mgr.admit(node, req(LC), 0.0)
        assert decision.allocation.approx_equal(LC.reference_resources)

    def test_partition_capacity_enforced(self):
        mgr = StaticPartitionManager(lc_share=0.5)
        node = node_with(mgr, cpu=2.0, mem=4096.0)
        # LC quota = 1 CPU → one lc-cloud-render (1.0 cpu) fits, second not
        first = mgr.admit(node, req(LC), 0.0)
        assert first is not None
        node.grant(first.allocation)
        assert mgr.admit(node, req(LC), 0.0) is None

    def test_partitions_isolated(self):
        mgr = StaticPartitionManager(lc_share=0.5)
        # BE quota = (1 cpu, 4096 MiB): one be-analytics (1 cpu) fills it
        node = node_with(mgr, cpu=2.0, mem=8192.0)
        d = mgr.admit(node, req(BE), 0.0)
        assert d is not None
        node.grant(d.allocation)
        assert mgr.admit(node, req(BE), 0.0) is None
        # the LC half is still available (lc-cloud-render also needs 1 cpu)
        assert mgr.admit(node, req(LC), 0.0) is not None

    def test_completion_releases_partition(self):
        from repro.cluster.node import RunningRequest

        mgr = StaticPartitionManager()
        node = node_with(mgr)
        d = mgr.admit(node, req(LC), 0.0)
        node.grant(d.allocation)
        rr = RunningRequest(request=req(LC), allocation=d.allocation,
                            remaining_ms=0.0)
        mgr.on_complete(node, rr, 100.0)
        node.reclaim(d.allocation)
        assert mgr.admit(node, req(LC), 0.0) is not None

    def test_never_overcommits_node(self):
        mgr = StaticPartitionManager(lc_share=0.9)
        node = node_with(mgr, cpu=1.0, mem=1024.0)
        granted = rv()
        for _ in range(10):
            d = mgr.admit(node, req(LC), 0.0)
            if d is None:
                break
            node.grant(d.allocation)
            granted = granted + d.allocation
        assert granted.fits_in(node.capacity)

    def test_no_preemption_or_adjustment(self):
        mgr = StaticPartitionManager()
        node = node_with(mgr)
        mgr.tick(node, 0.0)  # must be a no-op
        assert node.free().approx_equal(node.capacity)

    def test_invalid_share_rejected(self):
        with pytest.raises(ValueError):
            StaticPartitionManager(lc_share=0.0)


class TestCeres:
    def test_lc_gets_reference_allocation(self):
        mgr = CeresManager()
        node = node_with(mgr, cpu=8.0, mem=16384.0)
        d = mgr.admit(node, req(LC), 0.0)
        assert d.allocation.approx_equal(LC.reference_resources)

    def test_be_gets_minimum_allocation(self):
        mgr = CeresManager()
        node = node_with(mgr, cpu=8.0, mem=16384.0)
        d = mgr.admit(node, req(BE), 0.0)
        assert d.allocation.approx_equal(BE.min_resources)

    def test_be_blocked_by_memory_headroom(self):
        mgr = CeresManager(CeresConfig(lc_memory_headroom=0.6))
        node = node_with(mgr, cpu=16.0, mem=2 * BE.min_resources.memory)
        # admitting one BE would leave only 50% memory free < 60% headroom
        assert mgr.admit(node, req(BE), 0.0) is None

    def test_lc_squeezes_be_cpu(self):
        mgr = CeresManager(CeresConfig(lc_memory_headroom=0.0))
        # capacity leaves 0.8 cpu free after BE's 0.5; the LC reference of
        # 1.0 cpu needs a 0.2 squeeze, within BE's reducible 0.25
        node = node_with(mgr, cpu=1.3, mem=65536.0)
        d_be = mgr.admit(node, req(BE), 0.0)
        node.grant(d_be.allocation)
        node.running[1] = __import__(
            "repro.cluster.node", fromlist=["RunningRequest"]
        ).RunningRequest(request=req(BE), allocation=d_be.allocation,
                         remaining_ms=1000.0)
        d_lc = mgr.admit(node, req(LC), 0.0)
        assert d_lc is not None
        assert node.running[1].allocation.cpu < d_be.allocation.cpu

    def test_lc_never_evicts(self):
        mgr = CeresManager(CeresConfig(lc_memory_headroom=0.0))
        node = node_with(mgr, cpu=16.0, mem=BE.min_resources.memory * 1.2)
        d_be = mgr.admit(node, req(BE), 0.0)
        node.grant(d_be.allocation)
        from repro.cluster.node import RunningRequest

        node.running[1] = RunningRequest(request=req(BE),
                                         allocation=d_be.allocation,
                                         remaining_ms=1000.0)
        d_lc = mgr.admit(node, req(LC), 0.0)
        # memory cannot be squeezed and CERES cannot evict → LC waits
        assert d_lc is None
        assert len(node.running) == 1

    def test_controller_expands_below_setpoint(self):
        from repro.cluster.node import RunningRequest

        mgr = CeresManager(CeresConfig(period_ms=0.0))
        node = node_with(mgr, cpu=16.0, mem=32768.0)
        alloc = rv(cpu=0.5, memory=1024.0)
        node.grant(alloc)
        rr = RunningRequest(request=req(BE), allocation=alloc, remaining_ms=1e3)
        node.running[rr.request.request_id] = rr
        mgr.tick(node, 0.0)
        assert rr.allocation.cpu > 0.5

    def test_controller_shrinks_above_setpoint(self):
        from repro.cluster.node import RunningRequest

        mgr = CeresManager(CeresConfig(period_ms=0.0, target_utilization=0.3))
        node = node_with(mgr, cpu=4.0, mem=32768.0)
        alloc = rv(cpu=3.5, memory=1024.0)
        node.grant(alloc)
        rr = RunningRequest(request=req(BE), allocation=alloc, remaining_ms=1e3)
        node.running[rr.request.request_id] = rr
        mgr.tick(node, 0.0)
        assert rr.allocation.cpu < 3.5

    def test_controller_period_gated(self):
        from repro.cluster.node import RunningRequest

        mgr = CeresManager(CeresConfig(period_ms=1000.0))
        node = node_with(mgr, cpu=16.0, mem=32768.0)
        alloc = rv(cpu=0.5, memory=1024.0)
        node.grant(alloc)
        rr = RunningRequest(request=req(BE), allocation=alloc, remaining_ms=1e3)
        node.running[rr.request.request_id] = rr
        mgr.tick(node, 0.0)
        cpu_after_first = rr.allocation.cpu
        mgr.tick(node, 100.0)  # inside the period → no change
        assert rr.allocation.cpu == cpu_after_first
