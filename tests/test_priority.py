"""ρ(·) priority-policy tests (DSS-LC case-2 split extension point)."""

import numpy as np
import pytest

from repro.scheduling.priority import (
    DeadlinePriority,
    FIFOPriority,
    RandomPriority,
    TierPriority,
    make_priority,
)
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC_SPECS = [s for s in CATALOG if s.kind is ServiceKind.LC]


def req(spec=None, arrival=0.0):
    return ServiceRequest(
        spec=spec or LC_SPECS[0], origin_cluster=0, arrival_ms=arrival
    )


class TestPolicies:
    def test_random_is_a_permutation(self):
        requests = [req(arrival=float(i)) for i in range(10)]
        ordered = RandomPriority(seed=1).order(requests, 0.0)
        assert sorted(r.request_id for r in ordered) == sorted(
            r.request_id for r in requests
        )

    def test_random_deterministic_per_seed(self):
        requests = [req(arrival=float(i)) for i in range(10)]
        a = RandomPriority(seed=3).order(requests, 0.0)
        b = RandomPriority(seed=3).order(requests, 0.0)
        assert [r.request_id for r in a] == [r.request_id for r in b]

    def test_fifo_orders_by_arrival(self):
        requests = [req(arrival=5.0), req(arrival=1.0), req(arrival=3.0)]
        ordered = FIFOPriority().order(requests, 10.0)
        assert [r.arrival_ms for r in ordered] == [1.0, 3.0, 5.0]

    def test_deadline_puts_tightest_slack_first(self):
        tight_spec = min(LC_SPECS, key=lambda s: s.qos_target_ms)
        loose_spec = max(LC_SPECS, key=lambda s: s.qos_target_ms)
        tight = req(tight_spec, arrival=0.0)
        loose = req(loose_spec, arrival=0.0)
        ordered = DeadlinePriority().order([loose, tight], now_ms=50.0)
        assert ordered[0] is tight

    def test_deadline_accounts_for_waiting_time(self):
        spec = LC_SPECS[0]
        old = req(spec, arrival=0.0)
        fresh = req(spec, arrival=100.0)
        ordered = DeadlinePriority().order([fresh, old], now_ms=150.0)
        assert ordered[0] is old  # been waiting longer → less slack

    def test_tier_orders_by_sensitivity(self):
        tier3 = next(s for s in LC_SPECS if s.latency_sensitivity == 3)
        tier2 = next(s for s in LC_SPECS if s.latency_sensitivity == 2)
        low = req(tier2, arrival=0.0)
        high = req(tier3, arrival=5.0)
        ordered = TierPriority().order([low, high], 10.0)
        assert ordered[0] is high

    def test_registry(self):
        for name in ("random", "fifo", "deadline", "tier"):
            policy = make_priority(name)
            assert policy.order([req()], 0.0)
        with pytest.raises(ValueError):
            make_priority("bogus")


class TestInsideDSSLC:
    def test_deadline_policy_reduces_stale_queueing(self):
        """Under overload, EDF places the closest-to-deadline requests."""
        from repro.core.state_storage import NodeSnapshot, SystemSnapshot
        from repro.scheduling.dss_lc import DSSLCConfig, DSSLCScheduler

        spec = LC_SPECS[0]
        r_cpu, r_mem = spec.min_resources.cpu, spec.min_resources.memory
        nodes = [
            NodeSnapshot(
                name="only", cluster_id=0, cpu_total=r_cpu * 2.0,
                cpu_available=r_cpu * 1.2, mem_total=r_mem * 4.0,
                mem_available=r_mem * 1.2, lc_queue=0, be_queue=0,
                running=0, min_slack=1.0,
            )
        ]
        snap = SystemSnapshot(
            time_ms=1_000.0, nodes=nodes, delay_ms=[[1.0]],
            central_cluster_id=0,
        )
        old = req(spec, arrival=0.0)       # waited 1 s already
        fresh = req(spec, arrival=990.0)
        sched = DSSLCScheduler(
            DSSLCConfig(priority="deadline", target_fill=1.0, max_queue_push=0)
        )
        out = sched.dispatch(0, [fresh, old], snap, [0], 1_000.0)
        assert len(out) == 1
        assert out[0].request is old
