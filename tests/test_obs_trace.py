"""Unit tests for the request tracer: span assembly from synthetic events."""

import io
import json
from types import SimpleNamespace

import pytest

from repro.obs.bus import EventBus
from repro.obs.events import (
    RequestAbandoned,
    RequestArrived,
    RequestCompleted,
    RequestDelivered,
    RequestDropped,
    RequestEvicted,
    RequestRequeued,
    RequestScheduled,
)
from repro.obs.tracing import RequestTracer


def make_tracer(capacity=100_000):
    bus = EventBus()
    return bus, RequestTracer(bus, capacity=capacity)


def publish_lifecycle(bus, rid=1, *, started_ms=30.0, overhead_ms=0.0):
    """Publish a full arrival → completion sequence for one request."""
    bus.publish(RequestArrived(time_ms=0.0, request_id=rid, service="svc",
                               lc=True, origin_cluster=2))
    bus.publish(RequestScheduled(
        time_ms=10.0, request_id=rid, service="svc", origin_cluster=2,
        node="w1", cluster_id=0, cost_ms=4.0, ship_delay_ms=5.0,
        scheduler="dss-lc",
    ))
    bus.publish(RequestDelivered(time_ms=15.0, request_id=rid, node="w1"))
    request = SimpleNamespace(
        started_ms=started_ms, allocation_overhead_ms=overhead_ms
    )
    bus.publish(RequestCompleted(
        time_ms=80.0, request_id=rid, service="svc", lc=True, node="w1",
        latency_ms=80.0, qos_met=True, request=request,
    ))


class TestSpanAssembly:
    def test_full_chain(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus)
        trace = tracer.get(1)
        assert trace.status == "completed"
        assert trace.span_names() == [
            "master_queue", "schedule", "ship", "node_queue", "execute",
            "complete",
        ]
        # every span closed, chain is contiguous in time
        assert all(s.end_ms is not None for s in trace.spans)
        assert trace.total_ms() == 80.0

    def test_queue_execute_boundary_from_started_ms(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus, started_ms=30.0)
        trace = tracer.get(1)
        by_name = {s.name: s for s in trace.spans}
        assert by_name["node_queue"].end_ms == 30.0
        assert by_name["execute"].start_ms == 30.0
        assert by_name["execute"].end_ms == 80.0

    def test_allocation_overhead_attached(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus, overhead_ms=7.5)
        trace = tracer.get(1)
        by_name = {s.name: s for s in trace.spans}
        assert by_name["node_queue"].attrs["allocation_overhead_ms"] == 7.5

    def test_schedule_span_carries_decision_attrs(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus)
        sched = next(s for s in tracer.get(1).spans if s.name == "schedule")
        assert sched.attrs == {
            "node": "w1", "cluster": 0, "cost_ms": 4.0, "scheduler": "dss-lc",
        }

    def test_started_before_delivery_is_clamped(self):
        """A stale started_ms can't make node_queue run backwards."""
        bus, tracer = make_tracer()
        publish_lifecycle(bus, started_ms=5.0)  # before delivery at 15.0
        by_name = {s.name: s for s in tracer.get(1).spans}
        assert by_name["node_queue"].end_ms == 15.0

    def test_abandon(self):
        bus, tracer = make_tracer()
        bus.publish(RequestArrived(time_ms=0.0, request_id=1, service="svc"))
        bus.publish(RequestAbandoned(time_ms=40.0, request_id=1,
                                     service="svc", where="crash"))
        trace = tracer.get(1)
        assert trace.status == "abandoned"
        assert trace.span_names() == ["master_queue", "abandon"]
        assert trace.spans[-1].attrs["where"] == "crash"
        assert trace.total_ms() == 40.0

    def test_evict_requeue_cycle(self):
        """An evicted BE request gets a marker plus a fresh master_queue."""
        bus, tracer = make_tracer()
        bus.publish(RequestArrived(time_ms=0.0, request_id=1, service="be",
                                   lc=False))
        bus.publish(RequestScheduled(time_ms=5.0, request_id=1, node="w0"))
        bus.publish(RequestDelivered(time_ms=8.0, request_id=1, node="w0"))
        bus.publish(RequestEvicted(time_ms=20.0, request_id=1, node="w0",
                                   cause="preemption"))
        bus.publish(RequestRequeued(time_ms=25.0, request_id=1,
                                    reschedules=1))
        trace = tracer.get(1)
        assert trace.status == "open"
        assert trace.span_names() == [
            "master_queue", "schedule", "ship", "node_queue",
            "evict_requeue", "master_queue",
        ]
        assert trace.spans[-1].end_ms is None  # back in the queue, open
        assert trace.spans[-1].attrs["reschedules"] == 1

    def test_drop_terminates(self):
        bus, tracer = make_tracer()
        bus.publish(RequestArrived(time_ms=0.0, request_id=1, service="be",
                                   lc=False))
        bus.publish(RequestDropped(time_ms=9.0, request_id=1, service="be",
                                   reschedules=3))
        assert tracer.get(1).status == "dropped"

    def test_unknown_request_events_ignored(self):
        bus, tracer = make_tracer()
        bus.publish(RequestCompleted(time_ms=1.0, request_id=99))
        bus.publish(RequestScheduled(time_ms=1.0, request_id=99))
        assert len(tracer) == 0


class TestEvictionAndQueries:
    def test_oldest_finished_evicted_first(self):
        bus, tracer = make_tracer(capacity=3)
        publish_lifecycle(bus, rid=1)
        publish_lifecycle(bus, rid=2)
        # rid=3 stays open
        bus.publish(RequestArrived(time_ms=0.0, request_id=3, service="svc"))
        publish_lifecycle(bus, rid=4)  # over capacity → evict oldest finished
        assert tracer.get(1) is None
        assert tracer.get(2) is not None
        assert tracer.get(3) is not None
        assert tracer.dropped_traces == 1

    def test_open_traces_never_evicted(self):
        bus, tracer = make_tracer(capacity=2)
        for rid in (1, 2, 3):
            bus.publish(RequestArrived(time_ms=0.0, request_id=rid,
                                       service="svc"))
        assert len(tracer) == 3  # all open → nothing evictable
        assert tracer.dropped_traces == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RequestTracer(EventBus(), capacity=0)

    def test_status_and_service_filters(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus, rid=1)
        bus.publish(RequestArrived(time_ms=0.0, request_id=2, service="other"))
        assert len(tracer.completed()) == 1
        assert len(tracer.traces(status="open")) == 1
        assert tracer.traces(service="other")[0].request_id == 2

    def test_stage_durations(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus, started_ms=30.0)
        durations = tracer.get(1).stage_durations()
        assert durations["master_queue"] == 10.0
        assert durations["ship"] == 5.0
        assert durations["node_queue"] == 15.0
        assert durations["execute"] == 50.0


class TestJsonl:
    def test_jsonl_shape(self):
        bus, tracer = make_tracer()
        publish_lifecycle(bus)
        buf = io.StringIO()
        assert tracer.to_jsonl(buf) == 1
        row = json.loads(buf.getvalue())
        assert row["request_id"] == 1
        assert row["status"] == "completed"
        assert row["kind"] == "lc"
        assert [s["name"] for s in row["spans"]] == [
            "master_queue", "schedule", "ship", "node_queue", "execute",
            "complete",
        ]

    def test_limit(self):
        bus, tracer = make_tracer()
        for rid in (1, 2, 3):
            publish_lifecycle(bus, rid=rid)
        buf = io.StringIO()
        assert tracer.to_jsonl(buf, limit=2) == 2
