"""Kubelet lifecycle + native scheduler + round-robin proxy tests."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.kube.api_server import ApiServer
from repro.kube.kubelet import CONTAINER_COLD_START_MS, Kubelet
from repro.kube.objects import ContainerSpec, Pod, PodPhase, PodSpec
from repro.kube.scheduler import KubeScheduler, NodeView, RoundRobinProxy

rv = ResourceVector.of
CAP = rv(cpu=4, memory=8192)


def make_pod(name="p0", cpu=1.0, mem=512.0, node="n0"):
    return Pod(
        name=name,
        spec=PodSpec(
            containers=[
                ContainerSpec(
                    name="main",
                    requests=rv(cpu=cpu, memory=mem),
                    limits=rv(cpu=cpu, memory=mem),
                )
            ],
            node_name=node,
        ),
    )


class TestKubelet:
    def test_admit_and_cold_start(self):
        api = ApiServer()
        kubelet = Kubelet("n0", api, capacity=CAP)
        pod = make_pod()
        api.create("Pod", pod.name, pod)
        assert kubelet.admit(pod, now_ms=0.0)
        assert kubelet.sync(now_ms=10.0) == []  # still starting
        ready = kubelet.sync(now_ms=CONTAINER_COLD_START_MS + 1)
        assert [p.name for p in ready] == ["p0"]
        assert pod.phase is PodPhase.RUNNING

    def test_admission_rejects_overcommit(self):
        api = ApiServer()
        kubelet = Kubelet("n0", api, capacity=CAP)
        assert kubelet.admit(make_pod("a", cpu=3.0), 0.0)
        assert not kubelet.admit(make_pod("b", cpu=2.0), 0.0)

    def test_allocated_tracks_pending_and_running(self):
        api = ApiServer()
        kubelet = Kubelet("n0", api, capacity=CAP)
        kubelet.admit(make_pod("a", cpu=1.0), 0.0)
        assert kubelet.allocated().cpu == pytest.approx(1.0)
        kubelet.sync(CONTAINER_COLD_START_MS + 1)
        assert kubelet.allocated().cpu == pytest.approx(1.0)

    def test_evict_frees_resources(self):
        api = ApiServer()
        kubelet = Kubelet("n0", api, capacity=CAP)
        pod = make_pod("a", cpu=2.0)
        api.create("Pod", pod.name, pod)
        kubelet.admit(pod, 0.0)
        kubelet.sync(CONTAINER_COLD_START_MS + 1)
        kubelet.evict(pod)
        assert kubelet.allocated().cpu == pytest.approx(0.0)
        assert pod.phase is PodPhase.FAILED
        assert kubelet.evicted_count == 1

    def test_cgroup_created_and_removed(self):
        api = ApiServer()
        kubelet = Kubelet("n0", api, capacity=CAP)
        pod = make_pod("a")
        kubelet.admit(pod, 0.0)
        group = kubelet.cgroups.pod_group(pod.qos_class.value, pod.uid)
        assert "main" in group.children
        kubelet.evict(pod)
        from repro.kube.cgroups import CGroupError

        with pytest.raises(CGroupError):
            kubelet.cgroups.pod_group(pod.qos_class.value, pod.uid)

    def test_delete_event_tears_down(self):
        api = ApiServer()
        kubelet = Kubelet("n0", api, capacity=CAP)
        pod = make_pod("a")
        api.create("Pod", pod.name, pod)
        kubelet.admit(pod, 0.0)
        api.delete("Pod", pod.name)
        assert kubelet.pod_count() == 0


class TestKubeScheduler:
    def nodes(self):
        return [
            NodeView("n0", rv(cpu=4, memory=8192), rv(cpu=3, memory=4096)),
            NodeView("n1", rv(cpu=4, memory=8192), rv(cpu=1, memory=1024)),
        ]

    def test_prefers_least_requested(self):
        sched = KubeScheduler()
        assert sched.select_node(make_pod(cpu=0.5, mem=256), self.nodes()) == "n1"

    def test_filters_infeasible(self):
        sched = KubeScheduler()
        # only n1 can fit 2 CPUs
        assert sched.select_node(make_pod(cpu=2.0), self.nodes()) == "n1"

    def test_none_when_nothing_fits(self):
        sched = KubeScheduler()
        assert sched.select_node(make_pod(cpu=16.0), self.nodes()) is None


class TestRoundRobinProxy:
    def test_cycles_endpoints(self):
        proxy = RoundRobinProxy()
        eps = ["a", "b", "c"]
        picks = [proxy.next_endpoint("svc", eps) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_per_service_cursors(self):
        proxy = RoundRobinProxy()
        eps = ["a", "b"]
        assert proxy.next_endpoint("s1", eps) == "a"
        assert proxy.next_endpoint("s2", eps) == "a"
        assert proxy.next_endpoint("s1", eps) == "b"

    def test_empty_endpoints(self):
        assert RoundRobinProxy().next_endpoint("s", []) is None

    def test_reset(self):
        proxy = RoundRobinProxy()
        proxy.next_endpoint("s", ["a", "b"])
        proxy.reset("s")
        assert proxy.next_endpoint("s", ["a", "b"]) == "a"
