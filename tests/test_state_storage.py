"""State storage snapshot + staleness tests."""

import pytest

from repro.cluster.topology import EdgeCloudSystem, TopologyConfig
from repro.core.state_storage import StateStorage
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)


class AdmitNothing:
    def admit(self, node, request, now_ms):
        return None

    def on_complete(self, node, running, now_ms):
        pass

    def tick(self, node, now_ms):
        pass


def make_system():
    system = EdgeCloudSystem(TopologyConfig(n_clusters=3, workers_per_cluster=2))
    for w in system.all_workers():
        w.manager = AdmitNothing()
    return system


class TestSnapshot:
    def test_covers_all_nodes(self):
        system = make_system()
        storage = StateStorage(system)
        snap = storage.refresh(0.0)
        assert len(snap.nodes) == system.total_nodes()

    def test_delay_matrix_matches_topology(self):
        system = make_system()
        snap = StateStorage(system).refresh(0.0)
        for a in range(3):
            for b in range(3):
                assert snap.delay_ms[a][b] == pytest.approx(
                    system.one_way_delay_ms(a, b)
                )

    def test_nodes_of_filters_clusters(self):
        system = make_system()
        snap = StateStorage(system).refresh(0.0)
        subset = snap.nodes_of([1])
        assert all(n.cluster_id == 1 for n in subset)
        assert len(subset) == 2

    def test_node_lookup(self):
        system = make_system()
        snap = StateStorage(system).refresh(0.0)
        name = snap.nodes[0].name
        assert snap.node(name).name == name
        with pytest.raises(KeyError):
            snap.node("ghost")

    def test_queue_lengths_reflected(self):
        system = make_system()
        worker = system.clusters[0].workers[0]
        worker.enqueue(
            ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0), 0.0
        )
        snap = StateStorage(system).refresh(0.0)
        assert snap.node(worker.name).lc_queue == 1


class TestStaleness:
    def test_snapshot_cached_within_period(self):
        system = make_system()
        storage = StateStorage(system, refresh_period_ms=100.0)
        snap1 = storage.refresh(0.0)
        # mutate the world
        worker = system.clusters[0].workers[0]
        worker.enqueue(
            ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=10.0), 10.0
        )
        snap2 = storage.refresh(50.0)
        assert snap2 is snap1  # still the stale snapshot
        snap3 = storage.refresh(150.0)
        assert snap3 is not snap1
        assert snap3.node(worker.name).lc_queue == 1

    def test_force_refresh(self):
        system = make_system()
        storage = StateStorage(system, refresh_period_ms=1e9)
        snap1 = storage.refresh(0.0)
        snap2 = storage.refresh(1.0, force=True)
        assert snap2 is not snap1

    def test_central_cluster_propagated(self):
        system = make_system()
        snap = StateStorage(system).refresh(0.0)
        assert snap.central_cluster_id == system.central_cluster_id
