"""Pressure-testing methodology tests (§6.1 twin-space calibration)."""

import math

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.sim.latency import LatencyModel
from repro.sim.pressure import PressurePoint, PressureTester, TableLatencyModel
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


class TestPressureTester:
    def test_reference_allocation_unloaded_is_base_time(self):
        tester = PressureTester(tick_ms=1.0)
        measured = tester.measure_once(LC, 1.0, 0.0)
        assert measured == pytest.approx(LC.base_service_ms, abs=2.0)

    def test_starvation_slows_measured_time(self):
        tester = PressureTester()
        full = tester.measure_once(LC, 1.0, 0.0)
        starved = tester.measure_once(LC, 0.5, 0.0)
        assert starved > full * 1.5

    def test_contention_slows_measured_time(self):
        tester = PressureTester()
        quiet = tester.measure_once(LC, 1.0, 0.0)
        contended = tester.measure_once(LC, 1.0, 0.99)
        assert contended > quiet

    def test_zero_allocation_infinite(self):
        tester = PressureTester()
        assert math.isinf(tester.measure_once(LC, 0.0, 0.0))

    def test_sweep_covers_full_grid(self):
        tester = PressureTester()
        points = tester.sweep(LC, (0.5, 1.0), (0.0, 0.9))
        assert len(points) == 4
        combos = {(p.allocation_fraction, p.background_utilization)
                  for p in points}
        assert combos == {(0.5, 0.0), (0.5, 0.9), (1.0, 0.0), (1.0, 0.9)}


class TestTableLatencyModel:
    def fitted(self, spec=LC):
        tester = PressureTester(tick_ms=1.0)
        model = TableLatencyModel()
        model.fit(spec, tester.sweep(spec))
        return model

    def test_table_reproduces_parametric_model(self):
        """The measured table matches the model it was measured from —
        the paper's physical↔twin closure property."""
        model = self.fitted()
        parametric = LatencyModel()
        for frac in (0.5, 0.7, 1.0):
            for util in (0.0, 0.6, 0.9):
                alloc = LC.reference_resources * frac
                want = parametric.speed(LC, alloc, util)
                got = model.speed(LC, alloc, util)
                assert got == pytest.approx(want, rel=0.1), (frac, util)

    def test_unknown_service_falls_back_to_parametric(self):
        model = self.fitted(LC)
        parametric = LatencyModel()
        assert model.speed(
            BE, BE.reference_resources, 0.0
        ) == pytest.approx(parametric.speed(BE, BE.reference_resources, 0.0))

    def test_zero_allocation_is_zero_speed(self):
        model = self.fitted()
        assert model.speed(LC, ResourceVector(), 0.0) == 0.0

    def test_incomplete_grid_rejected(self):
        model = TableLatencyModel()
        points = [PressurePoint(0.5, 0.0, 100.0), PressurePoint(1.0, 0.5, 50.0)]
        with pytest.raises(ValueError):
            model.fit(LC, points)

    def test_interpolation_monotone_in_allocation(self):
        model = self.fitted()
        speeds = [
            model.speed(LC, LC.reference_resources * f, 0.3)
            for f in (0.45, 0.65, 0.85, 1.05)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_node_runs_on_table_model(self):
        """A WorkerNode driven by the measured table completes requests."""
        from repro.cluster.node import AdmitDecision, WorkerNode
        from repro.sim.request import ServiceRequest

        class AdmitRef:
            def admit(self, node, request, now_ms):
                d = request.spec.reference_resources
                if not d.fits_in(node.free()):
                    return None
                return AdmitDecision(allocation=d)

            def on_complete(self, node, running, now_ms):
                pass

            def tick(self, node, now_ms):
                pass

        node = WorkerNode(
            "w0", 0, ResourceVector(cpu=4, memory=8192),
            latency_model=self.fitted(),
        )
        node.manager = AdmitRef()
        req = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        node.enqueue(req, 0.0)
        t = 0.0
        for _ in range(200):
            done, _, _ = node.step(t, 25.0)
            t += 25.0
            if done:
                break
        assert req.completed_ms is not None
        assert req.completed_ms == pytest.approx(LC.base_service_ms, abs=50.0)
