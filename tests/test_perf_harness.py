"""Tests for the perf layer: StageProfiler, run_bench, and the profile flag."""

from __future__ import annotations

import json

from repro.perf.bench import run_bench, write_bench_json
from repro.perf.profiler import StageProfiler


class TestStageProfiler:
    def test_accumulates_and_counts(self):
        prof = StageProfiler()
        prof.add("lc", 0.25)
        prof.add("lc", 0.75)
        prof.add("be", 0.5)
        assert prof.stage_ms() == {"lc": 1000.0, "be": 500.0}
        assert prof.counts == {"lc": 2, "be": 1}
        assert prof.total_s() == 1.5

    def test_start_stop_measures_elapsed(self):
        prof = StageProfiler()
        t0 = prof.start()
        for _ in range(1000):
            pass
        prof.stop("step", t0)
        assert prof.counts["step"] == 1
        assert 0.0 < prof.totals_s["step"] < 5.0

    def test_rows_sorted_heaviest_first(self):
        prof = StageProfiler()
        prof.add("small", 0.1)
        prof.add("big", 0.9)
        rows = prof.rows()
        assert [r[0] for r in rows] == ["big", "small"]
        assert abs(rows[0][3] - 0.9) < 1e-9  # share

    def test_format_table_mentions_all_stages(self):
        prof = StageProfiler()
        prof.add("refresh", 0.2)
        table = prof.format_table(wall_s=0.3)
        assert "refresh" in table
        assert "(wall)" in table


class TestRunBench:
    def test_small_workload_produces_stage_breakdown(self):
        result = run_bench(
            {"clusters": 2, "duration_ms": 500.0, "lc_peak_rps": 10.0,
             "be_peak_rps": 3.0},
            profile=True,
        )
        assert result["ticks"] == 20
        assert result["ticks_per_sec"] > 0
        for stage in ("lc", "be", "step", "refresh"):
            assert stage in result["stage_ms"]
        assert result["solver"]["solves"] >= 0

    def test_profile_flag_off_omits_stages(self):
        result = run_bench(
            {"clusters": 2, "duration_ms": 250.0, "lc_peak_rps": 5.0,
             "be_peak_rps": 2.0},
            profile=False,
        )
        assert "stage_ms" not in result

    def test_write_bench_json_computes_speedup(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_json(
            {"ticks_per_sec": 30.0}, str(path),
            before={"ticks_per_sec": 15.0},
        )
        payload = json.loads(path.read_text())
        assert payload["speedup"] == 2.0
        assert payload["after"]["ticks_per_sec"] == 30.0
        assert payload["before"]["ticks_per_sec"] == 15.0
