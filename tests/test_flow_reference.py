"""Differential tests against the reference oracles in repro.flow.reference.

Two production hot paths get an obviously-correct shadow here:

* the pooled flat-array SSP+Johnson solver (:class:`MinCostMaxFlow`) vs the
  textbook Bellman-Ford reference (:class:`ReferenceMCMF`) on randomized
  graphs — equal max-flow value, equal minimum cost, and both sides
  feasible (capacities respected, flow conserved);
* the vectorized Eq. 2 capacity expression in DSS-LC vs its scalar
  re-statement (:func:`eq2_capacities_scalar`) across dtypes and edge
  values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.mcmf import MinCostMaxFlow
from repro.flow.reference import (
    ReferenceMCMF,
    eq2_capacities_scalar,
    node_units_scalar,
)


# ---------------------------------------------------------------------- #
# randomized-graph strategy
# ---------------------------------------------------------------------- #
@st.composite
def flow_networks(draw):
    """(n_nodes, edges) with non-negative costs (no negative cycles)."""
    n = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=0, max_value=16))
    edges = []
    for _ in range(n_edges):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src == dst:
            continue
        cap = draw(st.integers(min_value=0, max_value=20))
        cost = draw(st.integers(min_value=0, max_value=50))
        edges.append((src, dst, cap, cost))
    return n, edges


def _build(solver_cls, n, edges):
    net = solver_cls(n)
    for src, dst, cap, cost in edges:
        net.add_edge(src, dst, cap, cost)
    return net


def _assert_feasible(result, edges, label):
    assert len(result.edge_flows) == len(edges), label
    for flow, (_, _, cap, _) in zip(result.edge_flows, edges):
        assert 0 <= flow <= cap, f"{label}: edge flow {flow} outside [0, {cap}]"


class TestArenaVsReference:
    @settings(max_examples=120, deadline=None)
    @given(flow_networks(), st.one_of(st.none(), st.integers(0, 15)))
    def test_equal_value_and_cost(self, network, max_flow):
        n, edges = network
        arena = _build(MinCostMaxFlow, n, edges).solve(
            0, n - 1, max_flow=max_flow
        )
        reference = _build(ReferenceMCMF, n, edges).solve(
            0, n - 1, max_flow=max_flow
        )
        assert arena.flow == reference.flow
        assert arena.cost == reference.cost
        _assert_feasible(arena, edges, "arena")
        _assert_feasible(reference, edges, "reference")

    @settings(max_examples=60, deadline=None)
    @given(flow_networks())
    def test_both_sides_conserve_flow(self, network):
        n, edges = network
        arena = _build(MinCostMaxFlow, n, edges)
        reference = _build(ReferenceMCMF, n, edges)
        arena.solve(0, n - 1)
        reference.solve(0, n - 1)
        assert arena.flow_conservation_violations(0, n - 1) == {}
        assert reference.flow_conservation_violations(0, n - 1) == {}

    def test_agree_on_negative_cost_edge(self):
        # the hypothesis strategy stays non-negative (negative cycles would
        # make min-cost flow ill-defined); pin one acyclic negative case.
        edges = [(0, 1, 2, -5), (1, 2, 2, 1)]
        arena = _build(MinCostMaxFlow, 3, edges).solve(0, 2)
        reference = _build(ReferenceMCMF, 3, edges).solve(0, 2)
        assert (arena.flow, arena.cost) == (reference.flow, reference.cost)


class TestReferenceSolver:
    """Pin the oracle itself on hand-checked graphs."""

    def test_spill_to_expensive_path(self):
        net = ReferenceMCMF(4)
        cheap = net.add_edge(0, 1, 4, 1)
        net.add_edge(1, 3, 4, 1)
        expensive = net.add_edge(0, 2, 10, 5)
        net.add_edge(2, 3, 10, 5)
        result = net.solve(0, 3, max_flow=6)
        assert result.flow == 6
        assert result.cost == 4 * 2 + 2 * 10
        assert result.edge_flows[cheap] == 4
        assert result.edge_flows[expensive] == 2

    def test_disconnected_zero_flow(self):
        net = ReferenceMCMF(4)
        net.add_edge(0, 1, 5, 1)
        net.add_edge(2, 3, 5, 1)
        result = net.solve(0, 3)
        assert (result.flow, result.cost) == (0, 0)

    def test_negative_cycle_raises(self):
        net = ReferenceMCMF(3)
        net.add_edge(0, 1, 5, -2)
        net.add_edge(1, 0, 5, -2)
        net.add_edge(0, 2, 5, 1)
        with pytest.raises(ValueError, match="negative-cost cycle"):
            net.solve(0, 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ReferenceMCMF(0)
        net = ReferenceMCMF(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 5, 1, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1, 1)
        with pytest.raises(ValueError):
            net.solve(0, 0)


# ---------------------------------------------------------------------- #
# scalar vs vectorized Eq. 2
# ---------------------------------------------------------------------- #
def eq2_vectorized(
    cpu_ava, mem_ava, cpu_tot, mem_tot, lc_q, r_cpu, r_mem, target_fill
):
    """The exact numpy expression from DSSLCScheduler._dispatch_type."""
    hold = 1.0 - target_fill
    cpu_eff = np.maximum(0.0, cpu_ava - hold * cpu_tot)
    mem_eff = np.maximum(0.0, mem_ava - hold * mem_tot)
    units = np.minimum(cpu_eff / r_cpu, mem_eff / r_mem).astype(np.int64)
    return np.maximum(0, units - lc_q)


@st.composite
def eq2_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    finite = st.floats(
        min_value=0.0, max_value=1024.0, allow_nan=False, allow_infinity=False
    )
    cpu_tot = [draw(finite) for _ in range(n)]
    mem_tot = [draw(finite) for _ in range(n)]
    # availability never exceeds the total in a real snapshot
    cpu_ava = [draw(st.floats(0.0, max(t, 1e-9))) for t in cpu_tot]
    mem_ava = [draw(st.floats(0.0, max(t, 1e-9))) for t in mem_tot]
    r = st.floats(
        min_value=1e-3, max_value=64.0, allow_nan=False, allow_infinity=False
    )
    r_cpu = [draw(r) for _ in range(n)]
    r_mem = [draw(r) for _ in range(n)]
    lc_q = [draw(st.integers(0, 50)) for _ in range(n)]
    target_fill = draw(st.floats(0.0, 1.0))
    return cpu_ava, mem_ava, cpu_tot, mem_tot, lc_q, r_cpu, r_mem, target_fill


class TestEq2ScalarVsVectorized:
    @settings(max_examples=200, deadline=None)
    @given(eq2_inputs())
    def test_equivalent_on_float64(self, inputs):
        cpu_ava, mem_ava, cpu_tot, mem_tot, lc_q, r_cpu, r_mem, fill = inputs
        vec = eq2_vectorized(
            np.array(cpu_ava),
            np.array(mem_ava),
            np.array(cpu_tot),
            np.array(mem_tot),
            np.array(lc_q, dtype=np.int64),
            np.array(r_cpu),
            np.array(r_mem),
            fill,
        )
        scalar = eq2_capacities_scalar(
            cpu_ava, mem_ava, cpu_tot, mem_tot, lc_q, r_cpu, r_mem, fill
        )
        assert scalar == vec.tolist()

    @settings(max_examples=60, deadline=None)
    @given(eq2_inputs())
    def test_equivalent_on_float32_inputs(self, inputs):
        # snapshots may carry narrower dtypes; both paths must agree after
        # the identical float32 → float64 promotion.
        cpu_ava, mem_ava, cpu_tot, mem_tot, lc_q, r_cpu, r_mem, fill = inputs
        as32 = lambda xs: np.array(xs, dtype=np.float32).astype(np.float64)
        vec = eq2_vectorized(
            as32(cpu_ava), as32(mem_ava), as32(cpu_tot), as32(mem_tot),
            np.array(lc_q, dtype=np.int64), as32(r_cpu), as32(r_mem), fill,
        )
        scalar = eq2_capacities_scalar(
            as32(cpu_ava).tolist(),
            as32(mem_ava).tolist(),
            as32(cpu_tot).tolist(),
            as32(mem_tot).tolist(),
            lc_q,
            as32(r_cpu).tolist(),
            as32(r_mem).tolist(),
            fill,
        )
        assert scalar == vec.tolist()

    def test_edge_values(self):
        # holdback swallowing all availability; zero totals; backlog beyond
        # capacity; units exactly at an integer boundary.
        assert eq2_capacities_scalar(
            [10.0], [100.0], [100.0], [1000.0], [0], [1.0], [10.0], 0.85
        ) == [0]
        assert eq2_capacities_scalar(
            [0.0], [0.0], [0.0], [0.0], [0], [1.0], [1.0], 0.85
        ) == [0]
        assert eq2_capacities_scalar(
            [8.0], [16.0], [8.0], [16.0], [99], [1.0], [2.0], 1.0
        ) == [0]
        assert eq2_capacities_scalar(
            [8.0], [16.0], [8.0], [16.0], [3], [1.0], [2.0], 1.0
        ) == [5]

    def test_node_units_guards_nonpositive_minima(self):
        assert node_units_scalar(8.0, 16.0, 0.0, 1.0) == 0
        assert node_units_scalar(8.0, 16.0, 1.0, -2.0) == 0
        assert node_units_scalar(8.0, 16.0, 2.0, 4.0) == 4
