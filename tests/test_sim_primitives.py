"""Engine, request lifecycle, and latency-model tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Clock, DeliveryQueue
from repro.sim.latency import LatencyModel
from repro.sim.request import RequestState, ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

rv = ResourceVector.of
CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


class TestClock:
    def test_advance_accumulates(self):
        clock = Clock(tick_ms=25.0)
        clock.advance()
        clock.advance()
        assert clock.now_ms == 50.0
        assert clock.tick_count == 2

    def test_rejects_nonpositive_tick(self):
        with pytest.raises(ValueError):
            Clock(tick_ms=0.0)


class TestDeliveryQueue:
    def test_pops_only_due_items(self):
        q = DeliveryQueue()
        q.schedule(10.0, "a")
        q.schedule(20.0, "b")
        assert q.pop_due(10.0) == ["a"]
        assert q.pop_due(25.0) == ["b"]

    def test_fifo_within_same_time(self):
        q = DeliveryQueue()
        q.schedule(5.0, "first")
        q.schedule(5.0, "second")
        assert q.pop_due(5.0) == ["first", "second"]

    def test_len_and_peek(self):
        q = DeliveryQueue()
        assert q.peek_next_ms() is None
        q.schedule(7.0, "x")
        assert len(q) == 1
        assert q.peek_next_ms() == 7.0

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=1, max_size=20))
    def test_everything_delivered_in_time_order(self, times):
        q = DeliveryQueue()
        for i, t in enumerate(times):
            q.schedule(t, i)
        out = q.pop_due(1000.0)
        assert sorted(out, key=lambda i: times[i]) == out or len(set(times)) < len(times)
        assert len(out) == len(times)


class TestRequestLifecycle:
    def test_latency_accounting(self):
        r = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=100.0)
        r.network_delay_ms = 10.0
        r.started_ms = 150.0
        r.completed_ms = 300.0
        assert r.total_latency_ms() == pytest.approx(200.0)
        assert r.queueing_ms() == pytest.approx(40.0)

    def test_qos_check_against_target(self):
        r = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        r.completed_ms = LC.qos_target_ms - 1.0
        assert r.qos_met() is True
        r.completed_ms = LC.qos_target_ms + 1.0
        assert r.qos_met() is False

    def test_qos_none_until_complete(self):
        r = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        assert r.qos_met() is None

    def test_be_always_meets_qos(self):
        r = ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=0.0)
        r.completed_ms = 1e9
        assert r.qos_met() is True

    def test_patience_deadline(self):
        r = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=50.0)
        assert r.patience_deadline_ms(factor=4.0) == pytest.approx(
            50.0 + 4 * LC.qos_target_ms
        )
        b = ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=0.0)
        assert math.isinf(b.patience_deadline_ms())

    def test_ids_unique(self):
        a = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        b = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        assert a.request_id != b.request_id


class TestLatencyModel:
    def setup_method(self):
        self.model = LatencyModel()

    def test_reference_allocation_full_speed(self):
        s = self.model.speed(LC, LC.reference_resources, 0.0)
        assert s == pytest.approx(1.0)

    def test_cpu_starvation_slows(self):
        half = ResourceVector(
            cpu=LC.reference_resources.cpu / 2,
            memory=LC.reference_resources.memory,
        )
        s = self.model.speed(LC, half, 0.0)
        assert s == pytest.approx(0.5**LC.cpu_elasticity, rel=0.01)

    def test_zero_allocation_cannot_run(self):
        assert self.model.speed(LC, ResourceVector(), 0.0) == 0.0

    def test_memory_starvation_gentler_than_cpu(self):
        half_cpu = ResourceVector(
            cpu=LC.reference_resources.cpu / 2,
            memory=LC.reference_resources.memory,
        )
        half_mem = ResourceVector(
            cpu=LC.reference_resources.cpu,
            memory=LC.reference_resources.memory / 2,
        )
        assert self.model.speed(LC, half_mem, 0.0) >= self.model.speed(
            LC, half_cpu, 0.0
        )

    def test_contention_penalty_past_knee(self):
        ref = LC.reference_resources
        free_speed = self.model.speed(LC, ref, 0.5)
        congested = self.model.speed(LC, ref, 0.99)
        assert congested < free_speed

    def test_overprovision_capped(self):
        big = LC.reference_resources * 10
        assert self.model.speed(LC, big, 0.0) <= self.model.max_speedup

    def test_expected_processing_time(self):
        t = self.model.expected_processing_ms(LC, LC.reference_resources, 0.0)
        assert t == pytest.approx(LC.base_service_ms)
        assert math.isinf(
            self.model.expected_processing_ms(LC, ResourceVector(), 0.0)
        )

    @settings(max_examples=40)
    @given(
        frac=st.floats(min_value=0.05, max_value=1.0),
        util=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_speed_monotone_in_allocation(self, frac, util):
        smaller = LC.reference_resources * frac
        larger = LC.reference_resources * min(1.0, frac * 1.5)
        assert self.model.speed(LC, smaller, util) <= self.model.speed(
            LC, larger, util
        ) + 1e-9
