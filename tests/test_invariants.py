"""Runtime invariant checker: unit tests per law + strict-mode integration.

The unit tests run a short simulation, then *tamper* with live state and
assert the relevant law fires with useful context.  The integration tests
are the PR's acceptance gate: every stack (tango + the three baselines),
with and without failure injection, completes a default-config run in
strict mode with zero violations.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.resources import ResourceVector
from repro.cluster.topology import TopologyConfig
from repro.scheduling.dss_lc import DispatchAuditRecord
from repro.sim.failures import FailureConfig
from repro.sim.invariants import (
    LAWS,
    InvariantViolationError,
    RuntimeInvariantChecker,
    Violation,
)
from repro.sim.runner import RunnerConfig, SimulationRunner
from repro.workloads.trace import SyntheticTrace, TraceConfig

STACKS = {
    "tango": TangoConfig.tango,
    "k8s-native": TangoConfig.k8s_native,
    "ceres": TangoConfig.ceres,
    "dsaco": TangoConfig.dsaco,
}


def small_system(factory=TangoConfig.tango, *, clusters=2, workers=2,
                 duration_ms=3_000.0, seed=0, **runner_kwargs):
    config = factory(
        topology=TopologyConfig(
            n_clusters=clusters, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(duration_ms=duration_ms, **runner_kwargs),
    )
    return TangoSystem(config)


def small_trace(*, clusters=2, duration_ms=3_000.0, seed=0):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=clusters, duration_ms=duration_ms, seed=seed,
            lc_peak_rps=12.0, be_peak_rps=5.0,
        )
    ).generate()


def run_checked(**runner_kwargs):
    """Run tango with the checker on; return the live runner."""
    system = small_system(check_invariants=True, **runner_kwargs)
    system.run(small_trace())
    return system.last_runner


class TestCheckerBasics:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="strict|soft"):
            RuntimeInvariantChecker(mode="lenient")

    def test_violation_str_carries_context(self):
        v = Violation(
            "node-resources", 1234.0, "cpu went negative",
            node="edge-0-1", service="web",
        )
        text = str(v)
        assert "node-resources" in text
        assert "t=1234.0ms" in text
        assert "edge-0-1" in text
        assert "web" in text

    def test_clean_run_records_nothing(self):
        runner = run_checked()
        assert runner.invariants is not None
        assert runner.invariants.violations == []
        metrics = runner.collector.metrics
        assert metrics.invariant_violations == 0
        assert metrics.invariant_violations_by_law == {}

    def test_checker_off_leaves_no_stage_or_feed(self):
        system = small_system()
        system.run(small_trace())
        runner = system.last_runner
        assert runner.invariants is None
        assert "invariants" not in runner.pipeline.stage_names()
        assert runner.lc_scheduler.audit_log is None


class TestConservationLaw:
    def test_tampered_counter_raises_strict(self):
        runner = run_checked()
        runner.collector.metrics.lc_arrived += 1
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        laws = {v.law for v in exc.value.violations}
        assert laws == {"request-conservation"}

    def test_stale_placement_fields_flagged(self):
        runner = run_checked()
        # fabricate a displaced request that skipped clear_assignment()
        ctx = runner.ctx
        cluster = ctx.system.clusters[0]
        spec = next(iter(runner.catalog.values()))
        from repro.sim.request import ServiceRequest

        request = ServiceRequest(
            spec=spec, origin_cluster=0, arrival_ms=ctx.now_ms
        )
        request.target_node = "edge-0-0"
        cluster.lc_queue.append(request)
        ctx.collector.metrics.lc_arrived += 1  # keep totals balanced
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(ctx)
        messages = [v.message for v in exc.value.violations]
        assert any("stale placement" in m for m in messages)

    def test_soft_mode_counts_and_continues(self):
        runner = run_checked(invariant_mode="soft")
        metrics = runner.collector.metrics
        metrics.lc_arrived += 2
        found = runner.invariants.check_tick(runner.ctx)
        assert len(found) == 1
        assert metrics.invariant_violations == 1
        assert metrics.invariant_violations_by_law == {
            "request-conservation": 1
        }
        # a second tick keeps accumulating instead of raising
        runner.invariants.check_tick(runner.ctx)
        assert metrics.invariant_violations == 2
        assert len(runner.invariants.violations) == 2


class TestNodeResourceLaw:
    def test_negative_allocation_flagged(self):
        runner = run_checked()
        worker = runner.ctx.worker_list[0]
        worker._allocated = ResourceVector(cpu=-1.0)
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        violations = [
            v for v in exc.value.violations if v.law == "node-resources"
        ]
        assert violations
        assert violations[0].node == worker.name

    def test_overcommit_flagged(self):
        runner = run_checked()
        worker = runner.ctx.worker_list[0]
        worker._allocated = ResourceVector(
            cpu=worker.capacity.cpu + 1.0, memory=worker.allocated.memory
        )
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        assert any(
            "exceeds capacity" in v.message for v in exc.value.violations
        )

    def test_book_vs_sum_mismatch_flagged(self):
        runner = run_checked()
        # find a worker with running work and skew its book
        worker = next(
            (w for w in runner.ctx.worker_list if w.running), None
        )
        if worker is None:
            pytest.skip("no running work at end of run")
        worker._allocated = worker._allocated + ResourceVector(cpu=0.5)
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        assert any(
            "sum to" in v.message
            for v in exc.value.violations
            if v.law == "node-resources"
        )


class TestDVPALaw:
    def test_shrunk_pod_limit_flagged(self):
        runner = run_checked()
        tampered = None
        for worker in runner.ctx.worker_list:
            pods = getattr(worker.manager, "_dvpa", None)
            if not pods or not worker.running:
                continue
            dvpa = pods.get(worker.name)
            if dvpa is None:
                continue
            service = next(iter(worker.running.values())).request.spec.name
            if dvpa.current_limit(service) is None:
                continue
            dvpa.scale(service, ResourceVector())  # limit → 0 under live load
            tampered = (worker.name, service)
            break
        if tampered is None:
            pytest.skip("no HRM worker with running work at end of run")
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        violations = [
            v for v in exc.value.violations if v.law == "dvpa-limits"
        ]
        assert violations
        assert violations[0].node == tampered[0]
        assert violations[0].service == tampered[1]


class TestSnapshotCoherenceLaw:
    def test_corrupted_cache_on_clean_node_flagged(self):
        runner = run_checked()
        storage = runner.storage
        target = None
        for worker in runner.ctx.worker_list:
            if worker.snapshot_dirty:
                continue
            snap = storage.cached_node_snapshot(worker.name)
            if snap is not None:
                target = (worker, snap)
                break
        if target is None:
            pytest.skip("no clean cached node at end of run")
        worker, snap = target
        storage._node_cache[worker.name] = dataclasses.replace(
            snap, lc_queue=snap.lc_queue + 3
        )
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        violations = [
            v for v in exc.value.violations if v.law == "snapshot-coherence"
        ]
        assert violations
        assert violations[0].node == worker.name
        assert "snapshot_dirty" in violations[0].message


class TestDispatchCapacityLaw:
    @staticmethod
    def record(immediate, queued, n_queued):
        # one node: total 8 cpu / 16384 mem, fully available, r=(1, 2048)
        # → 8 units; target_fill=1.0 keeps the holdback at zero.
        return DispatchAuditRecord(
            service="web",
            node_names=["edge-0-0"],
            cpu_available=[8.0],
            mem_available=[16384.0],
            cpu_total=[8.0],
            mem_total=[16384.0],
            lc_queue=[0],
            r_cpu=[1.0],
            r_mem=[2048.0],
            target_fill=1.0,
            immediate_counts=[immediate],
            queued_counts=[queued],
            n_queued=n_queued,
        )

    def test_within_bounds_passes(self):
        runner = run_checked()
        runner.lc_scheduler.audit_log.append(self.record(8, 0, 0))
        runner.invariants.check_tick(runner.ctx)

    def test_eq2_overshoot_flagged(self):
        runner = run_checked()
        runner.lc_scheduler.audit_log.append(self.record(9, 0, 0))
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        violations = [
            v for v in exc.value.violations if v.law == "dispatch-capacity"
        ]
        assert violations
        assert "Eq. 2" in violations[0].message

    def test_augmented_overshoot_flagged(self):
        runner = run_checked()
        # 3 placed now leaves 8-3=5 units; with |R'_k|=2 the augmented
        # capacity on the single node is 2 — push 3 to violate Eq. 7-8.
        runner.lc_scheduler.audit_log.append(self.record(3, 3, 2))
        with pytest.raises(InvariantViolationError) as exc:
            runner.invariants.check_tick(runner.ctx)
        assert any(
            "augmented capacity" in v.message for v in exc.value.violations
        )

    def test_audit_log_drained_after_check(self):
        runner = run_checked()
        runner.lc_scheduler.audit_log.append(self.record(8, 0, 0))
        runner.invariants.check_tick(runner.ctx)
        assert runner.lc_scheduler.audit_log == []


class TestStrictIntegration:
    """Acceptance gate: every stack runs clean in strict mode."""

    @pytest.mark.parametrize("stack", sorted(STACKS))
    @pytest.mark.parametrize("with_failures", [False, True],
                             ids=["steady", "failures"])
    def test_zero_violations(self, stack, with_failures):
        failures = None
        if with_failures:
            failures = FailureConfig(
                node_mtbf_ms=1_500.0, node_downtime_ms=800.0,
                partition_mtbf_ms=4_000.0, seed=3,
            )
        system = small_system(
            STACKS[stack],
            duration_ms=4_000.0,
            check_invariants=True,
            failures=failures,
        )
        metrics = system.run(small_trace(duration_ms=4_000.0))
        assert metrics.invariant_violations == 0
        assert system.last_runner.invariants.violations == []
        if with_failures:
            # the run must actually have exercised the crash paths
            assert system.last_runner.injector.events

    def test_law_names_are_stable(self):
        # EXPERIMENTS.md's triage recipe references these identifiers
        assert LAWS == (
            "request-conservation",
            "node-resources",
            "dvpa-limits",
            "snapshot-coherence",
            "dispatch-capacity",
        )
