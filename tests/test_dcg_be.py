"""DCG-BE scheduler tests: topology encoding, context filter, rewards."""

import math

import numpy as np
import pytest

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.scheduling.dcg_be import (
    DCGBEConfig,
    DCGBEScheduler,
    N_NODE_FEATURES,
    build_topology,
)
from repro.scheduling.gnn_sac import GNNSACScheduler
from repro.baselines.dsaco import DSACOScheduler
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


def node(name, cluster, cpu_ava=12.0, mem_ava=24000.0):
    return NodeSnapshot(
        name=name,
        cluster_id=cluster,
        cpu_total=16.0,
        cpu_available=cpu_ava,
        mem_total=32768.0,
        mem_available=mem_ava,
        lc_queue=0,
        be_queue=0,
        running=0,
        min_slack=1.0,
    )


def snapshot(nodes, n_clusters=3, central=0):
    delays = [
        [1.0 if a == b else (20.0 if abs(a - b) == 1 else 80.0)
         for b in range(n_clusters)]
        for a in range(n_clusters)
    ]
    return SystemSnapshot(
        time_ms=0.0, nodes=nodes, delay_ms=delays, central_cluster_id=central
    )


def be_reqs(n):
    return [ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=0.0) for _ in range(n)]


class TestTopologyBuilder:
    def test_lan_clique_within_cluster(self):
        nodes = [node("a", 0), node("b", 0), node("c", 1)]
        adj = build_topology(nodes, snapshot(nodes))
        assert 1 in adj[0] and 0 in adj[1]

    def test_wan_gateway_to_central(self):
        nodes = [node("a", 0), node("b", 1), node("c", 2)]
        adj = build_topology(nodes, snapshot(nodes, central=0))
        # cluster 2 is 80 ms away but central is 0 → gateway edge exists
        assert 2 in adj[0] or 0 in adj[2]

    def test_distant_noncentral_clusters_not_linked(self):
        nodes = [node("a", 1), node("b", 2), node("x", 0)]
        snap = snapshot(nodes, central=0)
        adj = build_topology(nodes, snap)
        # clusters 1 and 2 are adjacent (20ms ≤ 40ms) so they ARE linked;
        # make them distant instead
        snap.delay_ms[1][2] = snap.delay_ms[2][1] = 90.0
        adj = build_topology(nodes, snap)
        assert 1 not in adj[0] or True  # smoke structure
        a_idx, b_idx = 0, 1
        assert b_idx not in adj[a_idx]


class TestDispatch:
    def test_assignments_for_all_feasible(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0))
        nodes = [node(f"n{i}", i % 3) for i in range(6)]
        out = sched.dispatch_be(be_reqs(5), snapshot(nodes), 0.0)
        assert len(out) == 5
        assert sched.decisions == 5

    def test_context_filter_masks_full_nodes(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0))
        nodes = [node("full", 0, cpu_ava=0.0, mem_ava=0.0), node("ok", 1)]
        out = sched.dispatch_be(be_reqs(4), snapshot(nodes), 0.0)
        assert all(a.node_name == "ok" for a in out)

    def test_saturated_system_still_ships_work(self):
        """With every node full, requests are still sent to a target node
        (they wait in its queue), and the event is counted."""
        sched = DCGBEScheduler(DCGBEConfig(seed=0))
        nodes = [node("full", 0, cpu_ava=0.0, mem_ava=0.0)]
        out = sched.dispatch_be(be_reqs(3), snapshot(nodes), 0.0)
        assert len(out) == 3
        assert sched.requeues == 3

    def test_working_copy_prevents_single_node_overcommit(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0))
        # one node with room for exactly 2 requests' minima
        cpu = BE.min_resources.cpu * 2.2
        mem = BE.min_resources.memory * 2.2
        nodes = [node("tight", 0, cpu_ava=cpu, mem_ava=mem), node("big", 1)]
        out = sched.dispatch_be(be_reqs(8), snapshot(nodes), 0.0)
        tight = sum(1 for a in out if a.node_name == "tight")
        assert tight <= 2

    def test_max_per_round_cap(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0, max_per_round=3))
        nodes = [node(f"n{i}", 0) for i in range(4)]
        out = sched.dispatch_be(be_reqs(10), snapshot(nodes), 0.0)
        assert len(out) == 3

    def test_empty_inputs(self):
        sched = DCGBEScheduler()
        assert sched.dispatch_be([], snapshot([node("a", 0)]), 0.0) == []
        assert sched.dispatch_be(be_reqs(1), snapshot([]), 0.0) == []


class TestReward:
    def test_short_term_reward_formula(self):
        """r_short = exp(−max(Σcpu/cpu_node, Σmem/mem_node))."""
        sched = DCGBEScheduler(DCGBEConfig(seed=0, eta=0.0))
        nodes = [node("a", 0)]
        pending_cpu = np.array([4.0])
        pending_mem = np.array([8192.0])
        r = sched._reward(0, nodes, pending_cpu, pending_mem)
        expected = math.exp(-max(4.0 / 16.0, 8192.0 / 32768.0))
        assert r == pytest.approx(expected)

    def test_long_term_reward_accumulates_completions(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0, eta=1.0))
        assert sched._long_term_reward() == pytest.approx(0.0)
        req = be_reqs(1)[0]
        sched.note_completion(req, node_cpu=16.0, node_mem=32768.0)
        assert sched._long_term_reward() > 0.0

    def test_reward_resets_completion_mass(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0))
        sched.note_completion(be_reqs(1)[0], 16.0, 32768.0)
        nodes = [node("a", 0)]
        sched._reward(0, nodes, np.zeros(1), np.zeros(1))
        assert sched._completion_mass == 0.0

    def test_training_happens_online(self):
        sched = DCGBEScheduler(DCGBEConfig(seed=0, train_interval=8))
        nodes = [node(f"n{i}", i % 2) for i in range(4)]
        for _ in range(4):
            sched.dispatch_be(be_reqs(4), snapshot(nodes), 0.0)
        assert sched.agent.train_steps >= 1


class TestVariants:
    def test_gnn_sac_same_interface(self):
        sched = GNNSACScheduler(DCGBEConfig(seed=0))
        nodes = [node(f"n{i}", i % 2) for i in range(4)]
        out = sched.dispatch_be(be_reqs(6), snapshot(nodes), 0.0)
        assert len(out) == 6

    def test_dsaco_lc_protocol(self):
        sched = DSACOScheduler()
        nodes = [node(f"n{i}", i % 2) for i in range(4)]
        reqs = be_reqs(3)
        out = sched.dispatch(0, reqs, snapshot(nodes), [0, 1], 0.0)
        assert len(out) == 3

    def test_dsaco_respects_eligibility(self):
        sched = DSACOScheduler()
        nodes = [node("a", 0), node("b", 1), node("c", 2)]
        out = sched.dispatch(0, be_reqs(4), snapshot(nodes), [0], 0.0)
        assert all(a.cluster_id == 0 for a in out)
