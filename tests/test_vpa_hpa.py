"""Native VPA (delete-and-rebuild) and HPA control-loop tests."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.kube.hpa import HorizontalPodAutoscaler
from repro.kube.kubelet import CONTAINER_COLD_START_MS
from repro.kube.objects import ContainerSpec, Pod, PodPhase, PodSpec
from repro.kube.vpa import NativeVPA

rv = ResourceVector.of


def pod_with(cpu=1.0, mem=512.0):
    return Pod(
        name="app",
        spec=PodSpec(
            containers=[
                ContainerSpec(
                    name="main",
                    requests=rv(cpu=cpu, memory=mem),
                    limits=rv(cpu=cpu, memory=mem),
                )
            ],
            node_name="n0",
            service_name="svc",
        ),
    )


class TestRecommender:
    def test_recommend_tracks_percentile_with_margin(self):
        vpa = NativeVPA()
        for i in range(20):
            vpa.observe("p", rv(cpu=1.0, memory=1000.0))
        rec = vpa.recommend("p")
        assert rec.target.cpu == pytest.approx(1.0 * NativeVPA.MARGIN)
        assert rec.target.memory == pytest.approx(1000.0 * NativeVPA.MARGIN)

    def test_no_recommendation_without_history(self):
        assert NativeVPA().recommend("ghost") is None

    def test_history_bounded(self):
        vpa = NativeVPA(history_len=8)
        for i in range(20):
            vpa.observe("p", rv(cpu=float(i)))
        assert len(vpa._usage["p"]) == 8

    def test_needs_resize_only_outside_band(self):
        vpa = NativeVPA()
        for _ in range(10):
            vpa.observe("p", rv(cpu=1.0, memory=1000.0))
        rec = vpa.recommend("p")
        inside = pod_with(cpu=rec.target.cpu, mem=rec.target.memory)
        assert not vpa.needs_resize(inside, rec)
        starved = pod_with(cpu=rec.lower_bound.cpu * 0.5, mem=rec.target.memory)
        assert vpa.needs_resize(starved, rec)


class TestDeleteAndRebuild:
    def test_resize_interrupts_and_costs_cold_start(self):
        vpa = NativeVPA()
        pod = pod_with(cpu=1.0)
        outcome = vpa.resize(pod, rv(cpu=2.0, memory=1024.0))
        assert outcome.interrupted
        assert outcome.latency_ms >= CONTAINER_COLD_START_MS
        assert pod.phase is PodPhase.FAILED
        assert pod.deleted

    def test_new_pod_carries_target_requests(self):
        vpa = NativeVPA()
        outcome = vpa.resize(pod_with(cpu=1.0, mem=512.0), rv(cpu=2.0, memory=1024.0))
        total = outcome.new_pod.spec.total_requests()
        assert total.cpu == pytest.approx(2.0)
        assert total.memory == pytest.approx(1024.0)

    def test_multi_container_prorata_split(self):
        pod = Pod(
            name="app",
            spec=PodSpec(
                containers=[
                    ContainerSpec("a", requests=rv(cpu=1.0, memory=100)),
                    ContainerSpec("b", requests=rv(cpu=3.0, memory=300)),
                ]
            ),
        )
        outcome = NativeVPA().resize(pod, rv(cpu=8.0, memory=800))
        reqs = [c.requests for c in outcome.new_pod.spec.containers]
        assert reqs[0].cpu == pytest.approx(2.0)
        assert reqs[1].cpu == pytest.approx(6.0)

    def test_downtime_accumulates(self):
        vpa = NativeVPA()
        vpa.resize(pod_with(), rv(cpu=2.0, memory=512))
        vpa.resize(pod_with(), rv(cpu=3.0, memory=512))
        assert vpa.resize_count == 2
        assert vpa.total_downtime_ms >= 2 * CONTAINER_COLD_START_MS


class TestHPA:
    def test_scales_up_proportionally(self):
        hpa = HorizontalPodAutoscaler(target_utilization=0.5, max_replicas=20)
        decision = hpa.evaluate(0.0, current_replicas=4, observed_utilization=1.0)
        assert decision.desired_replicas == 8

    def test_tolerance_band_keeps_steady(self):
        hpa = HorizontalPodAutoscaler(target_utilization=0.5, tolerance=0.2)
        decision = hpa.evaluate(0.0, 4, 0.55)
        assert decision.desired_replicas == 4

    def test_sync_period_gates_evaluations(self):
        hpa = HorizontalPodAutoscaler(sync_period_ms=15_000)
        assert hpa.evaluate(0.0, 2, 1.0) is not None
        assert hpa.evaluate(1_000.0, 2, 1.0) is None
        assert hpa.evaluate(16_000.0, 2, 1.0) is not None

    def test_scale_down_stabilization_window(self):
        hpa = HorizontalPodAutoscaler(
            target_utilization=0.5,
            sync_period_ms=0.0,
            scale_down_stabilization_ms=100_000.0,
            max_replicas=20,
        )
        d1 = hpa.evaluate(0.0, 4, 1.0)  # wants 8
        assert d1.desired_replicas == 8
        # load drops immediately — stabilisation must hold at the recent max
        d2 = hpa.evaluate(1_000.0, 8, 0.1)
        assert d2.desired_replicas == 8

    def test_bounds_enforced(self):
        hpa = HorizontalPodAutoscaler(min_replicas=2, max_replicas=5,
                                      target_utilization=0.5)
        up = hpa.evaluate(0.0, 5, 1.0)
        assert up.desired_replicas == 5
        hpa2 = HorizontalPodAutoscaler(min_replicas=2, max_replicas=5,
                                       target_utilization=0.5,
                                       scale_down_stabilization_ms=0.0)
        down = hpa2.evaluate(0.0, 2, 0.0)
        assert down.desired_replicas == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            HorizontalPodAutoscaler(target_utilization=0.0)
        with pytest.raises(ValueError):
            HorizontalPodAutoscaler(min_replicas=5, max_replicas=2)
