"""DSS-LC scheduler tests: both Alg. 2 cases, Eq. 7-8, decision latency."""

import numpy as np
import pytest

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.scheduling.dss_lc import DSSLCConfig, DSSLCScheduler
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
LC2 = [s for s in CATALOG if s.kind is ServiceKind.LC][1]


def node(name, cluster, cpu_ava, mem_ava, cpu_total=16.0, mem_total=32768.0):
    return NodeSnapshot(
        name=name,
        cluster_id=cluster,
        cpu_total=cpu_total,
        cpu_available=cpu_ava,
        mem_total=mem_total,
        mem_available=mem_ava,
        lc_queue=0,
        be_queue=0,
        running=0,
        min_slack=1.0,
    )


def snapshot(nodes, n_clusters=2):
    delays = [
        [1.0 if a == b else 20.0 for b in range(n_clusters)]
        for a in range(n_clusters)
    ]
    return SystemSnapshot(
        time_ms=0.0, nodes=nodes, delay_ms=delays, central_cluster_id=0
    )


def requests(n, spec=LC):
    return [
        ServiceRequest(spec=spec, origin_cluster=0, arrival_ms=0.0)
        for _ in range(n)
    ]


class TestCase1:
    """Demand ≤ capacity: single graph G_k."""

    def test_all_requests_placed(self):
        sched = DSSLCScheduler()
        nodes = [node("a", 0, 8.0, 16384.0), node("b", 1, 8.0, 16384.0)]
        out = sched.dispatch(0, requests(4), snapshot(nodes), [0, 1], 0.0)
        assert len(out) == 4

    def test_prefers_local_cluster(self):
        sched = DSSLCScheduler()
        nodes = [node("local", 0, 8.0, 16384.0), node("remote", 1, 8.0, 16384.0)]
        out = sched.dispatch(0, requests(3), snapshot(nodes), [0, 1], 0.0)
        assert all(a.node_name == "local" for a in out)

    def test_spills_to_remote_when_local_full(self):
        # target_fill=1.0 isolates the pure Eq. 2 capacity semantics
        sched = DSSLCScheduler(DSSLCConfig(target_fill=1.0))
        # local can absorb only 1 request of this type
        r_cpu = LC.min_resources.cpu
        r_mem = LC.min_resources.memory
        nodes = [
            node("local", 0, r_cpu * 1.5, r_mem * 1.5),
            node("remote", 1, 100.0, 1e6),
        ]
        out = sched.dispatch(0, requests(4), snapshot(nodes), [0, 1], 0.0)
        assert len(out) == 4
        by_node = {}
        for a in out:
            by_node[a.node_name] = by_node.get(a.node_name, 0) + 1
        assert by_node.get("local", 0) == 1
        assert by_node.get("remote", 0) == 3

    def test_groups_by_type(self):
        sched = DSSLCScheduler()
        nodes = [node("a", 0, 32.0, 65536.0)]
        mixed = requests(2, LC) + requests(2, LC2)
        out = sched.dispatch(0, mixed, snapshot(nodes), [0], 0.0)
        assert len(out) == 4

    def test_empty_queue_no_assignments(self):
        sched = DSSLCScheduler()
        assert sched.dispatch(0, [], snapshot([node("a", 0, 8, 8192)]), [0], 0.0) == []

    def test_no_eligible_nodes(self):
        sched = DSSLCScheduler()
        out = sched.dispatch(0, requests(2), snapshot([]), [0], 0.0)
        assert out == []


class TestCase2:
    """Demand > capacity: split into R_k (placed) and R'_k (queued, Eq. 7-8)."""

    def overload(self, n_requests=10):
        r_cpu = LC.min_resources.cpu
        r_mem = LC.min_resources.memory
        # capacity for 2 requests immediately; total resources differ 3:1
        nodes = [
            node("big", 0, r_cpu * 1.2, r_mem * 1.2, cpu_total=12.0, mem_total=24576.0),
            node("small", 1, r_cpu * 1.2, r_mem * 1.2, cpu_total=4.0, mem_total=8192.0),
        ]
        sched = DSSLCScheduler(DSSLCConfig(seed=5))
        out = sched.dispatch(0, requests(n_requests), snapshot(nodes), [0, 1], 0.0)
        return sched, out, nodes

    def test_all_requests_still_dispatched(self):
        sched, out, _ = self.overload()
        assert len(out) == 10
        assert sched.case2_rounds == 1

    def test_queued_remainder_follows_total_resources(self):
        """Ĝ'_k capacities ∝ total node resources (heterogeneity, Eq. 7)."""
        _, out, _ = self.overload(n_requests=18)
        counts = {}
        for a in out:
            counts[a.node_name] = counts.get(a.node_name, 0) + 1
        # the big node (3× the total resources) must receive clearly more
        assert counts["big"] > counts["small"]

    def test_augmentation_factor_conserves_count(self):
        sched = DSSLCScheduler()
        caps = sched._augmented_capacities([12, 4], 9)
        assert sum(caps) == 9
        assert caps[0] > caps[1]

    def test_augmentation_degenerate_total_zero(self):
        sched = DSSLCScheduler()
        caps = sched._augmented_capacities([0, 0, 0], 7)
        assert sum(caps) == 7

    def test_queue_push_cap_bounds_case2(self):
        sched = DSSLCScheduler(DSSLCConfig(max_queue_push=3, seed=1))
        r_cpu = LC.min_resources.cpu
        nodes = [node("a", 0, r_cpu * 1.1, LC.min_resources.memory * 1.1)]
        out = sched.dispatch(0, requests(50), snapshot(nodes, 1), [0], 0.0)
        assert len(out) <= 1 + 3  # one immediate + capped queue push

    def test_queued_graph_subtracts_immediate_assignments(self):
        """Regression: Ĝ'_k capacities were built from total resources
        without deducting this round's R_k placements, double-counting the
        units the immediate graph just consumed and over-assigning the
        exhausted node past its physical capacity."""
        r_cpu = LC.min_resources.cpu
        r_mem = LC.min_resources.memory
        nodes = [
            # "a": fully available but small — exactly 4 units, all of
            # which the immediate R_k graph will consume
            node("a", 0, r_cpu * 4.2, r_mem * 4.2,
                 cpu_total=r_cpu * 4.5, mem_total=r_mem * 4.5),
            # "b": nothing available now but a large total — the queued
            # remainder's only legitimate destination
            node("b", 1, r_cpu * 0.2, r_mem * 0.2,
                 cpu_total=r_cpu * 12.5, mem_total=r_mem * 12.5),
        ]
        sched = DSSLCScheduler(DSSLCConfig(target_fill=1.0, seed=7))
        out = sched.dispatch(0, requests(16), snapshot(nodes), [0, 1], 0.0)
        assert len(out) == 16
        assert sched.case2_rounds == 1
        counts = {}
        for a in out:
            counts[a.node_name] = counts.get(a.node_name, 0) + 1
        # before the fix "a" received 4 immediate + 3 queued = 7 > its
        # 4-unit total; post-fix its queued share is zero
        assert counts["a"] == 4
        assert counts["b"] == 12

    def test_boundary_at_exact_capacity(self):
        """pending == total immediate capacity stays in case 1; one more
        request tips into case 2 without over-assigning any node."""
        r_cpu = LC.min_resources.cpu
        r_mem = LC.min_resources.memory

        def overloadable():
            # each node absorbs exactly 3 requests immediately
            return [
                node("a", 0, r_cpu * 3.2, r_mem * 3.2),
                node("b", 1, r_cpu * 3.2, r_mem * 3.2),
            ]

        for pending, case2 in ((5, 0), (6, 0), (7, 1)):
            sched = DSSLCScheduler(DSSLCConfig(target_fill=1.0, seed=2))
            out = sched.dispatch(
                0, requests(pending), snapshot(overloadable()), [0, 1], 0.0
            )
            assert len(out) == pending, f"pending={pending}"
            assert sched.case2_rounds == case2, f"pending={pending}"
            counts = {}
            for a in out:
                counts[a.node_name] = counts.get(a.node_name, 0) + 1
            # physical bound: never beyond a node's total units (16 cpu /
            # r_cpu each with the default totals)
            total_units = int(min(16.0 / r_cpu, 32768.0 / r_mem))
            assert all(c <= total_units for c in counts.values())

    def test_audit_records_round_inputs_and_counts(self):
        sched = DSSLCScheduler(DSSLCConfig(seed=5))
        sched.audit_log = []
        r_cpu = LC.min_resources.cpu
        r_mem = LC.min_resources.memory
        nodes = [
            node("big", 0, r_cpu * 1.2, r_mem * 1.2,
                 cpu_total=12.0, mem_total=24576.0),
            node("small", 1, r_cpu * 1.2, r_mem * 1.2,
                 cpu_total=4.0, mem_total=8192.0),
        ]
        out = sched.dispatch(0, requests(10), snapshot(nodes), [0, 1], 0.0)
        assert len(sched.audit_log) == 1
        rec = sched.audit_log[0]
        assert rec.service == LC.name
        assert rec.node_names == ["big", "small"]
        assert sum(rec.immediate_counts) + sum(rec.queued_counts) == len(out)
        assert rec.n_queued == sum(rec.queued_counts)
        assert rec.target_fill == sched.config.target_fill


class TestCapacityCorrections:
    def test_headroom_reserves_contention_margin(self):
        """With target_fill<1, a node near the knee gets no capacity."""
        sched = DSSLCScheduler(DSSLCConfig(target_fill=0.85))
        r_cpu = LC.min_resources.cpu
        r_mem = LC.min_resources.memory
        # available is positive but below the 15% headroom slice
        hot = node("hot", 0, 2.0, 2048.0, cpu_total=16.0, mem_total=32768.0)
        cool = node("cool", 0, 12.0, 24000.0, cpu_total=16.0, mem_total=32768.0)
        out = sched.dispatch(0, requests(3), snapshot([hot, cool]), [0], 0.0)
        assert all(a.node_name == "cool" for a in out)

    def test_existing_queue_consumes_capacity(self):
        sched = DSSLCScheduler(DSSLCConfig(target_fill=1.0))
        backed = NodeSnapshot(
            name="backed", cluster_id=0, cpu_total=16.0, cpu_available=2.0,
            mem_total=32768.0, mem_available=4096.0, lc_queue=50, be_queue=0,
            running=0, min_slack=1.0,
        )
        idle = node("idle", 0, 8.0, 16384.0)
        out = sched.dispatch(0, requests(4), snapshot([backed, idle]), [0], 0.0)
        assert all(a.node_name == "idle" for a in out)


class TestEquation2:
    def test_node_units(self):
        assert DSSLCScheduler._node_units(4.0, 4096.0, 1.0, 1024.0) == 4
        assert DSSLCScheduler._node_units(4.0, 1024.0, 1.0, 1024.0) == 1
        assert DSSLCScheduler._node_units(0.5, 4096.0, 1.0, 1024.0) == 0

    def test_reassurance_adjusted_minima_used(self, lc_spec):
        from repro.hrm.qos import QoSDetector
        from repro.hrm.reassurance import ReassuranceConfig, ReassuranceMechanism

        det = QoSDetector()
        mech = ReassuranceMechanism(det, ReassuranceConfig(period_ms=0.0))
        # drive the minimum up on node "a"
        for _ in range(10):
            det.observe("a", lc_spec.name, 0.0, lc_spec.qos_target_ms * 2)
        mech.run(0.0, {"a": {lc_spec.name: lc_spec}})
        sched = DSSLCScheduler(reassurance=mech)
        nodes = [node("a", 0, 8.0, 16384.0)]
        r_cpu, r_mem = sched._per_request_minima(lc_spec, nodes)
        assert r_cpu[0] > lc_spec.min_resources.cpu


class TestTimeliness:
    def test_decision_latency_recorded(self):
        sched = DSSLCScheduler()
        nodes = [node(f"n{i}", 0, 8.0, 16384.0) for i in range(10)]
        sched.dispatch(0, requests(5), snapshot(nodes, 1), [0], 0.0)
        assert len(sched.decision_latencies_ms) == 1
        assert sched.mean_decision_latency_ms() > 0

    def test_decision_fast_at_moderate_scale(self):
        """§7.2 claims ~2-4 ms at 500-1000 nodes; we sanity-check 100 nodes
        stays well under the smallest LC QoS target."""
        sched = DSSLCScheduler()
        nodes = [node(f"n{i}", 0, 8.0, 16384.0) for i in range(100)]
        sched.dispatch(0, requests(20), snapshot(nodes, 1), [0], 0.0)
        assert sched.mean_decision_latency_ms() < 100.0


class TestCoordinatedTypes:
    def nodes(self):
        return [
            node("a", 0, 8.0, 16384.0),
            node("b", 1, 8.0, 16384.0),
        ]

    def test_joint_solve_places_multiple_types(self):
        sched = DSSLCScheduler(DSSLCConfig(coordinate_types=True))
        mixed = requests(3, LC) + requests(3, LC2)
        out = sched.dispatch(0, mixed, snapshot(self.nodes()), [0, 1], 0.0)
        assert len(out) == 6
        types = {a.request.spec.name for a in out}
        assert types == {LC.name, LC2.name}

    def test_shared_link_capacity_binds_joint_solve(self):
        sched = DSSLCScheduler(
            DSSLCConfig(coordinate_types=True, link_capacity=2)
        )
        mixed = requests(4, LC) + requests(4, LC2)
        out = sched.dispatch(0, mixed, snapshot(self.nodes()), [0, 1], 0.0)
        # 2 links x capacity 2 = 4 immediate placements across both types;
        # the remaining 4 ship through the case-2 queued path instead of
        # silently starving at the master
        assert len(out) == 8
        assert sched.case2_rounds >= 1

    def test_single_type_falls_back_to_parallel_path(self):
        sched = DSSLCScheduler(DSSLCConfig(coordinate_types=True))
        out = sched.dispatch(0, requests(3, LC), snapshot(self.nodes()), [0, 1], 0.0)
        assert len(out) == 3

    def test_each_request_assigned_once(self):
        sched = DSSLCScheduler(DSSLCConfig(coordinate_types=True))
        mixed = requests(5, LC) + requests(5, LC2)
        out = sched.dispatch(0, mixed, snapshot(self.nodes()), [0, 1], 0.0)
        ids = [a.request.request_id for a in out]
        assert len(ids) == len(set(ids))
