"""Indexed-snapshot and incremental-refresh behaviour of StateStorage."""

from __future__ import annotations

import pytest

from repro.cluster.topology import EdgeCloudSystem, TopologyConfig
from repro.core.state_storage import StateStorage
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)


class AdmitNothing:
    def admit(self, node, request, now_ms):
        return None

    def on_complete(self, node, running, now_ms):
        pass

    def tick(self, node, now_ms):
        pass


def make_system(clusters=3, workers=2):
    system = EdgeCloudSystem(
        TopologyConfig(n_clusters=clusters, workers_per_cluster=workers)
    )
    for w in system.all_workers():
        w.manager = AdmitNothing()
    return system


class TestIndexes:
    def test_node_lookup_matches_linear_scan(self):
        snap = StateStorage(make_system()).refresh(0.0)
        for ns in snap.nodes:
            assert snap.node(ns.name) is ns

    def test_node_lookup_unknown_raises(self):
        snap = StateStorage(make_system()).refresh(0.0)
        with pytest.raises(KeyError):
            snap.node("no-such-node")

    def test_nodes_of_preserves_seed_ordering(self):
        """Subset order must equal a filter of the global node order."""
        snap = StateStorage(make_system(clusters=4)).refresh(0.0)
        for subset in ([2], [0, 3], [3, 0], [1, 2, 3], [2, 2, 1]):
            want = [n for n in snap.nodes if n.cluster_id in set(subset)]
            got = snap.nodes_of(list(subset))
            assert [n.name for n in got] == [n.name for n in want]

    def test_nodes_of_caches_repeated_queries(self):
        snap = StateStorage(make_system()).refresh(0.0)
        first = snap.nodes_of([0, 1])
        second = snap.nodes_of([1, 0])  # order-insensitive cache key
        assert second is first

    def test_nodes_of_none_returns_fresh_copy(self):
        snap = StateStorage(make_system()).refresh(0.0)
        full = snap.nodes_of(None)
        assert full == list(snap.nodes)
        full.pop()
        assert len(snap.nodes_of(None)) == len(snap.nodes)


class TestIncrementalRefresh:
    def test_clean_nodes_reuse_their_snapshot(self):
        storage = StateStorage(make_system())
        snap1 = storage.refresh(0.0, force=True)
        snap2 = storage.refresh(1_000.0, force=True)
        # no node changed: snapshot objects are rebuilt but node views reused
        for a, b in zip(snap1.nodes, snap2.nodes):
            assert a is b

    def test_dirty_node_gets_fresh_snapshot(self):
        system = make_system()
        storage = StateStorage(system)
        snap1 = storage.refresh(0.0, force=True)
        workers = list(system.all_workers())
        worker = workers[0]
        req = ServiceRequest(request_id=1, spec=LC, arrival_ms=0.0, origin_cluster=0)
        worker.enqueue(req, 5.0)
        snap2 = storage.refresh(1_000.0, force=True)
        fresh = snap2.node(worker.name)
        assert fresh is not snap1.node(worker.name)
        assert fresh.lc_queue == 1
        # untouched workers still share their old node view
        other = workers[-1]
        assert snap2.node(other.name) is snap1.node(other.name)

    def test_dirty_flag_cleared_after_refresh(self):
        system = make_system()
        storage = StateStorage(system)
        storage.refresh(0.0, force=True)
        assert all(not w.snapshot_dirty for w in system.all_workers())
