"""Arena-reuse and golden-value tests for the pooled MCMF solver.

Complements ``test_mcmf.py`` (hypothesis-vs-networkx) with pinned golden
networks — including negative-cost and zero-capacity arcs — and with the
reuse API the DSS-LC arena pool depends on: ``reset()`` re-solves the same
network identically, ``rebuild()`` makes a recycled instance behave exactly
like a fresh one, and warm-started potentials preserve flow and cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.mcmf import MinCostMaxFlow


def build_diamond(net: MinCostMaxFlow) -> list:
    """0 -> {1, 2} -> 3 with an uneven cheap path; returns edge indices."""
    return [
        net.add_edge(0, 1, 2, 1),
        net.add_edge(0, 2, 2, 4),
        net.add_edge(1, 3, 1, 1),
        net.add_edge(1, 2, 2, 1),
        net.add_edge(2, 3, 3, 1),
    ]


class TestGolden:
    def test_diamond_pinned(self):
        net = MinCostMaxFlow(4)
        build_diamond(net)
        res = net.solve(0, 3)
        # max flow 4: 0-1-3 (1u, cost 2), 0-1-2-3 (1u, cost 3),
        # 0-2-3 (2u, cost 5 each)
        assert res.flow == 4
        assert res.cost == 15
        assert res.edge_flows == [2, 2, 1, 1, 3]

    def test_negative_cost_edge(self):
        net = MinCostMaxFlow(4)
        e0 = net.add_edge(0, 1, 3, 5)
        e1 = net.add_edge(1, 2, 3, -4)  # discount leg
        e2 = net.add_edge(2, 3, 2, 1)
        e3 = net.add_edge(1, 3, 2, 3)
        res = net.solve(0, 3)
        # 2 units take 0-1-2-3 (cost 2 each), 1 unit takes 0-1-3 (cost 8)
        assert res.flow == 3
        assert res.cost == 12
        assert res.edge_flows[e0] == 3
        assert res.edge_flows[e1] == 2
        assert res.edge_flows[e2] == 2
        assert res.edge_flows[e3] == 1
        assert net.flow_conservation_violations(0, 3) == {}

    def test_zero_capacity_edge_carries_nothing(self):
        net = MinCostMaxFlow(3)
        dead = net.add_edge(0, 1, 0, 0)  # tempting but unusable
        cheap = net.add_edge(0, 1, 2, 7)
        out = net.add_edge(1, 2, 2, 1)
        res = net.solve(0, 2)
        assert res.flow == 2
        assert res.cost == 16
        assert res.edge_flows[dead] == 0
        assert res.edge_flows[cheap] == 2
        assert res.edge_flows[out] == 2

    def test_max_flow_cap_respected(self):
        net = MinCostMaxFlow(4)
        build_diamond(net)
        res = net.solve(0, 3, max_flow=2)
        assert res.flow == 2
        assert res.cost == 5  # the two cheapest units


def random_network(rng: np.random.Generator, n: int):
    """Random DAG-ish network as (n, edge list) with occasional 0-caps."""
    edges = []
    for _ in range(int(rng.integers(n, 3 * n))):
        u = int(rng.integers(0, n - 1))
        v = int(rng.integers(u + 1, n))
        cap = int(rng.integers(0, 6))
        cost = int(rng.integers(0, 20))
        edges.append((u, v, cap, cost))
    return edges


class TestArenaReuse:
    def test_reset_resolves_identically(self):
        net = MinCostMaxFlow(4)
        build_diamond(net)
        first = net.solve(0, 3)
        net.reset()
        second = net.solve(0, 3)
        assert (first.flow, first.cost) == (second.flow, second.cost)
        assert first.edge_flows == second.edge_flows

    @pytest.mark.parametrize("seed", range(8))
    def test_rebuild_matches_fresh_solver(self, seed):
        rng = np.random.default_rng(seed)
        arena = MinCostMaxFlow(3)
        build_diamond(MinCostMaxFlow(4))  # unrelated network, ignored
        # dirty the arena with a first network + solve
        arena.rebuild(4)
        build_diamond(arena)
        arena.solve(0, 3)
        for round_ in range(4):
            n = int(rng.integers(3, 9))
            edges = random_network(rng, n)
            fresh = MinCostMaxFlow(n)
            arena.rebuild(n)
            for u, v, cap, cost in edges:
                assert fresh.add_edge(u, v, cap, cost) == arena.add_edge(
                    u, v, cap, cost
                )
            res_fresh = fresh.solve(0, n - 1)
            res_arena = arena.solve(0, n - 1)
            assert res_fresh.flow == res_arena.flow
            assert res_fresh.cost == res_arena.cost
            assert res_fresh.edge_flows == res_arena.edge_flows

    def test_counters_survive_rebuild(self):
        net = MinCostMaxFlow(4)
        build_diamond(net)
        net.solve(0, 3)
        solves_before = net.solves
        assert solves_before == 1
        net.rebuild(4)
        build_diamond(net)
        net.solve(0, 3)
        assert net.solves == solves_before + 1
        assert net.augmentations > 0

    def test_edge_view_reflects_arrays(self):
        net = MinCostMaxFlow(4)
        idx = build_diamond(net)
        net.solve(0, 3)
        e = net.edge(idx[0])
        assert (e.src, e.dst, e.capacity, e.cost) == (0, 1, 2, 1)
        assert e.flow == 2
        assert e.residual == 0


class TestWarmStart:
    @pytest.mark.parametrize("seed", range(8))
    def test_warm_start_preserves_flow_and_cost(self, seed):
        """Re-solving with reuse_potentials never changes flow or cost.

        Whether the reuse actually engages depends on feasibility — arcs
        saturated by the first solve rejoin the residual network after
        ``reset()`` and can make the old potentials infeasible, in which
        case the solver must fall back to a cold start, not a wrong one.
        """
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(4, 9))
        edges = random_network(rng, n)
        cold = MinCostMaxFlow(n)
        warm = MinCostMaxFlow(n)
        for u, v, cap, cost in edges:
            cold.add_edge(u, v, cap, cost)
            warm.add_edge(u, v, cap, cost)
        res_cold = cold.solve(0, n - 1)
        warm.solve(0, n - 1)  # populate _last_potential
        warm.reset()
        res_warm = warm.solve(0, n - 1, reuse_potentials=True)
        assert res_warm.flow == res_cold.flow
        assert res_warm.cost == res_cold.cost

    def test_warm_start_engages_on_unsaturated_network(self):
        """A solve that saturates nothing leaves reusable potentials."""
        net = MinCostMaxFlow(3)
        net.add_edge(0, 1, 5, 2)
        net.add_edge(1, 2, 5, 3)
        first = net.solve(0, 2, max_flow=2)  # below the bottleneck
        assert first.flow == 2
        net.reset()
        second = net.solve(0, 2, max_flow=2, reuse_potentials=True)
        assert net.warm_starts == 1
        assert (second.flow, second.cost) == (first.flow, first.cost)
        assert second.edge_flows == first.edge_flows

    def test_infeasible_potentials_fall_back(self):
        net = MinCostMaxFlow(4)
        build_diamond(net)
        net.solve(0, 3)
        # new network with a negative cost the old potentials can't cover
        net.rebuild(4)
        net.add_edge(0, 1, 2, 10)
        net.add_edge(1, 3, 2, -8)
        res = net.solve(0, 3, reuse_potentials=True)
        assert res.flow == 2
        assert res.cost == 4
        assert net.warm_starts == 0
