"""Deployment controller, metrics report, and CLI tests."""

import json

import pytest

from repro.cluster.resources import ResourceVector
from repro.kube.api_server import ApiServer
from repro.kube.controller import Deployment, DeploymentController
from repro.kube.objects import ContainerSpec, PodSpec
from repro.kube.scheduler import NodeView
from repro.metrics.collectors import RunMetrics
from repro.metrics.report import (
    comparison_table,
    load_metrics,
    metrics_from_dict,
    metrics_to_dict,
    save_metrics,
)

rv = ResourceVector.of


def template(cpu=0.5, mem=256.0):
    return PodSpec(
        containers=[
            ContainerSpec("main", requests=rv(cpu=cpu, memory=mem),
                          limits=rv(cpu=cpu, memory=mem))
        ],
        service_name="web",
    )


def nodes(n=3, cpu=4.0):
    return [
        NodeView(f"n{i}", rv(cpu=cpu, memory=8192.0), rv()) for i in range(n)
    ]


class TestDeploymentController:
    def make(self, replicas=3):
        api = ApiServer()
        controller = DeploymentController(api)
        controller.apply(Deployment("web", replicas, template()))
        return api, controller

    def test_scale_up_creates_pods(self):
        api, controller = self.make(replicas=3)
        result = controller.reconcile("web", nodes())
        assert len(result.created) == 3
        assert len(api.list("Pod")) == 3

    def test_reconcile_is_idempotent(self):
        api, controller = self.make(replicas=2)
        controller.reconcile("web", nodes())
        second = controller.reconcile("web", nodes())
        assert not second.changed

    def test_scale_down_deletes_youngest(self):
        api, controller = self.make(replicas=3)
        controller.reconcile("web", nodes())
        created_names = sorted(p.name for p in api.list("Pod"))
        controller.scale("web", 1)
        result = controller.reconcile("web", nodes())
        assert len(result.deleted) == 2
        remaining = [p.name for p in api.list("Pod")]
        assert remaining == [created_names[0]]

    def test_unschedulable_counted(self):
        api, controller = self.make(replicas=2)
        tiny = [NodeView("n0", rv(cpu=0.1, memory=64.0), rv())]
        result = controller.reconcile("web", tiny)
        assert result.unschedulable == 2
        assert api.list("Pod") == []

    def test_pods_carry_app_label_and_binding(self):
        api, controller = self.make(replicas=1)
        controller.reconcile("web", nodes())
        pod = api.list("Pod")[0]
        assert pod.labels["app"] == "web"
        assert pod.spec.node_name is not None

    def test_negative_replicas_rejected(self):
        with pytest.raises(ValueError):
            Deployment("web", -1, template())
        _, controller = self.make()
        with pytest.raises(ValueError):
            controller.scale("web", -2)


class TestReport:
    def sample_metrics(self, thr=10):
        m = RunMetrics()
        m.lc_arrived = 10
        m.lc_completed = 9
        m.lc_satisfied = 8
        m.be_completed = thr
        m.utilization = [0.5, 0.7]
        m.lc_latencies_ms = [100.0, 200.0]
        return m

    def test_roundtrip_through_dict(self):
        m = self.sample_metrics()
        clone = metrics_from_dict(metrics_to_dict(m))
        assert clone.qos_satisfaction_rate == m.qos_satisfaction_rate
        assert clone.utilization == m.utilization

    def test_save_and_load_single(self, tmp_path):
        m = self.sample_metrics()
        path = save_metrics(m, tmp_path / "run.json")
        loaded = load_metrics(path)
        assert isinstance(loaded, RunMetrics)
        assert loaded.be_throughput == m.be_throughput

    def test_save_and_load_set(self, tmp_path):
        runs = {"a": self.sample_metrics(5), "b": self.sample_metrics(9)}
        path = save_metrics(runs, tmp_path / "set.json")
        loaded = load_metrics(path)
        assert set(loaded) == {"a", "b"}
        assert loaded["b"].be_throughput == 9

    def test_schema_guard(self):
        with pytest.raises(ValueError):
            metrics_from_dict({"_schema": 999})

    def test_comparison_table_deltas(self):
        rows = comparison_table(
            {"base": self.sample_metrics(10), "new": self.sample_metrics(15)}
        )
        assert rows[0]["system"] == "base"
        assert "thr_vs_base_pct" in rows[1]
        assert rows[1]["thr_vs_base_pct"] == pytest.approx(50.0)

    def test_comparison_unknown_baseline(self):
        with pytest.raises(KeyError):
            comparison_table({"a": self.sample_metrics()}, baseline="zzz")

    def test_empty_comparison(self):
        assert comparison_table({}) == []


class TestCLI:
    def test_run_command(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "run", "--stack", "k8s-native", "--clusters", "2",
                "--workers", "2", "--duration", "3", "--out", str(out_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "qos_satisfaction_rate" in captured
        assert out_path.exists()
        payload = json.loads(out_path.read_text())
        assert "_derived" in payload

    def test_compare_command(self, capsys):
        from repro.cli import main

        code = main(
            [
                "compare", "--stacks", "tango,k8s-native", "--clusters", "2",
                "--workers", "2", "--duration", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tango" in out and "k8s-native" in out

    def test_compare_rejects_unknown_stack(self, capsys):
        from repro.cli import main

        assert main(["compare", "--stacks", "bogus"]) == 2

    def test_parser_experiment_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["experiment", "fig9"])
        assert args.name == "fig9"
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "nope"])


class TestCLIExperiment:
    def test_experiment_command_runs_fast_harness(self, capsys):
        from repro.cli import main

        code = main(["experiment", "dvpa"])
        assert code == 0
        out = capsys.readouterr().out
        assert "D-VPA" in out

    def test_module_entrypoint_importable(self):
        import repro.__main__  # noqa: F401
