"""Cluster aggregation and WAN topology tests."""

import numpy as np
import pytest

from repro.cluster.cluster import LAN_DELAY_MS, EdgeCloudCluster, make_heterogeneous_workers
from repro.cluster.node import WorkerNode
from repro.cluster.resources import ResourceVector
from repro.cluster.topology import EdgeCloudSystem, TopologyConfig
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

rv = ResourceVector.of
CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


def cluster_with(n=2):
    workers = [WorkerNode(f"w{i}", 0, rv(cpu=4, memory=8192)) for i in range(n)]
    return EdgeCloudCluster(cluster_id=3, workers=workers)


class TestCluster:
    def test_workers_adopt_cluster_id(self):
        c = cluster_with()
        assert all(w.cluster_id == 3 for w in c.workers)

    def test_receive_routes_by_kind(self):
        c = cluster_with()
        c.receive(ServiceRequest(spec=LC, origin_cluster=3, arrival_ms=0.0))
        c.receive(ServiceRequest(spec=BE, origin_cluster=3, arrival_ms=0.0))
        assert c.queue_lengths() == {"lc": 1, "be": 1}

    def test_drain_empties_queue(self):
        c = cluster_with()
        c.receive(ServiceRequest(spec=LC, origin_cluster=3, arrival_ms=0.0))
        drained = c.drain_lc()
        assert len(drained) == 1
        assert c.queue_lengths()["lc"] == 0

    def test_total_capacity_sums_workers(self):
        c = cluster_with(n=3)
        assert c.total_capacity().cpu == pytest.approx(12.0)

    def test_worker_lookup(self):
        c = cluster_with()
        assert c.worker("w1").name == "w1"
        with pytest.raises(KeyError):
            c.worker("ghost")

    def test_heterogeneous_fleet_bounds(self, rng):
        workers = make_heterogeneous_workers(0, rng, n_workers=None,
                                             min_workers=3, max_workers=20)
        assert 3 <= len(workers) <= 20
        capacities = {w.capacity.cpu for w in workers}
        # fleet draws from multiple SKUs with high probability at this size
        assert len(capacities) >= 1


class TestTopology:
    def make(self, n=6, seed=0):
        return EdgeCloudSystem(TopologyConfig(n_clusters=n, workers_per_cluster=3,
                                              seed=seed))

    def test_rtt_symmetric_and_positive(self):
        sys = self.make()
        for a in range(sys.n_clusters):
            for b in range(sys.n_clusters):
                assert sys.rtt_ms(a, b) == pytest.approx(sys.rtt_ms(b, a))
                assert sys.rtt_ms(a, b) > 0

    def test_local_delay_is_lan(self):
        sys = self.make()
        assert sys.one_way_delay_ms(2, 2) == LAN_DELAY_MS

    def test_wan_delay_grows_with_distance(self):
        sys = self.make()
        pairs = [
            (a, b)
            for a in range(sys.n_clusters)
            for b in range(a + 1, sys.n_clusters)
        ]
        far = max(pairs, key=lambda p: sys.distance_km(*p))
        near = min(pairs, key=lambda p: sys.distance_km(*p))
        assert sys.rtt_ms(*far) > sys.rtt_ms(*near)

    def test_nearby_clusters_respects_radius(self):
        sys = self.make()
        for cid in range(sys.n_clusters):
            nearby = sys.nearby_clusters(cid)
            assert cid in nearby  # always includes itself
            for other in nearby:
                if other != cid:
                    assert sys.distance_km(cid, other) <= sys.config.nearby_radius_km

    def test_central_cluster_is_valid_and_stable(self):
        sys = self.make(seed=7)
        assert 0 <= sys.central_cluster_id < sys.n_clusters
        sys2 = self.make(seed=7)
        assert sys2.central_cluster_id == sys.central_cluster_id

    def test_central_cluster_reasonably_central(self):
        sys = self.make(n=10, seed=3)
        mean_d = sys._distance.mean(axis=1)
        # the pick should be within the better half by mean distance
        assert mean_d[sys.central_cluster_id] <= np.median(mean_d) + 1e-9

    def test_total_nodes(self):
        sys = self.make(n=4)
        assert sys.total_nodes() == 12

    def test_deterministic_given_seed(self):
        a, b = self.make(seed=5), self.make(seed=5)
        assert [c.position_km for c in a.clusters] == [
            c.position_km for c in b.clusters
        ]

    def test_production_like_rtt_range(self):
        """§5.2: edge→central RTTs can exceed 97 ms in the production data."""
        sys = EdgeCloudSystem(TopologyConfig(n_clusters=12, workers_per_cluster=3,
                                             region_km=2400.0, seed=0))
        rtts = [
            sys.rtt_ms(a, b)
            for a in range(12)
            for b in range(a + 1, 12)
        ]
        assert max(rtts) > 90.0


class TestBandwidthModel:
    def make(self):
        return EdgeCloudSystem(TopologyConfig(n_clusters=5, workers_per_cluster=2,
                                              seed=2))

    def test_lan_at_nic_speed(self):
        sys = self.make()
        assert sys.bandwidth_mbps(1, 1) == pytest.approx(1000.0)

    def test_wan_degrades_with_distance_to_floor(self):
        sys = self.make()
        pairs = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        near = min(pairs, key=lambda p: sys.distance_km(*p))
        far = max(pairs, key=lambda p: sys.distance_km(*p))
        assert sys.bandwidth_mbps(*near) >= sys.bandwidth_mbps(*far)
        assert sys.bandwidth_mbps(*far) >= 100.0

    def test_transfer_includes_serialisation(self):
        sys = self.make()
        small = sys.transfer_ms(0, 1, payload_kb=1.0)
        big = sys.transfer_ms(0, 1, payload_kb=10_000.0)
        assert big > small
        # 10 MB over a WAN link takes a macroscopic amount of time
        assert big - small > 50.0

    def test_zero_payload_equals_propagation(self):
        sys = self.make()
        assert sys.transfer_ms(0, 1, 0.0) == pytest.approx(
            sys.one_way_delay_ms(0, 1)
        )
