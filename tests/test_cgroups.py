"""CGroup tree tests: invariants and the ordered two-level resize protocol."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.kube.cgroups import CFS_PERIOD_US, CGroupError, CGroupTree


def make_pod(tree, cpu=2.0, mem=1024.0, uid="abc123"):
    return tree.create_pod_group(
        "burstable", uid, ["main"], cpu_limit_cores=cpu, memory_limit_mib=mem
    )


class TestStructure:
    def test_qos_groups_exist(self):
        tree = CGroupTree()
        for qos in ("guaranteed", "burstable", "besteffort"):
            assert tree.qos_group(qos).path.endswith(qos)

    def test_unknown_qos_rejected(self):
        with pytest.raises(CGroupError):
            CGroupTree().qos_group("weird")

    def test_pod_group_paths(self):
        tree = CGroupTree()
        pod = make_pod(tree)
        assert pod.path.endswith("burstable/podabc123")
        assert "main" in pod.children

    def test_duplicate_pod_rejected(self):
        tree = CGroupTree()
        make_pod(tree)
        with pytest.raises(CGroupError):
            make_pod(tree)

    def test_remove_pod_group(self):
        tree = CGroupTree()
        make_pod(tree)
        tree.remove_pod_group("burstable", "abc123")
        with pytest.raises(CGroupError):
            tree.pod_group("burstable", "abc123")


class TestLimits:
    def test_cpu_limit_from_quota(self):
        tree = CGroupTree()
        pod = make_pod(tree, cpu=1.5)
        assert pod.cpu_limit_cores() == pytest.approx(1.5)

    def test_unlimited_when_quota_negative(self):
        tree = CGroupTree()
        pod = tree.create_pod_group("besteffort", "x", ["c"])
        assert pod.cpu_limit_cores() == float("inf")

    def test_memory_limit_mib(self):
        tree = CGroupTree()
        pod = make_pod(tree, mem=512.0)
        assert pod.memory_limit_mib() == pytest.approx(512.0)


class TestWriteInvariants:
    def test_child_cannot_exceed_parent(self):
        tree = CGroupTree()
        pod = make_pod(tree, cpu=2.0)
        child = pod.children["main"]
        with pytest.raises(CGroupError, match="exceeds parent"):
            tree.write(child, "cpu.cfs_quota_us", 4.0 * CFS_PERIOD_US)

    def test_parent_cannot_shrink_below_child(self):
        tree = CGroupTree()
        pod = make_pod(tree, cpu=2.0)
        with pytest.raises(CGroupError, match="below child"):
            tree.write(pod, "cpu.cfs_quota_us", 1.0 * CFS_PERIOD_US)

    def test_unknown_control_rejected(self):
        tree = CGroupTree()
        pod = make_pod(tree)
        with pytest.raises(CGroupError):
            tree.write(pod, "cpu.bogus", 1)

    def test_writes_cost_latency_and_log(self):
        tree = CGroupTree()
        pod = make_pod(tree, cpu=2.0)
        n_before = len(tree.write_log)
        latency = tree.write(pod, "cpu.cfs_quota_us", 3.0 * CFS_PERIOD_US)
        assert latency > 0
        assert len(tree.write_log) == n_before + 1


class TestResizeProtocol:
    def test_expand_succeeds_with_correct_order(self):
        tree = CGroupTree()
        make_pod(tree, cpu=1.0, mem=512.0)
        latency = tree.resize_pod(
            "burstable", "abc123", "main", ResourceVector(cpu=2.0, memory=1024.0)
        )
        pod = tree.pod_group("burstable", "abc123")
        assert pod.cpu_limit_cores() == pytest.approx(2.0)
        assert pod.children["main"].cpu_limit_cores() == pytest.approx(2.0)
        assert latency > 0

    def test_shrink_succeeds_with_correct_order(self):
        tree = CGroupTree()
        make_pod(tree, cpu=4.0, mem=2048.0)
        tree.resize_pod(
            "burstable", "abc123", "main", ResourceVector(cpu=1.0, memory=512.0)
        )
        pod = tree.pod_group("burstable", "abc123")
        assert pod.cpu_limit_cores() == pytest.approx(1.0)

    def test_resize_latency_is_dvpa_scale(self):
        """A full CPU+memory resize costs ~23 ms (§7.1's D-VPA measurement)."""
        tree = CGroupTree()
        make_pod(tree, cpu=1.0, mem=512.0)
        latency = tree.resize_pod(
            "burstable", "abc123", "main", ResourceVector(cpu=2.0, memory=1024.0)
        )
        assert 15.0 <= latency <= 30.0

    def test_missing_container_rejected(self):
        tree = CGroupTree()
        make_pod(tree)
        with pytest.raises(CGroupError):
            tree.resize_pod(
                "burstable", "abc123", "ghost", ResourceVector(cpu=1.0)
            )

    def test_wrong_order_write_raises(self):
        """Writing container before pod on expansion violates the kernel
        invariant — exactly the failure mode §4.2 says the protocol avoids."""
        tree = CGroupTree()
        pod = make_pod(tree, cpu=1.0)
        container = pod.children["main"]
        with pytest.raises(CGroupError):
            # container first (wrong for expansion): exceeds the pod limit
            tree.write(container, "cpu.cfs_quota_us", 2.0 * CFS_PERIOD_US)
