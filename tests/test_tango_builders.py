"""TangoSystem assembly tests: factories, adapters, scheduler injection."""

import pytest

from repro import TangoConfig, TangoSystem
from repro.baselines.ceres import CeresManager
from repro.baselines.dsaco import DSACOScheduler
from repro.baselines.static import StaticPartitionManager
from repro.cluster.topology import TopologyConfig
from repro.hrm.regulations import HRMManager
from repro.scheduling.baselines import K8sNativeScheduler, ScoringScheduler
from repro.scheduling.dcg_be import DCGBEScheduler
from repro.scheduling.dss_lc import DSSLCScheduler
from repro.scheduling.gnn_sac import GNNSACScheduler
from repro.sim.runner import RunnerConfig


def tiny_topology():
    return TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=0)


def build(config):
    return TangoSystem(config)


class TestFactories:
    def test_tango_factory_wiring(self):
        system = build(TangoConfig.tango(topology=tiny_topology()))
        assert isinstance(system.manager, HRMManager)
        assert isinstance(system.lc_scheduler, DSSLCScheduler)
        assert isinstance(system.be_scheduler, DCGBEScheduler)
        assert system.reassurance is not None
        # DSS-LC shares the live re-assurance state with HRM
        assert system.lc_scheduler.reassurance is system.reassurance

    def test_k8s_native_factory(self):
        system = build(TangoConfig.k8s_native(topology=tiny_topology()))
        assert isinstance(system.manager, StaticPartitionManager)
        assert isinstance(system.lc_scheduler, K8sNativeScheduler)
        assert system.reassurance is None

    def test_ceres_factory(self):
        system = build(TangoConfig.ceres(topology=tiny_topology()))
        assert isinstance(system.manager, CeresManager)

    def test_dsaco_factory_shares_one_agent(self):
        system = build(TangoConfig.dsaco(topology=tiny_topology()))
        assert isinstance(system.lc_scheduler, DSACOScheduler)
        # LC and BE roles are the same (weight-shared) scheduler instance
        assert system.lc_scheduler is system.be_scheduler
        assert getattr(system.be_scheduler, "distributed", False)

    def test_gnn_sac_be_policy(self):
        system = build(
            TangoConfig.tango(topology=tiny_topology(), be_policy="gnn-sac")
        )
        assert isinstance(system.be_scheduler, GNNSACScheduler)

    def test_scoring_lc_policy(self):
        system = build(
            TangoConfig.tango(topology=tiny_topology(), lc_policy="scoring")
        )
        assert isinstance(system.lc_scheduler, ScoringScheduler)

    def test_managers_attached_to_every_worker(self):
        system = build(TangoConfig.tango(topology=tiny_topology()))
        for worker in system.system.all_workers():
            assert worker.manager is system.manager


class TestInjection:
    def test_injected_be_scheduler_is_used(self):
        pretrained = DCGBEScheduler()
        system = TangoSystem(
            TangoConfig.tango(topology=tiny_topology()),
            be_scheduler=pretrained,
        )
        assert system.be_scheduler is pretrained

    def test_injected_lc_scheduler_is_used(self):
        custom = K8sNativeScheduler()
        system = TangoSystem(
            TangoConfig.tango(topology=tiny_topology()),
            lc_scheduler=custom,
        )
        assert system.lc_scheduler is custom

    def test_be_adapter_wraps_dual_role_baselines(self):
        system = build(
            TangoConfig.tango(topology=tiny_topology(), be_policy="load-greedy")
        )
        # the adapter exposes only the BE protocol
        assert hasattr(system.be_scheduler, "dispatch_be")
        assert not hasattr(system.be_scheduler, "decision_latencies_ms")


class TestReassuranceToggle:
    def test_disabled_reassurance_freezes_minima(self):
        config = TangoConfig.tango(
            topology=tiny_topology(),
            runner=RunnerConfig(duration_ms=2_000.0),
            reassurance_enabled=False,
        )
        system = TangoSystem(config)
        assert system.reassurance is None
        # HRM still functions with catalog-default minima
        from repro.workloads.trace import SyntheticTrace, TraceConfig

        trace = SyntheticTrace(
            TraceConfig(n_clusters=2, duration_ms=2_000.0, seed=0)
        ).generate()
        metrics = system.run(trace)
        assert metrics.lc_arrived > 0
