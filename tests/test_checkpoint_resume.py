"""Checkpoint/restore across every stateful layer.

The hard guarantee under test: for any configuration, a straight run and a
run that is checkpointed at tick t, torn down, rebuilt from scratch, and
resumed produce **identical** RunMetrics fingerprints — same counters,
same per-period series to the last bit.  That only holds if *every* layer
(clock, queues, trace cursor, in-flight deliveries, cgroup trees, D-VPA
state, re-assurance levels, scheduler agents and RNGs, failure-injector
schedule, partially filled collector periods, the global request-id
allocator) round-trips through the checkpoint.
"""

from __future__ import annotations

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    RunnerCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.failures import FailureConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

DURATION_MS = 6_000.0
#: mid-run, not period-aligned: the collector holds a partial period and
#: requests are in flight, so a shallow checkpoint would diverge.
CHECKPOINT_MS = 2_775.0


def fingerprint(metrics) -> dict:
    # mirrors tests/test_perf_determinism.py — the seed fingerprint shape
    return {
        "lc_arrived": metrics.lc_arrived,
        "lc_completed": metrics.lc_completed,
        "lc_satisfied": metrics.lc_satisfied,
        "lc_abandoned": metrics.lc_abandoned,
        "be_arrived": metrics.be_arrived,
        "be_completed": metrics.be_completed,
        "be_evictions": metrics.be_evictions,
        "lc_latency_sum": round(sum(metrics.lc_latencies_ms), 6),
        "utilization": [round(u, 12) for u in metrics.utilization],
        "qos_rate_per_period": [round(r, 12) for r in metrics.qos_rate_per_period],
        "per_service": {k: list(v) for k, v in sorted(metrics.per_service.items())},
    }


def build(factory, seed, *, observe=False, failures=None, clusters=3, workers=3):
    config = factory(
        topology=TopologyConfig(
            n_clusters=clusters, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(
            duration_ms=DURATION_MS, observe=observe, failures=failures
        ),
    )
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=clusters,
            duration_ms=DURATION_MS,
            seed=seed,
            lc_peak_rps=15.0,
            be_peak_rps=5.0,
        )
    ).generate()
    return TangoSystem(config), trace


def straight_vs_resumed(factory, seed, **kwargs):
    """Fingerprints of (straight run, checkpoint-at-t-then-resume run)."""
    straight_system, trace = build(factory, seed, **kwargs)
    straight = fingerprint(straight_system.run(trace))

    leg1_system, _ = build(factory, seed, **kwargs)
    leg1_system.run(trace, until_ms=CHECKPOINT_MS)
    checkpoint = leg1_system.last_runner.checkpoint()

    leg2_system, _ = build(factory, seed, **kwargs)
    resumed = fingerprint(leg2_system.resume(trace, checkpoint))
    return straight, resumed


class TestResumeFingerprintParity:
    """checkpoint(t) + resume == straight run, bit for bit."""

    @pytest.mark.parametrize("seed", [1, 7])
    def test_tango(self, seed):
        straight, resumed = straight_vs_resumed(TangoConfig.tango, seed)
        assert resumed == straight

    @pytest.mark.parametrize("seed", [1, 7])
    def test_tango_observed(self, seed):
        straight, resumed = straight_vs_resumed(
            TangoConfig.tango, seed, observe=True
        )
        assert resumed == straight

    def test_k8s_native(self):
        straight, resumed = straight_vs_resumed(TangoConfig.k8s_native, 3)
        assert resumed == straight

    def test_ceres(self):
        straight, resumed = straight_vs_resumed(TangoConfig.ceres, 3)
        assert resumed == straight

    def test_dsaco_shared_scheduler(self):
        # DSACO serves both roles through one object: the checkpoint must
        # snapshot it once, and restore must keep the sharing intact.
        straight, resumed = straight_vs_resumed(TangoConfig.dsaco, 2)
        assert resumed == straight

    @pytest.mark.parametrize("observe", [False, True])
    def test_with_failure_injection(self, observe):
        # crashes + partitions: injector RNG position and schedule, down
        # sets, and crash-displaced requests must all round-trip.
        failures = FailureConfig(
            node_mtbf_ms=2_000.0,
            node_downtime_ms=800.0,
            partition_mtbf_ms=2_500.0,
            partition_duration_ms=600.0,
            seed=5,
        )
        straight, resumed = straight_vs_resumed(
            TangoConfig.tango, 4, observe=observe, failures=failures
        )
        assert resumed == straight

    def test_observe_flag_may_differ_across_legs(self):
        # the checkpoint carries no observability state, so a run recorded
        # with observe=False can be resumed with observe=True and still
        # land on the same metrics.
        straight_system, trace = build(TangoConfig.tango, 1)
        straight = fingerprint(straight_system.run(trace))

        leg1_system, _ = build(TangoConfig.tango, 1)
        leg1_system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = leg1_system.last_runner.checkpoint()

        leg2_system, _ = build(TangoConfig.tango, 1, observe=True)
        resumed = fingerprint(leg2_system.resume(trace, checkpoint))
        assert resumed == straight


class TestForkSemantics:
    def test_one_checkpoint_resumes_twice_identically(self):
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = system.last_runner.checkpoint()

        runs = []
        for _ in range(2):
            fork_system, _ = build(TangoConfig.tango, 1)
            runs.append(fingerprint(fork_system.resume(trace, checkpoint)))
        assert runs[0] == runs[1]

    def test_checkpoint_does_not_alias_live_state(self):
        # continuing the checkpointed run must not mutate the checkpoint
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        runner = system.last_runner
        checkpoint = runner.checkpoint()
        cursor_at_t = checkpoint.state["runner"]["trace_cursor"]
        clock_at_t = checkpoint.state["clock"]["now_ms"]
        runner.run()  # continue to the end
        assert checkpoint.state["runner"]["trace_cursor"] == cursor_at_t
        assert checkpoint.state["clock"]["now_ms"] == clock_at_t

    def test_fork_is_independent(self):
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = system.last_runner.checkpoint()
        fork = checkpoint.fork()
        assert fork.state["runner"] == checkpoint.state["runner"]
        assert fork.state["clock"] == checkpoint.state["clock"]
        fork.state["runner"]["trace_cursor"] = -1
        assert checkpoint.state["runner"]["trace_cursor"] != -1


class TestCheckpointValidation:
    def test_save_load_round_trip(self, tmp_path):
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = system.last_runner.checkpoint()
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded.version == CHECKPOINT_VERSION
        # plain sub-dicts compare directly; components hold objects
        # without __eq__, so compare their layout
        assert loaded.state["runner"] == checkpoint.state["runner"]
        assert loaded.state["clock"] == checkpoint.state["clock"]
        assert set(loaded.state["components"]) == set(
            checkpoint.state["components"]
        )

    def test_version_mismatch_rejected(self):
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = system.last_runner.checkpoint()
        bad = RunnerCheckpoint(state=checkpoint.state, version=999)
        fresh_system, _ = build(TangoConfig.tango, 1)
        with pytest.raises(ValueError, match="version"):
            fresh_system.resume(trace, bad)

    def test_mismatched_stack_rejected(self):
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = system.last_runner.checkpoint()
        other_system, _ = build(TangoConfig.ceres, 1)
        with pytest.raises(ValueError, match="component"):
            other_system.resume(trace, checkpoint)

    def test_mismatched_trace_rejected(self):
        system, trace = build(TangoConfig.tango, 1)
        system.run(trace, until_ms=CHECKPOINT_MS)
        checkpoint = system.last_runner.checkpoint()
        fresh_system, _ = build(TangoConfig.tango, 1)
        with pytest.raises(ValueError, match="trace"):
            fresh_system.resume(trace[: len(trace) // 2], checkpoint)


class TestCli:
    def test_checkpoint_resume_matches_straight_run(self, tmp_path, capsys):
        from repro.cli import main

        common = [
            "--clusters", "2", "--workers", "2", "--duration", "4",
            "--seed", "3",
        ]
        rc = main(["run", "--stack", "tango", *common])
        assert rc == 0
        straight = capsys.readouterr().out

        ckpt = str(tmp_path / "cli.ckpt")
        rc = main([
            "checkpoint", "--stack", "tango", *common, "--at", "2",
            "--out", ckpt,
        ])
        assert rc == 0
        capsys.readouterr()

        rc = main(["resume", ckpt])
        assert rc == 0
        resumed = capsys.readouterr().out
        # resume prints a provenance line, then the identical summary
        assert resumed.splitlines()[1:] == straight.splitlines()
