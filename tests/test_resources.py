"""Unit and property tests for the ResourceVector model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster.resources import (
    COMPRESSIBLE_KINDS,
    INCOMPRESSIBLE_KINDS,
    ResourceKind,
    ResourceVector,
    ZERO,
)

dims = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


def vectors():
    return st.builds(ResourceVector, dims, dims, dims, dims)


class TestKinds:
    def test_cpu_and_bandwidth_are_compressible(self):
        assert ResourceKind.CPU.compressible
        assert ResourceKind.BANDWIDTH.compressible

    def test_memory_and_disk_are_incompressible(self):
        assert not ResourceKind.MEMORY.compressible
        assert not ResourceKind.DISK.compressible

    def test_kind_partition_is_complete(self):
        assert COMPRESSIBLE_KINDS | INCOMPRESSIBLE_KINDS == frozenset(ResourceKind)
        assert not COMPRESSIBLE_KINDS & INCOMPRESSIBLE_KINDS


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(0.5, 1.0, 1.5, 2.0)
        assert (a + b - b).approx_equal(a)

    def test_scalar_multiply(self):
        a = ResourceVector(1, 2, 3, 4)
        assert (a * 2).as_tuple() == (2, 4, 6, 8)
        assert (2 * a).as_tuple() == (2, 4, 6, 8)

    def test_negation(self):
        a = ResourceVector(1, 2, 3, 4)
        assert (-a).as_tuple() == (-1, -2, -3, -4)

    def test_clamp_min(self):
        a = ResourceVector(-1, 2, -3, 4)
        assert a.clamp_min(0.0).as_tuple() == (0, 2, 0, 4)

    def test_replace_single_dimension(self):
        a = ResourceVector(1, 2, 3, 4)
        b = a.replace(ResourceKind.MEMORY, 99.0)
        assert b.memory == 99.0
        assert b.cpu == 1.0 and b.bandwidth == 3.0 and b.disk == 4.0

    @given(vectors(), vectors())
    def test_add_commutes(self, a, b):
        assert (a + b).approx_equal(b + a)

    @given(vectors())
    def test_zero_is_identity(self, a):
        assert (a + ZERO).approx_equal(a)


class TestPredicates:
    def test_fits_in_exact_boundary(self):
        a = ResourceVector(4, 8, 0, 0)
        assert a.fits_in(ResourceVector(4, 8, 0, 0))

    def test_fits_in_fails_on_any_dimension(self):
        cap = ResourceVector(4, 8, 10, 10)
        assert not ResourceVector(5, 1, 1, 1).fits_in(cap)
        assert not ResourceVector(1, 9, 1, 1).fits_in(cap)
        assert not ResourceVector(1, 1, 11, 1).fits_in(cap)
        assert not ResourceVector(1, 1, 1, 11).fits_in(cap)

    @given(vectors(), vectors())
    def test_min_with_fits_in_both(self, a, b):
        m = a.min_with(b)
        assert m.fits_in(a) and m.fits_in(b)

    @given(vectors(), vectors())
    def test_max_with_dominates_both(self, a, b):
        m = a.max_with(b)
        assert a.fits_in(m) and b.fits_in(m)

    def test_is_zero(self):
        assert ZERO.is_zero()
        assert not ResourceVector(cpu=0.1).is_zero()


class TestSummaries:
    def test_dominant_share_picks_max_dimension(self):
        demand = ResourceVector(cpu=2, memory=1024)
        cap = ResourceVector(cpu=4, memory=8192)
        assert demand.dominant_share(cap) == pytest.approx(0.5)

    def test_dominant_share_infinite_when_capacity_missing(self):
        demand = ResourceVector(cpu=1)
        cap = ResourceVector(memory=100)
        assert math.isinf(demand.dominant_share(cap))

    def test_units_within_eq2(self):
        # Eq. 2: min(cpu_ava / r_c, mem_ava / r_m)
        demand = ResourceVector(cpu=1.0, memory=1024.0)
        cap = ResourceVector(cpu=4.0, memory=3 * 1024.0)
        assert demand.units_within(cap) == 3

    def test_units_within_zero_demand(self):
        assert ZERO.units_within(ResourceVector(cpu=4, memory=8)) == 0

    @given(vectors())
    def test_units_within_self_at_least_one(self, a):
        if a.cpu > 1e-6 and a.memory > 1e-6:
            assert a.units_within(a) >= 1
