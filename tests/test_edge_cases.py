"""Edge-case tests across modules (rounding, clamps, degenerate inputs)."""

import math

import pytest

from repro.cluster.resources import ResourceVector
from repro.flow.graph import COST_SCALE, SupplyDemandGraph, solve_transport
from repro.kube.scheduler import NodeView
from repro.workloads.spec import ServiceKind, default_catalog

rv = ResourceVector.of
CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


class TestFlowRounding:
    def test_sub_microsecond_delays_do_not_vanish(self):
        """Delays round at µs resolution; distinct ms-scale delays stay
        distinct after scaling."""
        graph = SupplyDemandGraph()
        graph.supplies = [1, -1, -1]
        graph.edges = [(0, 1, 0.001, 10), (0, 2, 0.002, 10)]
        result = solve_transport(graph)
        assert result.absorbed == {1: 1}  # the cheaper edge wins

    def test_negative_delay_clamped_to_zero_cost(self):
        graph = SupplyDemandGraph()
        graph.supplies = [1, -1]
        graph.edges = [(0, 1, -5.0, 10)]
        result = solve_transport(graph)
        assert result.placed == 1
        assert result.total_delay_ms == 0.0

    def test_zero_capacity_edges_skipped(self):
        graph = SupplyDemandGraph()
        graph.supplies = [2, -2, -2]
        graph.edges = [(0, 1, 1.0, 0), (0, 2, 9.0, 10)]
        result = solve_transport(graph)
        assert result.absorbed == {2: 2}


class TestNodeViewClamping:
    def test_free_never_negative(self):
        view = NodeView("n", rv(cpu=2, memory=100), rv(cpu=5, memory=500))
        free = view.free()
        assert free.cpu == 0.0 and free.memory == 0.0


class TestHRMEdgeCases:
    def make(self, cpu=4.0, mem=8192.0):
        from repro.cluster.node import WorkerNode
        from repro.hrm.qos import QoSDetector
        from repro.hrm.reassurance import ReassuranceMechanism
        from repro.hrm.regulations import HRMManager

        det = QoSDetector()
        manager = HRMManager(det, ReassuranceMechanism(det))
        node = WorkerNode("w", 0, rv(cpu=cpu, memory=mem))
        node.manager = manager
        return manager, node

    def test_lc_larger_than_node_capacity_rejected(self):
        from repro.sim.request import ServiceRequest

        manager, node = self.make(cpu=0.1, mem=32.0)
        req = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        assert manager.admit(node, req, 0.0) is None

    def test_be_expansion_also_grows_memory(self):
        from repro.sim.request import ServiceRequest

        manager, node = self.make(cpu=16.0, mem=65536.0)
        req = ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=0.0)
        node.enqueue(req, 0.0)
        node.step(0.0, 25.0)
        rr = next(iter(node.running.values()))
        mem_start = rr.allocation.memory
        for t in range(1, 20):
            manager.tick(node, t * 25.0)
        assert rr.allocation.memory >= mem_start
        assert rr.allocation.memory <= BE.reference_resources.memory + 1e-6

    def test_squeeze_respects_floor(self):
        from repro.sim.request import ServiceRequest

        manager, node = self.make(cpu=1.0, mem=65536.0)
        be_req = ServiceRequest(spec=BE, origin_cluster=0, arrival_ms=0.0)
        node.enqueue(be_req, 0.0)
        node.step(0.0, 25.0)
        rr = next(iter(node.running.values()))
        floor = BE.min_resources.cpu * manager.config.be_squeeze_floor
        manager._squeeze_be_cpu(node, missing_cpu=100.0)
        assert rr.allocation.cpu >= floor - 1e-9


class TestCatalogConsistency:
    def test_every_spec_runnable_at_minimum(self):
        """min_resources must actually let the service make progress."""
        from repro.sim.latency import LatencyModel

        model = LatencyModel()
        for spec in CATALOG:
            speed = model.speed(spec, spec.min_resources, 0.0)
            assert speed > 0.0, spec.name

    def test_lc_can_meet_target_at_minimum_unloaded(self):
        """At the minimum allocation with no contention, the processing
        time alone stays under the QoS target — queueing and network are
        what eat the remaining budget."""
        from repro.sim.latency import LatencyModel

        model = LatencyModel()
        for spec in CATALOG:
            if not spec.is_lc:
                continue
            t = model.expected_processing_ms(spec, spec.min_resources, 0.0)
            assert t < spec.qos_target_ms, spec.name
