"""API server store + watch semantics."""

import pytest

from repro.kube.api_server import (
    ApiServer,
    ConflictError,
    EventType,
    NotFoundError,
)


class TestCRUD:
    def test_create_get_roundtrip(self):
        api = ApiServer()
        api.create("Pod", "p1", {"x": 1})
        assert api.get("Pod", "p1") == {"x": 1}

    def test_create_duplicate_conflicts(self):
        api = ApiServer()
        api.create("Pod", "p1", {})
        with pytest.raises(ConflictError):
            api.create("Pod", "p1", {})

    def test_get_missing_raises(self):
        with pytest.raises(NotFoundError):
            ApiServer().get("Pod", "nope")

    def test_namespaces_isolate(self):
        api = ApiServer()
        api.create("Pod", "p", 1, namespace="a")
        api.create("Pod", "p", 2, namespace="b")
        assert api.get("Pod", "p", namespace="a") == 1
        assert api.get("Pod", "p", namespace="b") == 2

    def test_delete_removes(self):
        api = ApiServer()
        api.create("Pod", "p1", {})
        api.delete("Pod", "p1")
        assert not api.exists("Pod", "p1")
        with pytest.raises(NotFoundError):
            api.delete("Pod", "p1")

    def test_list_filters_kind_and_namespace(self):
        api = ApiServer()
        api.create("Pod", "p1", 1)
        api.create("Pod", "p2", 2, namespace="other")
        api.create("Node", "n1", 3)
        assert api.list("Pod") == [1, 2]
        assert api.list("Pod", namespace="other") == [2]
        assert api.list("Node") == [3]

    def test_patch_mutates_and_bumps_version(self):
        api = ApiServer()
        api.create("Pod", "p1", {"n": 0})
        v1 = api.resource_version("Pod", "p1")
        api.patch("Pod", "p1", lambda o: o.update(n=5))
        assert api.get("Pod", "p1")["n"] == 5
        assert api.resource_version("Pod", "p1") > v1


class TestOptimisticConcurrency:
    def test_stale_version_rejected(self):
        api = ApiServer()
        api.create("Pod", "p1", {"n": 0})
        version = api.resource_version("Pod", "p1")
        api.update("Pod", "p1", {"n": 1}, expected_version=version)
        with pytest.raises(ConflictError):
            api.update("Pod", "p1", {"n": 2}, expected_version=version)

    def test_versions_monotonic(self):
        api = ApiServer()
        api.create("Pod", "a", {})
        va = api.resource_version("Pod", "a")
        api.create("Pod", "b", {})
        vb = api.resource_version("Pod", "b")
        assert vb > va


class TestWatch:
    def test_events_delivered_in_order(self):
        api = ApiServer()
        events = []
        api.watch(lambda e: events.append((e.type, e.name)))
        api.create("Pod", "p1", {})
        api.update("Pod", "p1", {"v": 2})
        api.delete("Pod", "p1")
        assert events == [
            (EventType.ADDED, "p1"),
            (EventType.MODIFIED, "p1"),
            (EventType.DELETED, "p1"),
        ]

    def test_kind_filter(self):
        api = ApiServer()
        pod_events, all_events = [], []
        api.watch(pod_events.append, kind="Pod")
        api.watch(all_events.append)
        api.create("Node", "n1", {})
        api.create("Pod", "p1", {})
        assert len(pod_events) == 1
        assert len(all_events) == 2

    def test_unsubscribe(self):
        api = ApiServer()
        events = []
        cancel = api.watch(events.append)
        api.create("Pod", "p1", {})
        cancel()
        api.create("Pod", "p2", {})
        assert len(events) == 1
