"""Endpoints controller tests: watch-driven Service endpoint tracking."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.kube.api_server import ApiServer
from repro.kube.endpoints import EndpointsResolver
from repro.kube.objects import (
    ContainerSpec,
    Pod,
    PodPhase,
    PodSpec,
    ServiceObject,
)

rv = ResourceVector.of


def make_pod(name, node="n0", app="web", running=True):
    pod = Pod(
        name=name,
        spec=PodSpec(
            containers=[ContainerSpec("c", requests=rv(cpu=0.1, memory=64))],
            node_name=node,
        ),
        labels={"app": app},
    )
    if running:
        pod.phase = PodPhase.RUNNING
    return pod


def setup():
    api = ApiServer()
    api.create("Service", "web", ServiceObject("web", selector={"app": "web"}))
    resolver = EndpointsResolver(api)
    return api, resolver


class TestEndpointTracking:
    def test_running_matching_pods_become_endpoints(self):
        api, resolver = setup()
        api.create("Pod", "w1", make_pod("w1"))
        api.create("Pod", "w2", make_pod("w2", node="n1"))
        assert resolver.endpoints("web") == ["default/w1", "default/w2"]

    def test_pending_pods_excluded_until_running(self):
        api, resolver = setup()
        pod = make_pod("w1", running=False)
        api.create("Pod", "w1", pod)
        assert resolver.endpoints("web") == []
        pod.phase = PodPhase.RUNNING
        api.update("Pod", "w1", pod)
        assert resolver.endpoints("web") == ["default/w1"]

    def test_selector_mismatch_excluded(self):
        api, resolver = setup()
        api.create("Pod", "db1", make_pod("db1", app="db"))
        assert resolver.endpoints("web") == []

    def test_deleted_pod_removed(self):
        api, resolver = setup()
        api.create("Pod", "w1", make_pod("w1"))
        api.delete("Pod", "w1")
        assert resolver.endpoints("web") == []

    def test_bootstrap_from_existing_state(self):
        api = ApiServer()
        api.create("Service", "web", ServiceObject("web", selector={"app": "web"}))
        api.create("Pod", "w1", make_pod("w1"))
        resolver = EndpointsResolver(api)  # constructed after the fact
        assert resolver.endpoints("web") == ["default/w1"]

    def test_service_deletion_clears_endpoints(self):
        api, resolver = setup()
        api.create("Pod", "w1", make_pod("w1"))
        api.delete("Service", "web")
        assert resolver.endpoints("web") == []

    def test_unknown_service_empty(self):
        _, resolver = setup()
        assert resolver.endpoints("ghost") == []


class TestRouting:
    def test_round_robin_over_nodes(self):
        api, resolver = setup()
        api.create("Pod", "w1", make_pod("w1", node="nA"))
        api.create("Pod", "w2", make_pod("w2", node="nB"))
        routes = [resolver.route("web") for _ in range(4)]
        assert routes == ["nA", "nB", "nA", "nB"]

    def test_route_none_without_endpoints(self):
        _, resolver = setup()
        assert resolver.route("web") is None

    def test_close_stops_tracking(self):
        api, resolver = setup()
        resolver.close()
        api.create("Pod", "w1", make_pod("w1"))
        assert resolver.endpoints("web") == []
