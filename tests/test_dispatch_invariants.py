"""Property tests on dispatch invariants shared by every scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.scheduling.baselines import (
    K8sNativeScheduler,
    LoadGreedyScheduler,
    ScoringScheduler,
)
from repro.scheduling.dss_lc import DSSLCConfig, DSSLCScheduler
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC_SPECS = [s for s in CATALOG if s.kind is ServiceKind.LC]


@st.composite
def dispatch_scenarios(draw):
    n_clusters = draw(st.integers(min_value=1, max_value=4))
    nodes = []
    for cid in range(n_clusters):
        for w in range(draw(st.integers(min_value=1, max_value=3))):
            cpu_total = draw(st.sampled_from([2.0, 4.0, 8.0, 16.0]))
            nodes.append(
                NodeSnapshot(
                    name=f"c{cid}-w{w}",
                    cluster_id=cid,
                    cpu_total=cpu_total,
                    cpu_available=draw(
                        st.floats(min_value=0.0, max_value=cpu_total)
                    ),
                    mem_total=cpu_total * 2048.0,
                    mem_available=draw(
                        st.floats(min_value=0.0, max_value=cpu_total * 2048.0)
                    ),
                    lc_queue=draw(st.integers(min_value=0, max_value=10)),
                    be_queue=0,
                    running=0,
                    min_slack=1.0,
                )
            )
    n_requests = draw(st.integers(min_value=0, max_value=20))
    spec = draw(st.sampled_from(LC_SPECS))
    requests = [
        ServiceRequest(spec=spec, origin_cluster=0, arrival_ms=0.0)
        for _ in range(n_requests)
    ]
    eligible = sorted(
        set(draw(st.lists(st.integers(min_value=0, max_value=n_clusters - 1),
                          min_size=1, max_size=n_clusters)))
    )
    delays = [
        [1.0 if a == b else 25.0 for b in range(n_clusters)]
        for a in range(n_clusters)
    ]
    snapshot = SystemSnapshot(
        time_ms=0.0, nodes=nodes, delay_ms=delays, central_cluster_id=0
    )
    return requests, snapshot, eligible


SCHEDULERS = [
    lambda: DSSLCScheduler(DSSLCConfig(seed=0)),
    LoadGreedyScheduler,
    K8sNativeScheduler,
    ScoringScheduler,
]


class TestUniversalInvariants:
    @settings(max_examples=40, deadline=None)
    @given(scenario=dispatch_scenarios(), which=st.integers(min_value=0, max_value=3))
    def test_each_request_assigned_at_most_once(self, scenario, which):
        requests, snapshot, eligible = scenario
        scheduler = SCHEDULERS[which]()
        out = scheduler.dispatch(0, requests, snapshot, eligible, 0.0)
        ids = [a.request.request_id for a in out]
        assert len(ids) == len(set(ids))
        valid = {r.request_id for r in requests}
        assert set(ids) <= valid

    @settings(max_examples=40, deadline=None)
    @given(scenario=dispatch_scenarios(), which=st.integers(min_value=0, max_value=3))
    def test_assignments_stay_within_eligible_clusters(self, scenario, which):
        requests, snapshot, eligible = scenario
        scheduler = SCHEDULERS[which]()
        out = scheduler.dispatch(0, requests, snapshot, eligible, 0.0)
        allowed = set(eligible)
        for a in out:
            assert a.cluster_id in allowed
            assert snapshot.node(a.node_name).cluster_id == a.cluster_id

    @settings(max_examples=30, deadline=None)
    @given(scenario=dispatch_scenarios())
    def test_dss_lc_never_assigns_more_than_pending(self, scenario):
        requests, snapshot, eligible = scenario
        scheduler = DSSLCScheduler(DSSLCConfig(seed=1))
        out = scheduler.dispatch(0, requests, snapshot, eligible, 0.0)
        assert len(out) <= len(requests)

    @settings(max_examples=30, deadline=None)
    @given(scenario=dispatch_scenarios())
    def test_rr_assigns_everything_when_nodes_exist(self, scenario):
        requests, snapshot, eligible = scenario
        scheduler = K8sNativeScheduler()
        out = scheduler.dispatch(0, requests, snapshot, eligible, 0.0)
        if snapshot.nodes_of(eligible):
            assert len(out) == len(requests)
        else:
            assert out == []
