"""Google cluster-data adapter tests (synthetic CSV in the real schema)."""

import io

import pytest

from repro.workloads.google import (
    GoogleTraceConfig,
    GoogleTraceLoader,
    TraceFormatError,
)
from repro.workloads.spec import ServiceKind

HEADER = (
    "time,collection_id,event_type,collection_type,latency_sensitivity,"
    "resource_request_cpu,resource_request_memory\n"
)


def csv_of(rows):
    return io.StringIO(HEADER + "".join(rows))


def row(
    time_us=1_000_000,
    cid=7,
    event="SCHEDULE",
    ctype="JOB",
    tier=3,
    cpu=0.05,
    mem=0.02,
):
    return f"{time_us},{cid},{event},{ctype},{tier},{cpu},{mem}\n"


class TestParsing:
    def test_schedule_job_rows_kept(self):
        loader = GoogleTraceLoader()
        records = loader.load(csv_of([row(), row(event="FINISH"), row(ctype="ALLOC")]))
        assert len(records) == 1

    def test_numeric_event_codes_accepted(self):
        loader = GoogleTraceLoader()
        records = loader.load(csv_of([row(event="3", ctype="1")]))
        assert len(records) == 1

    def test_tier_split(self):
        loader = GoogleTraceLoader()
        records = loader.load(
            csv_of([row(tier=3), row(tier=2), row(tier=1), row(tier=0)])
        )
        kinds = [r.kind for r in records]
        assert kinds.count(ServiceKind.LC) == 2
        assert kinds.count(ServiceKind.BE) == 2

    def test_time_and_resource_scaling(self):
        cfg = GoogleTraceConfig(cpu_scale=16.0, memory_scale=32768.0,
                                time_compression=1000.0)
        loader = GoogleTraceLoader(cfg)
        records = loader.load(csv_of([row(time_us=2_000_000, cpu=0.25, mem=0.5)]))
        rec = records[0]
        assert rec.time_ms == pytest.approx(2.0)  # 2 s / 1000 compression
        assert rec.cpu == pytest.approx(4.0)
        assert rec.memory == pytest.approx(16384.0)

    def test_cluster_sharding_by_collection(self):
        cfg = GoogleTraceConfig(n_clusters=3)
        loader = GoogleTraceLoader(cfg)
        records = loader.load(csv_of([row(cid=4), row(cid=5)]))
        assert [r.cluster_id for r in records] == [1, 2]

    def test_explicit_cluster_column(self):
        text = (
            HEADER.strip() + ",cluster\n"
            + "1000,1,SCHEDULE,JOB,3,0.05,0.02,2\n"
        )
        loader = GoogleTraceLoader(GoogleTraceConfig(n_clusters=4))
        records = loader.load(io.StringIO(text))
        assert records[0].cluster_id == 2

    def test_bad_rows_counted_not_fatal(self):
        loader = GoogleTraceLoader()
        records = loader.load(
            csv_of([row(), "oops,x,SCHEDULE,JOB,3,notanumber,0.02\n"])
        )
        assert len(records) == 1
        assert loader.skipped_rows == 1

    def test_missing_columns_rejected(self):
        loader = GoogleTraceLoader()
        with pytest.raises(TraceFormatError):
            loader.load(io.StringIO("time,collection_id\n1,2\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceFormatError):
            GoogleTraceLoader().load(io.StringIO(""))

    def test_max_time_filter(self):
        cfg = GoogleTraceConfig(max_time_ms=1.5)
        loader = GoogleTraceLoader(cfg)
        records = loader.load(
            csv_of([row(time_us=1_000_000), row(time_us=9_000_000)])
        )
        assert len(records) == 1

    def test_records_sorted_by_time(self):
        loader = GoogleTraceLoader()
        records = loader.load(
            csv_of([row(time_us=5_000_000), row(time_us=1_000_000)])
        )
        assert records[0].time_ms < records[1].time_ms


class TestClassification:
    def test_cpu_binning_within_class(self):
        loader = GoogleTraceLoader(GoogleTraceConfig(cpu_scale=16.0))
        small = loader.load(csv_of([row(cpu=0.01)]))[0]   # 0.16 cores
        large = loader.load(csv_of([row(cpu=0.2)]))[0]    # 3.2 cores
        assert small.service != large.service

    def test_loaded_trace_drives_simulation(self):
        """End-to-end: a CSV trace runs through the full Tango stack."""
        from repro import TangoConfig, TangoSystem
        from repro.cluster.topology import TopologyConfig
        from repro.sim.runner import RunnerConfig

        rows = [
            row(time_us=int(i * 2e5), cid=i, tier=(3 if i % 2 else 1),
                cpu=0.04, mem=0.03)
            for i in range(40)
        ]
        records = GoogleTraceLoader(
            GoogleTraceConfig(n_clusters=2, time_compression=1.0)
        ).load(csv_of(rows))
        config = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=0),
            runner=RunnerConfig(duration_ms=9_000.0),
        )
        metrics = TangoSystem(config).run(records)
        assert metrics.lc_arrived > 0
        assert metrics.be_arrived > 0
