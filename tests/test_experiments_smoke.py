"""Smoke tests for the experiment harnesses (fast paths only).

The benchmark suite exercises the full-size experiments; these tests only
assert that every harness builds, runs at a reduced scale, and returns the
structure the benches consume.  Heavy learning arms are excluded here.
"""

import pytest

from repro.experiments import common
from repro.experiments.dss_latency import run_dss_latency
from repro.experiments.dvpa_latency import run_dvpa_latency
from repro.experiments.fig1 import run_fig1


class TestCommon:
    def test_scales_registry(self):
        assert {"tiny", "small", "multi", "paper"} <= set(common.SCALES)
        for scale in common.SCALES.values():
            assert scale.duration_ms > 0
            assert scale.n_clusters >= 1

    def test_normalize(self):
        out = common.normalize({"a": 2.0, "b": 1.0})
        assert out == {"a": 1.0, "b": 0.5}
        assert common.normalize({}) == {}
        assert common.normalize({"a": 0.0}) == {"a": 0.0}

    def test_print_table_handles_rows_and_empty(self, capsys):
        common.print_table("t", [{"x": 1, "y": 2.5}])
        common.print_table("empty", [])
        out = capsys.readouterr().out
        assert "t" in out and "2.500" in out and "(no rows)" in out

    def test_build_and_run_with_custom_trace(self):
        from repro.core.config import TangoConfig

        scale = common.SCALES["tiny"]
        config = common.scaled_config(TangoConfig.k8s_native, scale)
        metrics = common.build_and_run(config, scale, trace=[])
        assert metrics.lc_arrived == 0


class TestMicrobenches:
    def test_dvpa_latency_structure(self):
        result = run_dvpa_latency(n_ops=6)
        assert set(result) >= {"dvpa_mean_ms", "native_mean_ms", "speedup"}
        assert result["speedup"] > 1.0

    def test_dss_latency_structure(self):
        result = run_dss_latency(node_counts=(20, 50), n_requests=10, repeats=2)
        assert set(result) == {20, 50}
        assert all(v > 0 for v in result.values())


class TestFig1Smoke:
    def test_returns_series_and_summaries(self):
        result = run_fig1("tiny")
        assert len(result["hours"]) == len(result["utilization"])
        assert 0.0 <= result["mean_utilization"] <= 1.0
        assert result["mean_latency_ms"] >= 0.0
