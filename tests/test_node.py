"""Worker-node runtime tests: admission, execution, conservation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.node import AdmitDecision, WorkerNode
from repro.cluster.resources import ResourceVector
from repro.sim.request import RequestState, ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

rv = ResourceVector.of
CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)
BE = next(s for s in CATALOG if s.kind is ServiceKind.BE)


class AdmitAll:
    """Trivial manager: reference allocation, no preemption."""

    def admit(self, node, request, now_ms):
        demand = request.spec.reference_resources
        if not demand.fits_in(node.free()):
            return None
        return AdmitDecision(allocation=demand)

    def on_complete(self, node, running, now_ms):
        pass

    def tick(self, node, now_ms):
        pass


def make_node(cpu=4.0, mem=8192.0):
    node = WorkerNode("w0", 0, rv(cpu=cpu, memory=mem))
    node.manager = AdmitAll()
    return node


def req(spec=LC, arrival=0.0):
    return ServiceRequest(spec=spec, origin_cluster=0, arrival_ms=arrival)


class TestAdmission:
    def test_enqueue_and_run(self):
        node = make_node()
        node.enqueue(req(), now_ms=0.0)
        node.step(0.0, 25.0)
        assert len(node.running) == 1
        assert node.queue_lengths() == (0, 0)

    def test_no_manager_raises(self):
        node = WorkerNode("w0", 0, rv(cpu=1, memory=1))
        node.enqueue(req(), 0.0)
        with pytest.raises(RuntimeError):
            node.step(0.0, 25.0)

    def test_lc_admitted_before_be(self):
        node = make_node(cpu=LC.reference_resources.cpu)  # room for exactly one
        node.enqueue(req(BE), 0.0)
        node.enqueue(req(LC), 0.0)
        node.step(0.0, 25.0)
        kinds = [rr.request.kind for rr in node.running.values()]
        assert ServiceKind.LC in kinds

    def test_queue_blocks_head_of_line_within_class(self):
        node = make_node(cpu=1.0, mem=99999.0)
        big = req(LC)
        node.enqueue(big, 0.0)  # needs 1.0 cpu → fits
        node.enqueue(req(LC), 0.0)  # no room left
        node.step(0.0, 25.0)
        assert len(node.running) == 1
        assert node.queue_lengths()[0] == 1


class TestExecution:
    def test_request_completes_after_service_time(self):
        node = make_node()
        r = req()
        node.enqueue(r, 0.0)
        completed = []
        t = 0.0
        for _ in range(200):
            done, _, _ = node.step(t, 25.0)
            completed.extend(done)
            t += 25.0
            if completed:
                break
        assert completed and completed[0] is r
        assert r.state is RequestState.COMPLETED
        # with reference allocation the service time is ~base_service_ms
        assert r.completed_ms == pytest.approx(LC.base_service_ms, abs=30.0)

    def test_resources_reclaimed_on_completion(self):
        node = make_node()
        node.enqueue(req(), 0.0)
        t = 0.0
        for _ in range(200):
            node.step(t, 25.0)
            t += 25.0
        assert node.allocated.is_zero()
        assert node.completed_count == 1

    def test_abandonment_of_stale_lc(self):
        node = make_node(cpu=0.1, mem=1.0)  # nothing can ever run
        r = req(LC)
        node.enqueue(r, 0.0)
        _, _, abandoned = node.step(LC.qos_target_ms * 10, 25.0)
        assert abandoned == [r]
        assert r.state is RequestState.ABANDONED

    def test_be_never_abandoned(self):
        node = make_node(cpu=0.1, mem=1.0)
        r = req(BE)
        node.enqueue(r, 0.0)
        _, _, abandoned = node.step(1e9, 25.0)
        assert abandoned == []


class TestAccounting:
    def test_grant_rejects_overcommit(self):
        node = make_node(cpu=1.0)
        with pytest.raises(ValueError):
            node.grant(rv(cpu=2.0))

    def test_utilization_by_kind_splits(self):
        node = make_node(cpu=8.0, mem=16384.0)
        node.enqueue(req(LC), 0.0)
        node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)
        shares = node.utilization_by_kind()
        assert shares[ServiceKind.LC] > 0
        assert shares[ServiceKind.BE] > 0

    def test_adjust_running_allocation_conserves(self):
        node = make_node()
        node.enqueue(req(BE), 0.0)
        node.step(0.0, 25.0)
        rr = next(iter(node.running.values()))
        before_free = node.free().cpu
        smaller = rv(cpu=rr.allocation.cpu / 2, memory=rr.allocation.memory)
        node.adjust_running_allocation(rr, smaller)
        assert node.free().cpu == pytest.approx(
            before_free + smaller.cpu
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=12))
    def test_conservation_invariant(self, kinds):
        """allocated + free == capacity after arbitrary admission patterns."""
        node = make_node(cpu=8.0, mem=16384.0)
        for i, is_lc in enumerate(kinds):
            node.enqueue(req(LC if is_lc else BE, arrival=0.0), 0.0)
        t = 0.0
        for _ in range(30):
            node.step(t, 25.0)
            total = node.allocated + node.free()
            assert total.approx_equal(node.capacity, tol=1e-6)
            t += 25.0
