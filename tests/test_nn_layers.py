"""Layer forward/backward tests including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU, Sequential, Tanh, mlp


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(3, 5, rng)
        out = layer.forward(np.ones((2, 3)))
        assert out.shape == (2, 5)

    def test_forward_linear(self, rng):
        layer = Dense(2, 2, rng)
        layer.W[...] = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.b[...] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[1.5, 1.5]])

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2 * out)
        num = numerical_grad(loss, layer.W)
        assert np.allclose(layer.grads[0], num, atol=1e-4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(2, 4))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        out = layer.forward(x)
        gin = layer.backward(2 * out)
        num = numerical_grad(loss, x)
        assert np.allclose(gin, num, atol=1e-4)

    def test_grad_accumulates_until_zeroed(self, rng):
        layer = Dense(2, 2, rng)
        x = np.ones((1, 2))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        g1 = layer.grads[0].copy()
        layer.forward(x)
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.grads[0], 2 * g1)
        layer.zero_grad()
        assert np.allclose(layer.grads[0], 0.0)

    def test_rejects_unknown_init(self, rng):
        with pytest.raises(ValueError):
            Dense(2, 2, rng, init="bogus")


class TestActivations:
    def test_relu_zeroes_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert np.allclose(out, [[0.0, 2.0]])

    def test_relu_backward_mask(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 2.0]]))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert np.allclose(grad, [[0.0, 5.0]])

    def test_tanh_gradient_matches_numerical(self, rng):
        tanh = Tanh()
        x = rng.normal(size=(3, 4))

        def loss():
            return float(tanh.forward(x).sum())

        tanh.forward(x)
        gin = tanh.backward(np.ones((3, 4)))
        num = numerical_grad(loss, x)
        assert np.allclose(gin, num, atol=1e-5)


class TestSequential:
    def test_mlp_shapes(self, rng):
        net = mlp([6, 256, 128, 32, 1], rng)
        out = net.forward(np.zeros((7, 6)))
        assert out.shape == (7, 1)

    def test_full_network_gradient_check(self, rng):
        net = mlp([3, 8, 4, 1], rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((net.forward(x) ** 2).sum())

        net.zero_grad()
        out = net.forward(x)
        net.backward(2 * out)
        for p, g in zip(net.params, net.grads):
            num = numerical_grad(loss, p)
            assert np.allclose(g, num, atol=1e-4), "parameter gradient mismatch"

    def test_params_and_grads_aligned(self, rng):
        net = mlp([3, 8, 1], rng)
        assert len(net.params) == len(net.grads)
        for p, g in zip(net.params, net.grads):
            assert p.shape == g.shape

    def test_rejects_too_few_sizes(self, rng):
        with pytest.raises(ValueError):
            mlp([3], rng)
