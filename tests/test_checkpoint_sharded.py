"""Checkpoint/resume across shard counts.

The :class:`~repro.sim.sharding.ShardCoordinator` holds no simulation
state — sharding restructures *execution*, never semantics — so a
checkpoint taken under N shards must resume under M ≠ N shards (or
serially, or under a different pool backend) with RunMetrics
bit-identical to the straight sharded run.  The CLI round-trip drives
the same guarantee through ``repro checkpoint --shards N`` /
``repro resume --shards M`` and compares the written metrics JSON
against a straight ``repro run``.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.metrics.fingerprint import (
    format_fingerprint_diff,
    metrics_fingerprint,
)
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

DURATION_MS = 4_000.0
#: mid-run and not period-aligned, so partial collector periods, queued
#: backlogs, and in-flight deliveries are all live at the cut.
CHECKPOINT_MS = 1_875.0
CLUSTERS = 6
SEED = 7


def build(*, shards: int, backend: str = "serial"):
    config = TangoConfig.tango(
        topology=TopologyConfig(
            n_clusters=CLUSTERS, workers_per_cluster=2, seed=SEED
        ),
        runner=RunnerConfig(
            duration_ms=DURATION_MS, shards=shards, parallel_backend=backend
        ),
    )
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=CLUSTERS,
            duration_ms=DURATION_MS,
            seed=SEED,
            lc_peak_rps=15.0,
            be_peak_rps=5.0,
        )
    ).generate()
    return TangoSystem(config), trace


def run_full(*, shards: int, backend: str = "serial") -> dict:
    system, trace = build(shards=shards, backend=backend)
    fp = metrics_fingerprint(system.run(trace))
    system.last_runner.close()
    return fp


def checkpoint_under(shards: int, backend: str = "serial"):
    system, trace = build(shards=shards, backend=backend)
    system.run(trace, until_ms=CHECKPOINT_MS)
    checkpoint = system.last_runner.checkpoint()
    system.last_runner.close()
    return checkpoint


def resume_under(checkpoint, *, shards: int, backend: str = "serial") -> dict:
    system, trace = build(shards=shards, backend=backend)
    fp = metrics_fingerprint(system.resume(trace, checkpoint))
    system.last_runner.close()
    return fp


class TestCrossShardResume:
    """checkpoint(N shards) + resume(M shards) == straight run."""

    @pytest.fixture(scope="class")
    def straight(self):
        return run_full(shards=2)

    @pytest.fixture(scope="class")
    def checkpoint(self):
        return checkpoint_under(shards=2)

    @pytest.mark.parametrize("resume_shards", [0, 2, 4])
    def test_resume_shard_counts(self, straight, checkpoint, resume_shards):
        resumed = resume_under(checkpoint, shards=resume_shards)
        diff = format_fingerprint_diff(
            straight, resumed, labels=("straight", "resumed")
        )
        assert resumed == straight, (
            f"resume under {resume_shards} shards diverged:\n{diff}"
        )

    def test_resume_different_backend(self, straight, checkpoint):
        resumed = resume_under(checkpoint, shards=3, backend="thread")
        assert resumed == straight

    def test_serial_checkpoint_resumes_sharded(self, straight):
        checkpoint = checkpoint_under(shards=0)
        resumed = resume_under(checkpoint, shards=4)
        assert resumed == straight


class TestCLIRoundTrip:
    """`repro checkpoint --shards 2` → `repro resume --shards 4` lands on
    the metrics of a straight `repro run`."""

    COMMON = [
        "--clusters", str(CLUSTERS),
        "--workers", "2",
        "--duration", str(DURATION_MS / 1000.0),
        "--seed", str(SEED),
        "--lc-rps", "15",
        "--be-rps", "5",
        "--parallel-backend", "serial",
    ]

    def cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            check=True,
        )

    def test_round_trip(self, tmp_path):
        straight_json = tmp_path / "straight.json"
        ckpt = tmp_path / "mid.ckpt"
        resumed_json = tmp_path / "resumed.json"

        self.cli(
            "run", "--stack", "tango", *self.COMMON,
            "--shards", "2", "--out", str(straight_json),
        )
        self.cli(
            "checkpoint", "--stack", "tango", *self.COMMON,
            "--shards", "2",
            "--at", str(CHECKPOINT_MS / 1000.0), "--out", str(ckpt),
        )
        self.cli(
            "resume", str(ckpt), "--shards", "4",
            "--parallel-backend", "serial", "--out", str(resumed_json),
        )

        straight = json.loads(straight_json.read_text())
        resumed = json.loads(resumed_json.read_text())
        assert resumed == straight
