"""Crash-displacement accounting: no request may vanish from the books.

Regression for the node-crash path in ``SimulationRunner._apply_failures``:
LC requests running on a node when it crashes are abandoned (counted via
the collector and ``runner.crash_abandoned``), queued LC survivors return
to their origin master, BE requests are requeued — and every LC arrival
must end the run completed, abandoned, or still somewhere in the system.
"""

from __future__ import annotations

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.failures import FailureConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig


def run_with_failures(mtbf_ms=400.0, seed=5):
    duration = 6_000.0
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=3, duration_ms=duration, seed=seed,
            lc_peak_rps=25.0, be_peak_rps=6.0,
        )
    ).generate()
    cfg = TangoConfig.tango(
        topology=TopologyConfig(n_clusters=3, workers_per_cluster=3, seed=seed),
        runner=RunnerConfig(
            duration_ms=duration,
            failures=FailureConfig(
                node_mtbf_ms=mtbf_ms, node_downtime_ms=800.0, seed=seed
            ),
        ),
    )
    system = TangoSystem(cfg)
    metrics = system.run(trace)
    return system, metrics


class TestCrashAccounting:
    def test_crashes_happened_and_were_counted(self):
        system, metrics = run_with_failures()
        runner = system.last_runner
        crashes = [e for e in runner.injector.events if e.kind == "crash"]
        assert crashes, "expected the aggressive MTBF to produce crashes"
        # crash-abandoned LC requests flow into the collector's total
        assert runner.crash_abandoned > 0
        assert metrics.lc_abandoned >= runner.crash_abandoned

    def test_lc_conservation_under_crashes(self):
        """arrived == completed + abandoned + still-in-system for LC."""
        system, metrics = run_with_failures()
        runner = system.last_runner
        in_nodes = 0
        for node in system.system.all_workers():
            lc_q, _ = node.queue_lengths()
            in_nodes += lc_q
            in_nodes += sum(1 for rr in node.running.values() if rr.is_lc)
        pending_master = sum(
            len(cluster.lc_queue) for cluster in system.system.clusters
        )
        in_transit = sum(
            1
            for _, _, payload in runner._deliveries._heap
            if payload[0].is_lc
        )
        accounted = (
            metrics.lc_completed
            + metrics.lc_abandoned
            + in_nodes
            + pending_master
            + in_transit
        )
        assert accounted == metrics.lc_arrived

    def test_requeued_survivors_carry_no_stale_assignment(self):
        """Regression: crash-displaced requests re-entered the master with
        their old target/progress fields intact, so the next dispatch saw
        half-placed state (and the conservation checker double counted)."""
        system, _ = run_with_failures()
        runner = system.last_runner
        crashes = [e for e in runner.injector.events if e.kind == "crash"]
        assert crashes
        for cluster in system.system.clusters:
            for queue in (cluster.lc_queue, cluster.be_queue):
                for request in queue:
                    assert request.target_node is None, request
                    assert request.target_cluster is None, request
                    assert request.started_ms is None, request
                    assert request.dispatched_ms is None, request
                    assert request.node_arrival_ms is None, request

    def test_no_failures_means_no_crash_abandons(self):
        duration = 2_000.0
        trace = SyntheticTrace(
            TraceConfig(
                n_clusters=2, duration_ms=duration, seed=3,
                lc_peak_rps=10.0, be_peak_rps=3.0,
            )
        ).generate()
        cfg = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=3),
            runner=RunnerConfig(duration_ms=duration),
        )
        system = TangoSystem(cfg)
        system.run(trace)
        assert system.last_runner.crash_abandoned == 0


class TestClearAssignment:
    def make_request(self):
        from repro.workloads.spec import default_catalog

        spec = next(s for s in default_catalog() if s.is_lc)
        from repro.sim.request import ServiceRequest

        request = ServiceRequest(
            spec=spec, origin_cluster=1, arrival_ms=100.0
        )
        request.target_cluster = 2
        request.target_node = "edge-2-0"
        request.dispatched_ms = 110.0
        request.node_arrival_ms = 130.0
        request.started_ms = 140.0
        return request

    def test_clears_every_placement_field(self):
        request = self.make_request()
        request.clear_assignment()
        assert request.target_cluster is None
        assert request.target_node is None
        assert request.dispatched_ms is None
        assert request.node_arrival_ms is None
        assert request.started_ms is None

    def test_patience_deadline_not_reset_by_requeue(self):
        """Displacement must not grant an LC request extra patience: the
        deadline anchors to the original arrival, before and after."""
        request = self.make_request()
        before = request.patience_deadline_ms()
        request.clear_assignment()
        assert request.patience_deadline_ms() == before
        assert before == 100.0 + 4.0 * request.spec.qos_target_ms

    def test_crash_purges_qos_windows(self):
        """The detector forgets a crashed node's latency history — a cold
        restart must not inherit pre-crash tails."""
        system, _ = run_with_failures()
        runner = system.last_runner
        detector = runner.storage.detector
        assert detector is not None
        crashed = {
            e.target for e in runner.injector.events if e.kind == "crash"
        }
        assert crashed
        still_down = {
            name for name in crashed if runner.injector.node_is_down(name)
        }
        for name in still_down:
            assert detector._node_services.get(name) is None
            assert all(key[0] != name for key in detector._samples)
