"""Crash-displacement accounting: no request may vanish from the books.

Regression for the node-crash path in ``SimulationRunner._apply_failures``:
LC requests running on a node when it crashes are abandoned (counted via
the collector and ``runner.crash_abandoned``), queued LC survivors return
to their origin master, BE requests are requeued — and every LC arrival
must end the run completed, abandoned, or still somewhere in the system.
"""

from __future__ import annotations

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.failures import FailureConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig


def run_with_failures(mtbf_ms=400.0, seed=5):
    duration = 6_000.0
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=3, duration_ms=duration, seed=seed,
            lc_peak_rps=25.0, be_peak_rps=6.0,
        )
    ).generate()
    cfg = TangoConfig.tango(
        topology=TopologyConfig(n_clusters=3, workers_per_cluster=3, seed=seed),
        runner=RunnerConfig(
            duration_ms=duration,
            failures=FailureConfig(
                node_mtbf_ms=mtbf_ms, node_downtime_ms=800.0, seed=seed
            ),
        ),
    )
    system = TangoSystem(cfg)
    metrics = system.run(trace)
    return system, metrics


class TestCrashAccounting:
    def test_crashes_happened_and_were_counted(self):
        system, metrics = run_with_failures()
        runner = system.last_runner
        crashes = [e for e in runner.injector.events if e.kind == "crash"]
        assert crashes, "expected the aggressive MTBF to produce crashes"
        # crash-abandoned LC requests flow into the collector's total
        assert runner.crash_abandoned > 0
        assert metrics.lc_abandoned >= runner.crash_abandoned

    def test_lc_conservation_under_crashes(self):
        """arrived == completed + abandoned + still-in-system for LC."""
        system, metrics = run_with_failures()
        runner = system.last_runner
        in_nodes = 0
        for node in system.system.all_workers():
            lc_q, _ = node.queue_lengths()
            in_nodes += lc_q
            in_nodes += sum(1 for rr in node.running.values() if rr.is_lc)
        pending_master = sum(
            len(cluster.lc_queue) for cluster in system.system.clusters
        )
        in_transit = sum(
            1
            for _, _, payload in runner._deliveries._heap
            if payload[0].is_lc
        )
        accounted = (
            metrics.lc_completed
            + metrics.lc_abandoned
            + in_nodes
            + pending_master
            + in_transit
        )
        assert accounted == metrics.lc_arrived

    def test_no_failures_means_no_crash_abandons(self):
        duration = 2_000.0
        trace = SyntheticTrace(
            TraceConfig(
                n_clusters=2, duration_ms=duration, seed=3,
                lc_peak_rps=10.0, be_peak_rps=3.0,
            )
        ).generate()
        cfg = TangoConfig.tango(
            topology=TopologyConfig(n_clusters=2, workers_per_cluster=2, seed=3),
            runner=RunnerConfig(duration_ms=duration),
        )
        system = TangoSystem(cfg)
        system.run(trace)
        assert system.last_runner.crash_abandoned == 0
