"""Scheduling-baseline tests: load-greedy, K8s-native RR, scoring."""

import pytest

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.scheduling.baselines import (
    K8sNativeScheduler,
    LoadGreedyScheduler,
    ScoringScheduler,
)
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

CATALOG = default_catalog()
LC = next(s for s in CATALOG if s.kind is ServiceKind.LC)


def node(name, cluster, cpu_ava, mem_ava=16384.0, queue=0):
    return NodeSnapshot(
        name=name,
        cluster_id=cluster,
        cpu_total=16.0,
        cpu_available=cpu_ava,
        mem_total=32768.0,
        mem_available=mem_ava,
        lc_queue=queue,
        be_queue=0,
        running=0,
        min_slack=1.0,
    )


def snapshot(nodes, n_clusters=2):
    delays = [
        [1.0 if a == b else 30.0 for b in range(n_clusters)]
        for a in range(n_clusters)
    ]
    return SystemSnapshot(
        time_ms=0.0, nodes=nodes, delay_ms=delays, central_cluster_id=0
    )


def reqs(n):
    return [ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0) for _ in range(n)]


class TestLoadGreedy:
    def test_picks_least_loaded(self):
        sched = LoadGreedyScheduler()
        nodes = [node("busy", 0, 2.0), node("idle", 0, 14.0)]
        out = sched.dispatch(0, reqs(1), snapshot(nodes), [0], 0.0)
        assert out[0].node_name == "idle"

    def test_local_queue_mitigation_spreads_bursts(self):
        sched = LoadGreedyScheduler()
        nodes = [node("a", 0, 14.0), node("b", 0, 13.9)]
        out = sched.dispatch(0, reqs(20), snapshot(nodes), [0], 0.0)
        names = {a.node_name for a in out}
        assert names == {"a", "b"}  # backlog term spreads within the round

    def test_no_nodes_returns_empty(self):
        sched = LoadGreedyScheduler()
        assert sched.dispatch(0, reqs(3), snapshot([]), [0], 0.0) == []

    def test_be_role_uses_all_nodes(self):
        sched = LoadGreedyScheduler()
        nodes = [node("a", 0, 2.0), node("b", 1, 14.0)]
        out = sched.dispatch_be(reqs(1), snapshot(nodes), 0.0)
        assert out[0].node_name == "b"


class TestK8sNative:
    def test_round_robin_cycles(self):
        sched = K8sNativeScheduler()
        nodes = [node("a", 0, 8.0), node("b", 0, 8.0), node("c", 0, 8.0)]
        out = sched.dispatch(0, reqs(6), snapshot(nodes), [0], 0.0)
        assert [a.node_name for a in out] == ["a", "b", "c", "a", "b", "c"]

    def test_blind_to_load(self):
        sched = K8sNativeScheduler()
        nodes = [node("full", 0, 0.0), node("idle", 0, 16.0)]
        out = sched.dispatch(0, reqs(2), snapshot(nodes), [0], 0.0)
        # RR hits the full node anyway — the §2.1 criticism
        assert out[0].node_name == "full"

    def test_per_service_cursor(self):
        sched = K8sNativeScheduler()
        nodes = [node("a", 0, 8.0), node("b", 0, 8.0)]
        lc2 = [s for s in CATALOG if s.kind is ServiceKind.LC][1]
        r1 = ServiceRequest(spec=LC, origin_cluster=0, arrival_ms=0.0)
        r2 = ServiceRequest(spec=lc2, origin_cluster=0, arrival_ms=0.0)
        out = sched.dispatch(0, [r1, r2], snapshot(nodes), [0], 0.0)
        assert [a.node_name for a in out] == ["a", "a"]


class TestScoring:
    def test_prefers_free_and_close(self):
        sched = ScoringScheduler()
        nodes = [node("near-free", 0, 14.0), node("far-free", 1, 14.0)]
        out = sched.dispatch(0, reqs(1), snapshot(nodes), [0, 1], 0.0)
        assert out[0].node_name == "near-free"

    def test_queue_penalty(self):
        sched = ScoringScheduler()
        nodes = [node("quiet", 0, 10.0, queue=0), node("backed", 0, 10.0, queue=30)]
        out = sched.dispatch(0, reqs(1), snapshot(nodes), [0], 0.0)
        assert out[0].node_name == "quiet"

    def test_working_copy_spreads_sequential_requests(self):
        sched = ScoringScheduler()
        nodes = [node("a", 0, 10.0), node("b", 0, 10.0)]
        out = sched.dispatch(0, reqs(8), snapshot(nodes), [0], 0.0)
        names = {a.node_name for a in out}
        assert names == {"a", "b"}

    def test_be_role(self):
        sched = ScoringScheduler()
        nodes = [node("a", 0, 14.0), node("b", 1, 2.0)]
        out = sched.dispatch_be(reqs(1), snapshot(nodes), 0.0)
        assert len(out) == 1
