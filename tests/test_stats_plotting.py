"""Trace statistics and ASCII plotting tests."""

import numpy as np
import pytest

from repro.metrics.plotting import histogram, sparkline, timeline_chart
from repro.workloads.spec import ServiceKind
from repro.workloads.stats import arrival_series, summarize_trace
from repro.workloads.trace import SyntheticTrace, TraceConfig, TraceRecord


def record(t, cluster=0, service="lc-cloud-render", kind=ServiceKind.LC, cpu=1.0):
    return TraceRecord(
        time_ms=t, cluster_id=cluster, service=service, kind=kind,
        cpu=cpu, memory=100.0,
    )


class TestSummaries:
    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.n_records == 0
        assert summary.cluster_share == {}

    def test_basic_counts(self):
        records = [
            record(0.0), record(100.0),
            record(200.0, kind=ServiceKind.BE, service="be-analytics"),
        ]
        summary = summarize_trace(records)
        assert summary.n_records == 3
        assert summary.lc_fraction == pytest.approx(2 / 3)
        assert summary.service_mix["lc-cloud-render"] == 2

    def test_cluster_share_and_skew(self):
        records = [record(0.0, cluster=0)] * 3 + [record(1.0, cluster=1)]
        summary = summarize_trace(records)
        assert summary.cluster_share[0] == pytest.approx(0.75)
        assert summary.skew_ratio() == pytest.approx(3.0)

    def test_mean_cpu_by_kind(self):
        records = [
            record(0.0, cpu=2.0),
            record(1.0, cpu=4.0),
            record(2.0, kind=ServiceKind.BE, service="be-analytics", cpu=1.0),
        ]
        summary = summarize_trace(records)
        assert summary.mean_cpu["LC"] == pytest.approx(3.0)
        assert summary.mean_cpu["BE"] == pytest.approx(1.0)

    def test_arrival_series_buckets(self):
        records = [record(t) for t in (0.0, 100.0, 1_500.0)]
        series = arrival_series(records, bucket_ms=1_000.0)
        assert list(series) == [2.0, 1.0]

    def test_arrival_series_kind_filter(self):
        records = [
            record(0.0),
            record(10.0, kind=ServiceKind.BE, service="be-analytics"),
        ]
        lc_only = arrival_series(records, kind=ServiceKind.LC)
        assert lc_only.sum() == 1.0

    def test_synthetic_trace_has_paper_marginals(self):
        """The generator's output shows the skew/burstiness the paper needs."""
        trace = SyntheticTrace(
            TraceConfig(n_clusters=4, duration_ms=30_000.0, seed=3)
        ).generate()
        summary = summarize_trace(trace)
        assert 0.5 < summary.lc_fraction < 0.95   # LC-dominant mix
        assert summary.peak_to_mean > 1.3          # bursty arrivals
        assert summary.skew_ratio() > 1.2          # geographic skew
        assert len(summary.service_mix) == 10      # all ten types appear


class TestPlotting:
    def test_sparkline_length_and_range(self):
        s = sparkline([0, 1, 2, 3], width=10)
        assert len(s) == 4
        assert s[0] == " " and s[-1] == "█"

    def test_sparkline_resamples_long_series(self):
        s = sparkline(list(range(1000)), width=50)
        assert len(s) == 50

    def test_sparkline_flat_series(self):
        assert set(sparkline([5, 5, 5])) == {"▄"}

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_timeline_chart_shared_scale(self):
        chart = timeline_chart({"a": [0, 1], "big": [0, 10]}, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        # shared scale: series "a" peaks far below series "big"
        assert "█" in lines[1] and "█" not in lines[0]

    def test_timeline_chart_empty(self):
        assert timeline_chart({}) == ""

    def test_histogram_bins_sum_to_count(self):
        values = list(np.linspace(0, 10, 57))
        out = histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 57

    def test_histogram_degenerate(self):
        assert "no data" in histogram([])
        assert "3" in histogram([1.0, 1.0, 1.0])
