"""Multi-commodity sequential solver tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flow.multicommodity import (
    Commodity,
    MultiCommodityResult,
    SharedLink,
    solve_sequential,
)


def star_links(n_workers, delay=1.0, capacity=10):
    """Master node 0 connected to workers 1..n."""
    return [SharedLink(0, 1 + i, delay, capacity) for i in range(n_workers)]


class TestBasics:
    def test_single_commodity_equals_plain_flow(self):
        result = solve_sequential(
            3,
            [Commodity("a", [4, -2, -2])],
            star_links(2),
        )
        assert result.placed["a"] == 4
        assert result.flows["a"][(0, 1)] == 2
        assert result.flows["a"][(0, 2)] == 2

    def test_shared_capacity_is_respected(self):
        # one link of capacity 3 shared by two commodities wanting 3 each
        links = [SharedLink(0, 1, 1.0, 3)]
        result = solve_sequential(
            2,
            [Commodity("a", [3, -3]), Commodity("b", [3, -3])],
            links,
        )
        total = result.placed["a"] + result.placed["b"]
        assert total == 3  # hard cap from the shared link
        usage = result.link_usage()
        assert usage[(0, 1)] == 3
        assert result.residual[(0, 1)] == 0

    def test_most_constrained_first_ordering(self):
        # big demand goes first and grabs the cheap link
        links = [SharedLink(0, 1, 1.0, 5), SharedLink(0, 2, 50.0, 100)]
        # both commodities can be absorbed at either worker
        small = Commodity("small", [1, -100, -100])
        big = Commodity("big", [5, -100, -100])
        result = solve_sequential(3, [small, big], links)
        assert result.flows["big"].get((0, 1), 0) == 5
        # the small commodity spills to the expensive path
        assert result.flows["small"].get((0, 2), 0) == 1

    def test_rounds_never_hurt(self):
        links = [SharedLink(0, 1, 1.0, 3), SharedLink(0, 2, 2.0, 3)]
        commodities = [
            Commodity("a", [3, -3, 0]),
            Commodity("b", [3, 0, -3]),
        ]
        one = solve_sequential(3, commodities, links, rounds=1)
        three = solve_sequential(3, commodities, links, rounds=3)
        assert sum(three.placed.values()) >= sum(one.placed.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_sequential(0, [], [])
        with pytest.raises(ValueError):
            solve_sequential(2, [Commodity("a", [1])], [], rounds=1)
        with pytest.raises(ValueError):
            solve_sequential(2, [Commodity("a", [1, -1])], [], rounds=0)

    def test_empty_commodities(self):
        result = solve_sequential(2, [], star_links(1))
        assert result.flows == {}
        assert result.total_delay_ms == 0.0


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        demands=st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                         max_size=4),
        capacity=st.integers(min_value=0, max_value=12),
    )
    def test_never_exceeds_shared_capacity(self, demands, capacity):
        links = [SharedLink(0, 1, 1.0, capacity)]
        commodities = [
            Commodity(f"c{i}", [d, -d]) for i, d in enumerate(demands)
        ]
        result = solve_sequential(2, commodities, links)
        assert sum(result.placed.values()) <= capacity
        assert sum(result.placed.values()) == min(capacity, sum(demands))
        assert result.residual[(0, 1)] >= 0

    @settings(max_examples=30, deadline=None)
    @given(
        demands=st.lists(st.integers(min_value=1, max_value=5), min_size=2,
                         max_size=4)
    )
    def test_flow_accounting_consistent(self, demands):
        links = star_links(2, capacity=100)
        commodities = [
            Commodity(f"c{i}", [d, -d, -d]) for i, d in enumerate(demands)
        ]
        result = solve_sequential(3, commodities, links)
        for name, flows in result.flows.items():
            assert sum(flows.values()) == result.placed[name]
