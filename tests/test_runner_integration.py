"""End-to-end integration tests for the simulation runner and TangoSystem."""

import numpy as np
import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.spec import ServiceKind
from repro.workloads.trace import SyntheticTrace, TraceConfig


def small_topology(seed=1):
    return TopologyConfig(n_clusters=3, workers_per_cluster=3, seed=seed)


def small_trace(seed=1, duration=8_000.0, lc=15.0, be=5.0):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=3, duration_ms=duration, seed=seed,
            lc_peak_rps=lc, be_peak_rps=be,
        )
    ).generate()


def run(config_factory, **kwargs):
    cfg = config_factory(
        topology=small_topology(),
        runner=RunnerConfig(duration_ms=8_000.0),
        **kwargs,
    )
    system = TangoSystem(cfg)
    metrics = system.run(small_trace())
    return system, metrics


class TestTangoEndToEnd:
    def test_full_stack_runs_and_completes_requests(self):
        _, metrics = run(TangoConfig.tango)
        assert metrics.lc_completed > 0
        assert metrics.be_completed > 0
        assert 0.0 <= metrics.qos_satisfaction_rate <= 1.0

    def test_periods_sampled_at_800ms(self):
        _, metrics = run(TangoConfig.tango)
        assert len(metrics.utilization) == 10  # 8000 ms / 800 ms

    def test_conservation_after_run(self):
        system, _ = run(TangoConfig.tango)
        for worker in system.system.all_workers():
            total = worker.allocated + worker.free()
            assert total.approx_equal(worker.capacity, tol=1e-6)

    def test_deterministic_given_seeds(self):
        _, m1 = run(TangoConfig.tango)
        _, m2 = run(TangoConfig.tango)
        assert m1.lc_completed == m2.lc_completed
        assert m1.be_completed == m2.be_completed
        assert m1.qos_satisfaction_rate == m2.qos_satisfaction_rate

    def test_reassurance_active_in_tango(self):
        system, _ = run(TangoConfig.tango)
        assert system.reassurance is not None
        total = sum(system.reassurance.adjustments.values())
        assert total > 0  # Algorithm 1 actually ran

    def test_dvpa_operations_charged(self):
        system, metrics = run(TangoConfig.tango)
        manager = system.manager
        ops = sum(d.stats.operations for d in manager._dvpa.values())
        assert ops > 0

    def test_lc_requests_stay_geo_nearby(self):
        system, _ = run(TangoConfig.tango)
        runner = system.last_runner
        # every completed LC request must have been served by an eligible
        # (local or geo-nearby) cluster
        topo = system.system
        for cluster in topo.clusters:
            eligible = set(topo.nearby_clusters(cluster.cluster_id))
            assert cluster.cluster_id in eligible


class TestBaselineStacks:
    def test_k8s_native_runs(self):
        _, metrics = run(TangoConfig.k8s_native)
        assert metrics.lc_completed > 0
        assert metrics.be_evictions == 0  # no preemption without HRM

    def test_ceres_runs(self):
        _, metrics = run(TangoConfig.ceres)
        assert metrics.lc_completed > 0
        assert metrics.be_evictions == 0

    def test_dsaco_runs(self):
        _, metrics = run(TangoConfig.dsaco)
        assert metrics.lc_completed > 0

    def test_reassurance_disabled_variant(self):
        cfg = TangoConfig.tango(
            topology=small_topology(),
            runner=RunnerConfig(duration_ms=8_000.0),
            reassurance_enabled=False,
        )
        system = TangoSystem(cfg)
        metrics = system.run(small_trace())
        assert system.reassurance is None
        assert metrics.lc_completed > 0

    def test_arbitrary_pairing(self):
        cfg = TangoConfig(
            manager="hrm",
            lc_policy="scoring",
            be_policy="load-greedy",
            topology=small_topology(),
            runner=RunnerConfig(duration_ms=6_000.0),
        )
        metrics = TangoSystem(cfg).run(small_trace(duration=6_000.0))
        assert metrics.lc_completed > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            TangoConfig(lc_policy="made-up")
        with pytest.raises(ValueError):
            TangoConfig(be_policy="made-up")
        with pytest.raises(ValueError):
            TangoConfig(manager="made-up")


class TestRunnerBehaviours:
    def test_be_forwarded_to_central(self):
        system, _ = run(TangoConfig.tango)
        runner = system.last_runner
        # central dispatching implies BE requests carry network delay ≥ LAN
        assert runner.system.central_cluster_id in range(3)

    def test_evicted_be_rescheduled_not_lost(self):
        system, metrics = run(TangoConfig.tango)
        runner = system.last_runner
        # arrived = completed + still-in-system + dropped (bounded reschedules)
        assert metrics.be_evictions >= 0
        assert runner.dropped_be <= metrics.be_evictions

    def test_accounting_identity_lc(self):
        system, metrics = run(TangoConfig.tango)
        in_flight = metrics.lc_arrived - metrics.lc_completed - metrics.lc_abandoned
        assert in_flight >= 0  # nothing double-counted
