"""A2C agent tests: action validity, learning signal, masking."""

import numpy as np
import pytest

from repro.nn.a2c import A2CAgent, A2CConfig, Transition
from repro.nn.gnn import IdentityEncoder, adjacency_from_edges


def tiny_agent(rng, **cfg_kwargs):
    cfg = A2CConfig(
        hidden_actor=(16, 8),
        hidden_critic=(16, 8),
        encoder_hidden=(8,),
        train_interval=cfg_kwargs.pop("train_interval", 8),
        **cfg_kwargs,
    )
    return A2CAgent(4, rng, config=cfg)


def ring(n):
    return adjacency_from_edges(n, [(i, (i + 1) % n) for i in range(n)])


class TestActing:
    def test_action_in_range(self, rng):
        agent = tiny_agent(rng)
        feats = rng.normal(size=(5, 4))
        for _ in range(10):
            a = agent.act(feats, ring(5))
            assert 0 <= a < 5

    def test_mask_respected(self, rng):
        agent = tiny_agent(rng)
        feats = rng.normal(size=(5, 4))
        mask = np.array([0, 0, 1, 0, 0], dtype=bool)
        for _ in range(10):
            assert agent.act(feats, ring(5), mask) == 2

    def test_probs_sum_to_one(self, rng):
        agent = tiny_agent(rng)
        p = agent.action_probs(rng.normal(size=(6, 4)), ring(6))
        assert p.sum() == pytest.approx(1.0)

    def test_variable_topology_size(self, rng):
        agent = tiny_agent(rng)
        # the per-node scoring head must handle any N without retraining
        for n in (3, 7, 12):
            a = agent.act(rng.normal(size=(n, 4)), ring(n))
            assert 0 <= a < n

    def test_greedy_picks_argmax(self, rng):
        agent = tiny_agent(rng)
        feats = rng.normal(size=(5, 4))
        # greedy choice is deterministic given the same sampled encoder pass
        probs = agent.action_probs(feats, ring(5))
        assert agent.value(feats, ring(5)) == pytest.approx(
            agent.value(feats, ring(5)), rel=1.0
        )  # smoke: value() runs
        assert isinstance(int(np.argmax(probs)), int)


class TestLearning:
    def test_record_triggers_training_at_interval(self, rng):
        agent = tiny_agent(rng, train_interval=4)
        feats = rng.normal(size=(3, 4))
        trained = []
        for i in range(8):
            trained.append(
                agent.record(Transition(feats, ring(3), None, i % 3, 1.0))
            )
        assert trained == [False, False, False, True] * 2
        assert agent.train_steps == 2

    def test_discounted_returns(self, rng):
        agent = tiny_agent(rng, gamma=0.5)
        returns = agent._discounted_returns([1.0, 1.0, 1.0])
        assert returns[2] == pytest.approx(1.0)
        assert returns[1] == pytest.approx(1.5)
        assert returns[0] == pytest.approx(1.75)

    def test_policy_learns_rewarded_action(self, rng):
        """Rewarding node 1 consistently must raise its probability.

        Nodes need *distinct embeddings*: the weight-shared scoring head maps
        identical embeddings to identical logits by construction, and mean
        aggregation over a complete 3-ring collapses one-hot features to the
        same vector — so this test uses the IdentityEncoder.
        """
        cfg = A2CConfig(
            hidden_actor=(16, 8),
            hidden_critic=(16, 8),
            train_interval=16,
            entropy_coef=0.0,
            lr=0.05,
        )
        agent = A2CAgent(
            4, rng, encoder=IdentityEncoder(4, [8], rng), config=cfg
        )
        feats = np.eye(3, 4)
        adj = ring(3)
        p_before = agent.action_probs(feats, adj)[1]
        for _ in range(200):
            a = agent.act(feats, adj)
            reward = 1.0 if a == 1 else 0.0
            agent.record(Transition(feats, adj, None, a, reward))
        p_after = agent.action_probs(feats, adj)[1]
        assert p_after > max(p_before, 0.5)

    def test_training_updates_parameters(self, rng):
        agent = tiny_agent(rng, train_interval=2)
        feats = rng.normal(size=(3, 4))
        before = [p.copy() for p in agent.optimizer.params]
        agent.record(Transition(feats, ring(3), None, 0, 1.0))
        agent.record(Transition(feats, ring(3), None, 1, 0.0))
        changed = any(
            not np.allclose(b, p)
            for b, p in zip(before, agent.optimizer.params)
        )
        assert changed

    def test_empty_batch_noop(self, rng):
        agent = tiny_agent(rng)
        assert agent.train_on([]) == 0.0

    def test_masked_actions_stay_masked_after_training(self, rng):
        agent = tiny_agent(rng, train_interval=4)
        feats = rng.normal(size=(4, 4))
        mask = np.array([1, 1, 0, 1], dtype=bool)
        for _ in range(8):
            a = agent.act(feats, ring(4), mask)
            agent.record(Transition(feats, ring(4), mask, a, 0.5))
        p = agent.action_probs(feats, ring(4), mask)
        assert p[2] == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        agent = tiny_agent(rng)
        feats = rng.normal(size=(4, 4))
        probs_before = agent.action_probs(feats, ring(4))
        path = agent.save(tmp_path / "ckpt") or (tmp_path / "ckpt.npz")
        clone = tiny_agent(np.random.default_rng(999))
        clone.load(tmp_path / "ckpt")
        # identical parameters → identical policy (IdentityEncoder-free
        # GraphSAGE resamples, so compare on a deterministic sub-path:
        # the actor applied to the same embeddings)
        for p1, p2 in zip(agent.optimizer.params, clone.optimizer.params):
            assert np.allclose(p1, p2)

    def test_load_shape_mismatch_rejected(self, rng, tmp_path):
        from repro.nn.persistence import CheckpointError

        agent = tiny_agent(rng)
        agent.save(tmp_path / "ckpt")
        other = A2CAgent(4, rng)  # default (larger) architecture
        with pytest.raises(CheckpointError):
            other.load(tmp_path / "ckpt")
