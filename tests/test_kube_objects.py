"""Pod/QoS-class object model tests (kubelet classification semantics)."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.kube.objects import (
    ContainerSpec,
    NodeInfo,
    Pod,
    PodSpec,
    QoSClass,
    ServiceObject,
    qos_class_of,
)

rv = ResourceVector.of


def container(req_cpu=0.0, req_mem=0.0, lim_cpu=0.0, lim_mem=0.0, name="c0"):
    return ContainerSpec(
        name=name,
        requests=rv(cpu=req_cpu, memory=req_mem),
        limits=rv(cpu=lim_cpu, memory=lim_mem),
    )


class TestQoSClassification:
    def test_guaranteed_when_requests_equal_limits(self):
        spec = PodSpec(containers=[container(1, 512, 1, 512)])
        assert qos_class_of(spec) is QoSClass.GUARANTEED

    def test_best_effort_when_nothing_set(self):
        spec = PodSpec(containers=[container()])
        assert qos_class_of(spec) is QoSClass.BEST_EFFORT

    def test_burstable_when_limits_exceed_requests(self):
        spec = PodSpec(containers=[container(1, 512, 2, 1024)])
        assert qos_class_of(spec) is QoSClass.BURSTABLE

    def test_burstable_when_only_one_container_is_guaranteed(self):
        spec = PodSpec(
            containers=[container(1, 512, 1, 512), container(0.5, 0, 1, 256, "c1")]
        )
        assert qos_class_of(spec) is QoSClass.BURSTABLE

    def test_empty_pod_is_best_effort(self):
        assert qos_class_of(PodSpec()) is QoSClass.BEST_EFFORT

    def test_limits_default_to_requests(self):
        c = ContainerSpec(name="c0", requests=rv(cpu=1, memory=256))
        assert c.effective_limits().approx_equal(rv(cpu=1, memory=256))
        # and such a pod classifies Guaranteed, as in K8s
        assert qos_class_of(PodSpec(containers=[c])) is QoSClass.GUARANTEED


class TestPodSpec:
    def test_total_requests_sums_containers(self):
        spec = PodSpec(
            containers=[container(1, 512, 1, 512), container(0.5, 256, 1, 512, "c1")]
        )
        total = spec.total_requests()
        assert total.cpu == pytest.approx(1.5)
        assert total.memory == pytest.approx(768)

    def test_pod_uids_unique(self):
        a = Pod(name="a", spec=PodSpec())
        b = Pod(name="b", spec=PodSpec())
        assert a.uid != b.uid

    def test_pod_key(self):
        p = Pod(name="web", spec=PodSpec(), namespace="prod")
        assert p.key() == "prod/web"


class TestNodeAndService:
    def test_allocatable_reserves_system_slice(self):
        node = NodeInfo(name="n0", capacity=rv(cpu=4, memory=8192))
        alloc = node.allocatable(system_reserved=0.05)
        assert alloc.cpu == pytest.approx(3.8)

    def test_service_selector_matching(self):
        svc = ServiceObject(name="web", selector={"app": "web"})
        match = Pod(name="p1", spec=PodSpec(), labels={"app": "web", "v": "2"})
        other = Pod(name="p2", spec=PodSpec(), labels={"app": "db"})
        assert svc.matches(match)
        assert not svc.matches(other)

    def test_empty_selector_matches_everything(self):
        svc = ServiceObject(name="any")
        assert svc.matches(Pod(name="p", spec=PodSpec()))
