"""Serial ↔ sharded equivalence: the tentpole guarantee of the sharding
subsystem.

For any configuration, running the tick pipeline with clusters
partitioned into N shards (any backend) produces RunMetrics
**bit-identical** to the serial run: same counters, same per-period
series, same invariant counts.  The matrix below crosses seeds, stacks,
shard counts {1, 2, 4}, observability, failure injection, and strict
invariant checking; most cases use the ``serial`` backend (the sharded
code path in-process — merge semantics are identical by construction,
so it pins them cheaply), with dedicated thread- and process-pool cases
on top.
"""

from __future__ import annotations

import pytest

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.metrics.fingerprint import (
    format_fingerprint_diff,
    metrics_fingerprint,
)
from repro.scheduling.dss_lc import DSSLCScheduler
from repro.sim.failures import FailureConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

DURATION_MS = 3_000.0
CLUSTERS = 6

STACKS = {
    "tango": TangoConfig.tango,
    "k8s-native": TangoConfig.k8s_native,
    "dsaco": TangoConfig.dsaco,
    "ceres": TangoConfig.ceres,
}

FAILURES = FailureConfig(
    node_mtbf_ms=2_000.0,
    node_downtime_ms=800.0,
    partition_mtbf_ms=2_500.0,
    partition_duration_ms=600.0,
    seed=5,
)


def run_once(
    stack: str,
    seed: int,
    *,
    shards: int = 0,
    backend: str = "serial",
    observe: bool = False,
    failures: FailureConfig = None,
    check_invariants: bool = False,
    workers: int = 2,
    lc_rps: float = 15.0,
):
    """One full run; returns (fingerprint, invariant counts, system)."""
    config = STACKS[stack](
        topology=TopologyConfig(
            n_clusters=CLUSTERS, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(
            duration_ms=DURATION_MS,
            observe=observe,
            failures=failures,
            check_invariants=check_invariants,
            invariant_mode="strict",
            shards=shards,
            parallel_backend=backend,
        ),
    )
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=CLUSTERS,
            duration_ms=DURATION_MS,
            seed=seed,
            lc_peak_rps=lc_rps,
            be_peak_rps=5.0,
        )
    ).generate()
    system = TangoSystem(config)
    try:
        metrics = system.run(trace)
    finally:
        runner = getattr(system, "last_runner", None)
        if runner is not None:
            runner.close()
    invariants = (
        metrics.invariant_violations,
        dict(sorted(metrics.invariant_violations_by_law.items())),
    )
    return metrics_fingerprint(metrics), invariants, system


_BASELINES: dict = {}


def baseline(stack, seed, **kwargs):
    """Serial-run fingerprints, memoized across the matrix."""
    key = (stack, seed, repr(sorted(kwargs.items())))
    if key not in _BASELINES:
        fp, inv, _ = run_once(stack, seed, shards=0, **kwargs)
        _BASELINES[key] = (fp, inv)
    return _BASELINES[key]


def assert_equivalent(stack, seed, shards, backend="serial", **kwargs):
    want_fp, want_inv = baseline(stack, seed, **kwargs)
    got_fp, got_inv, system = run_once(
        stack, seed, shards=shards, backend=backend, **kwargs
    )
    diff = format_fingerprint_diff(want_fp, got_fp, labels=("serial", "sharded"))
    assert got_fp == want_fp, (
        f"{stack} seed={seed} shards={shards} backend={backend} "
        f"diverged from serial:\n{diff}"
    )
    assert got_inv == want_inv
    return system


class TestShardCountMatrix:
    """seeds × shards {1, 2, 4} on the full Tango stack."""

    @pytest.mark.parametrize("seed", [1, 7])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_tango(self, seed, shards):
        assert_equivalent("tango", seed, shards)

    @pytest.mark.parametrize("stack", ["k8s-native", "dsaco", "ceres"])
    def test_baseline_stacks(self, stack):
        # non-DSS-LC schedulers take the serial-fallback LC path; the
        # refresh/step/reassure sharding must still be equivalent.
        assert_equivalent(stack, 3, shards=2)


class TestBackends:
    """The pools only restructure execution: identical output."""

    def test_thread_pool(self):
        assert_equivalent("tango", 1, shards=2, backend="thread")

    def test_process_pool(self):
        assert_equivalent("tango", 1, shards=2, backend="process")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            run_once("tango", 1, shards=2, backend="greenlet")


class TestObservability:
    """Event re-homing through the BufferingEmitter preserves streams."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_observe(self, shards):
        assert_equivalent("tango", 1, shards, observe=True)


class TestFailureInjection:
    """Crashes and partitions interleave identically with shard merges."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_failures(self, shards):
        assert_equivalent("tango", 4, shards, failures=FAILURES)

    def test_failures_observed(self):
        assert_equivalent(
            "tango", 4, shards=3, failures=FAILURES, observe=True
        )


class TestInvariants:
    """Strict conservation-law checking passes and counts identically."""

    def test_strict_invariants(self):
        system = assert_equivalent("tango", 2, shards=2, check_invariants=True)
        metrics = system.last_runner.collector.metrics
        assert metrics.invariant_violations == 0


class TestDispatchPathsExercised:
    """The matrix is only meaningful if the interesting DSS-LC paths ran."""

    def test_case2_rounds_nonzero(self):
        # saturate capacity so Alg. 2 hits the case-2 (ρ(·)-ordered
        # split) branch — the per-master RNG path sharding must preserve.
        _, _, system = run_once(
            "tango", 1, shards=2, workers=1, lc_rps=60.0
        )
        scheduler = system.lc_scheduler
        assert isinstance(scheduler, DSSLCScheduler)
        assert scheduler.case2_rounds > 0

    def test_shard_stats_exposed(self):
        _, _, system = run_once("tango", 1, shards=2)
        stats = system.last_runner.shard_stats()
        assert stats is not None
        assert stats["n_shards"] == 2
        assert stats["lc"]["ticks"] > 0
        assert stats["lc"]["total_busy_s"] >= stats["lc"]["critical_busy_s"]
