from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Tango: Harmonious Management and Scheduling for "
        "Mixed Services Co-located among Distributed Edge-Clouds (ICPP 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["tango-repro = repro.cli:main"]},
)
