"""Benchmark smoke gate: fail on a >20 % ticks/sec regression.

Runs the standard workload (``repro.perf.bench``), compares against the
checked-in ``BENCH_PR1.json``, and exits non-zero when throughput dropped
more than the tolerance.  On success the JSON is rewritten in place with
the fresh "after" measurement (the recorded "before" baseline is kept).

Also runs the invariant-checker parity gate: one small workload twice,
with and without ``check_invariants`` — the checker must report zero
violations and the two RunMetrics fingerprints must be bit-identical
(the checker observes, it never steers).

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--tolerance 0.2] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.perf.bench import run_bench, write_bench_json  # noqa: E402

BENCH_PATH = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR1.json")
)


def _fingerprint(metrics) -> dict:
    # mirrors tests/test_perf_determinism.py — the seed fingerprint shape
    return {
        "lc_arrived": metrics.lc_arrived,
        "lc_completed": metrics.lc_completed,
        "lc_satisfied": metrics.lc_satisfied,
        "lc_abandoned": metrics.lc_abandoned,
        "be_arrived": metrics.be_arrived,
        "be_completed": metrics.be_completed,
        "be_evictions": metrics.be_evictions,
        "lc_latency_sum": round(sum(metrics.lc_latencies_ms), 6),
        "utilization": [round(u, 12) for u in metrics.utilization],
        "qos_rate_per_period": [
            round(r, 12) for r in metrics.qos_rate_per_period
        ],
        "per_service": {
            k: list(v) for k, v in sorted(metrics.per_service.items())
        },
    }


def invariant_gate() -> int:
    """Checker on vs off: zero violations, bit-identical fingerprints."""
    from repro.cluster.topology import TopologyConfig
    from repro.core.config import TangoConfig
    from repro.core.tango import TangoSystem
    from repro.sim.runner import RunnerConfig
    from repro.workloads.trace import SyntheticTrace, TraceConfig

    duration = 6_000.0
    trace = SyntheticTrace(
        TraceConfig(n_clusters=3, duration_ms=duration, seed=1)
    ).generate()

    def run(check_invariants: bool):
        config = TangoConfig.tango(
            topology=TopologyConfig(
                n_clusters=3, workers_per_cluster=3, seed=1
            ),
            runner=RunnerConfig(
                duration_ms=duration, check_invariants=check_invariants
            ),
        )
        return TangoSystem(config).run(trace)

    off = run(False)
    on = run(True)
    status = 0
    if on.invariant_violations:
        print(
            f"FAIL: invariant gate found {on.invariant_violations} "
            f"violation(s): {on.invariant_violations_by_law}",
            file=sys.stderr,
        )
        status = 1
    if _fingerprint(on) != _fingerprint(off):
        print(
            "FAIL: invariant checker changed the run fingerprint — the "
            "checker must observe, never steer",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(
            "invariant gate: 0 violations, checker-on/off fingerprints "
            "bit-identical"
        )
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="max allowed fractional ticks/sec drop vs the recorded run",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="check only; do not rewrite BENCH_PR1.json",
    )
    args = parser.parse_args()

    recorded = None
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as fh:
            recorded = json.load(fh)

    result = run_bench(profile=True)
    tps = result["ticks_per_sec"]
    print(f"measured: {result['wall_s']:.2f}s wall, {tps:.1f} ticks/sec")

    status = 0
    # the profiled run must break down into the canonical pipeline stages
    # (no injector in the benchmark workload, so "failures" is absent);
    # a missing key means a stage was renamed or silently dropped.
    expected_stages = {
        "arrivals", "refresh", "lc", "be", "deliver", "step",
        "reassure", "metrics",
    }
    stage_keys = set(result.get("stage_ms", {}))
    if not expected_stages.issubset(stage_keys):
        print(
            f"FAIL: profiled stages {sorted(stage_keys)} missing "
            f"{sorted(expected_stages - stage_keys)}",
            file=sys.stderr,
        )
        status = 1
    status |= invariant_gate()
    before = None
    if recorded is not None:
        before = recorded.get("before")
        ref = (recorded.get("after") or {}).get("ticks_per_sec")
        if ref:
            drop = (ref - tps) / ref
            print(f"recorded: {ref:.1f} ticks/sec -> drop {100 * drop:.1f}%")
            if drop > args.tolerance:
                print(
                    f"FAIL: throughput regressed more than "
                    f"{100 * args.tolerance:.0f}%",
                    file=sys.stderr,
                )
                status = 1

    if status == 0 and not args.dry_run:
        write_bench_json(result, BENCH_PATH, before=before)
        print(f"updated {BENCH_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
