"""Benchmark smoke gate: fail on a >20 % ticks/sec regression.

Runs the standard workload (``repro.perf.bench``), compares against the
checked-in ``BENCH_PR1.json``, and exits non-zero when throughput dropped
more than the tolerance.  On success the JSON is rewritten in place with
the fresh "after" measurement (the recorded "before" baseline is kept).

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--tolerance 0.2] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.perf.bench import run_bench, write_bench_json  # noqa: E402

BENCH_PATH = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR1.json")
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="max allowed fractional ticks/sec drop vs the recorded run",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="check only; do not rewrite BENCH_PR1.json",
    )
    args = parser.parse_args()

    recorded = None
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as fh:
            recorded = json.load(fh)

    result = run_bench(profile=True)
    tps = result["ticks_per_sec"]
    print(f"measured: {result['wall_s']:.2f}s wall, {tps:.1f} ticks/sec")

    status = 0
    # the profiled run must break down into the canonical pipeline stages
    # (no injector in the benchmark workload, so "failures" is absent);
    # a missing key means a stage was renamed or silently dropped.
    expected_stages = {
        "arrivals", "refresh", "lc", "be", "deliver", "step",
        "reassure", "metrics",
    }
    stage_keys = set(result.get("stage_ms", {}))
    if not expected_stages.issubset(stage_keys):
        print(
            f"FAIL: profiled stages {sorted(stage_keys)} missing "
            f"{sorted(expected_stages - stage_keys)}",
            file=sys.stderr,
        )
        status = 1
    before = None
    if recorded is not None:
        before = recorded.get("before")
        ref = (recorded.get("after") or {}).get("ticks_per_sec")
        if ref:
            drop = (ref - tps) / ref
            print(f"recorded: {ref:.1f} ticks/sec -> drop {100 * drop:.1f}%")
            if drop > args.tolerance:
                print(
                    f"FAIL: throughput regressed more than "
                    f"{100 * args.tolerance:.0f}%",
                    file=sys.stderr,
                )
                status = 1

    if status == 0 and not args.dry_run:
        write_bench_json(result, BENCH_PATH, before=before)
        print(f"updated {BENCH_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
