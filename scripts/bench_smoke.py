"""Benchmark smoke gate: fail on a >20 % ticks/sec regression.

Runs the standard workload (``repro.perf.bench``), compares against the
checked-in ``BENCH_PR1.json``, and exits non-zero when throughput dropped
more than the tolerance.  On success the JSON is rewritten in place with
the fresh "after" measurement (the recorded "before" baseline is kept).

Also runs two parity gates, each reporting mismatches as a readable
per-field diff table (``repro.metrics.fingerprint``), never a bare
assert:

* invariant gate — one small workload twice, with and without
  ``check_invariants``: zero violations, bit-identical fingerprints
  (the checker observes, it never steers);
* shard gate — the same workload serial vs sharded across 2 shards:
  bit-identical fingerprints, with both wall times recorded into the
  benchmark JSON under ``"sharded"``.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--tolerance 0.2] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.metrics.fingerprint import (  # noqa: E402
    format_fingerprint_diff,
    metrics_fingerprint,
)
from repro.perf.bench import run_bench, write_bench_json  # noqa: E402

BENCH_PATH = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR1.json")
)

GATE_DURATION_MS = 6_000.0


def _gate_run(check_invariants: bool = False, shards: int = 0):
    """One small-workload run for the parity gates."""
    from repro.cluster.topology import TopologyConfig
    from repro.core.config import TangoConfig
    from repro.core.tango import TangoSystem
    from repro.sim.runner import RunnerConfig
    from repro.workloads.trace import SyntheticTrace, TraceConfig

    trace = SyntheticTrace(
        TraceConfig(n_clusters=3, duration_ms=GATE_DURATION_MS, seed=1)
    ).generate()
    config = TangoConfig.tango(
        topology=TopologyConfig(n_clusters=3, workers_per_cluster=3, seed=1),
        runner=RunnerConfig(
            duration_ms=GATE_DURATION_MS,
            check_invariants=check_invariants,
            shards=shards,
            parallel_backend="serial",
        ),
    )
    system = TangoSystem(config)
    start = time.perf_counter()
    metrics = system.run(trace)
    wall_s = time.perf_counter() - start
    system.last_runner.close()
    return metrics, wall_s


def _parity_fail(what: str, want: dict, got: dict, labels) -> None:
    print(f"FAIL: {what}", file=sys.stderr)
    print(format_fingerprint_diff(want, got, labels=labels), file=sys.stderr)


def invariant_gate() -> int:
    """Checker on vs off: zero violations, bit-identical fingerprints."""
    off, _ = _gate_run(check_invariants=False)
    on, _ = _gate_run(check_invariants=True)
    status = 0
    if on.invariant_violations:
        print(
            f"FAIL: invariant gate found {on.invariant_violations} "
            f"violation(s): {on.invariant_violations_by_law}",
            file=sys.stderr,
        )
        status = 1
    fp_off, fp_on = metrics_fingerprint(off), metrics_fingerprint(on)
    if fp_on != fp_off:
        _parity_fail(
            "invariant checker changed the run fingerprint — the checker "
            "must observe, never steer",
            fp_off,
            fp_on,
            labels=("checker-off", "checker-on"),
        )
        status = 1
    if status == 0:
        print(
            "invariant gate: 0 violations, checker-on/off fingerprints "
            "bit-identical"
        )
    return status


def shard_gate() -> "tuple[int, dict]":
    """Serial vs 2-shard run: bit-identical fingerprints, timings kept."""
    serial, serial_wall = _gate_run()
    sharded, sharded_wall = _gate_run(shards=2)
    timings = {
        "shards": 2,
        "backend": "serial",
        "serial_wall_s": round(serial_wall, 3),
        "sharded_wall_s": round(sharded_wall, 3),
    }
    fp_serial = metrics_fingerprint(serial)
    fp_sharded = metrics_fingerprint(sharded)
    if fp_sharded != fp_serial:
        _parity_fail(
            "sharded run diverged from serial — the merge barrier must "
            "be deterministic",
            fp_serial,
            fp_sharded,
            labels=("serial", "sharded"),
        )
        return 1, timings
    print(
        f"shard gate: serial/sharded fingerprints bit-identical "
        f"({timings['serial_wall_s']}s vs {timings['sharded_wall_s']}s wall)"
    )
    return 0, timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="max allowed fractional ticks/sec drop vs the recorded run",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="check only; do not rewrite BENCH_PR1.json",
    )
    args = parser.parse_args()

    recorded = None
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as fh:
            recorded = json.load(fh)

    result = run_bench(profile=True)
    tps = result["ticks_per_sec"]
    print(f"measured: {result['wall_s']:.2f}s wall, {tps:.1f} ticks/sec")

    status = 0
    # the profiled run must break down into the canonical pipeline stages
    # (no injector in the benchmark workload, so "failures" is absent);
    # a missing key means a stage was renamed or silently dropped.
    expected_stages = {
        "arrivals", "refresh", "lc", "be", "deliver", "step",
        "reassure", "metrics",
    }
    stage_keys = set(result.get("stage_ms", {}))
    if not expected_stages.issubset(stage_keys):
        print(
            f"FAIL: profiled stages {sorted(stage_keys)} missing "
            f"{sorted(expected_stages - stage_keys)}",
            file=sys.stderr,
        )
        status = 1
    status |= invariant_gate()
    shard_status, shard_timings = shard_gate()
    status |= shard_status
    result["sharded"] = shard_timings
    before = None
    if recorded is not None:
        before = recorded.get("before")
        ref = (recorded.get("after") or {}).get("ticks_per_sec")
        if ref:
            drop = (ref - tps) / ref
            print(f"recorded: {ref:.1f} ticks/sec -> drop {100 * drop:.1f}%")
            if drop > args.tolerance:
                print(
                    f"FAIL: throughput regressed more than "
                    f"{100 * args.tolerance:.0f}%",
                    file=sys.stderr,
                )
                status = 1

    if status == 0 and not args.dry_run:
        write_bench_json(result, BENCH_PATH, before=before)
        print(f"updated {BENCH_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
