"""Record RunMetrics fingerprints for the determinism pin (tests/data/).

Run from the repo root with ``PYTHONPATH=src python scripts/record_seed_metrics.py``.
The JSON it writes is compared bit-for-bit by
``tests/test_perf_determinism.py`` so hot-path optimisations can prove they
did not change scheduling outcomes.
"""

from __future__ import annotations

import json
import os
import sys

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig


def fingerprint(metrics) -> dict:
    return {
        "lc_arrived": metrics.lc_arrived,
        "lc_completed": metrics.lc_completed,
        "lc_satisfied": metrics.lc_satisfied,
        "lc_abandoned": metrics.lc_abandoned,
        "be_arrived": metrics.be_arrived,
        "be_completed": metrics.be_completed,
        "be_evictions": metrics.be_evictions,
        "lc_latency_sum": round(sum(metrics.lc_latencies_ms), 6),
        "utilization": [round(u, 12) for u in metrics.utilization],
        "qos_rate_per_period": [round(r, 12) for r in metrics.qos_rate_per_period],
        "per_service": {k: list(v) for k, v in sorted(metrics.per_service.items())},
    }


def run_case(factory, *, clusters=3, workers=3, duration=8_000.0, seed=1,
             lc=15.0, be=5.0):
    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=clusters, duration_ms=duration, seed=seed,
            lc_peak_rps=lc, be_peak_rps=be,
        )
    ).generate()
    cfg = factory(
        topology=TopologyConfig(
            n_clusters=clusters, workers_per_cluster=workers, seed=seed
        ),
        runner=RunnerConfig(duration_ms=duration),
    )
    return fingerprint(TangoSystem(cfg).run(trace))


def main() -> int:
    cases = {
        "tango_small": run_case(TangoConfig.tango),
        "k8s_native_small": run_case(TangoConfig.k8s_native),
        "dsaco_small": run_case(TangoConfig.dsaco),
        "tango_mid": run_case(
            TangoConfig.tango, clusters=6, workers=5, duration=6_000.0,
            seed=7, lc=40.0, be=12.0,
        ),
    }
    out = os.path.join(os.path.dirname(__file__), "..", "tests", "data",
                       "seed_metrics.json")
    out = os.path.normpath(out)
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as fh:
        json.dump(cases, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
