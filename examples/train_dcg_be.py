#!/usr/bin/env python
"""Train the DCG-BE scheduler online and watch the learning curve.

Runs the same GraphSAGE+A2C policy through successive trace episodes on a
multi-cluster system (new trace seed per episode, fresh cluster state) and
prints per-episode BE throughput — the quantity Fig. 11(c) tracks — plus a
comparison against the K8s-native local round-robin on the final episode.

Run:  python examples/train_dcg_be.py  [episodes]
"""

import sys

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.scheduling.dcg_be import DCGBEConfig, DCGBEScheduler
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

N_CLUSTERS = 6
DURATION_MS = 10_000.0


def episode_trace(seed: int):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=N_CLUSTERS,
            duration_ms=DURATION_MS,
            lc_peak_rps=12.0,
            be_peak_rps=10.0,
            seed=seed,
        )
    ).generate()


def fresh_system(be_scheduler=None, be_policy="dcg-be"):
    config = TangoConfig.tango(
        lc_policy="k8s-native",
        be_policy=be_policy,
        topology=TopologyConfig(n_clusters=N_CLUSTERS, workers_per_cluster=None,
                                seed=5),
        runner=RunnerConfig(duration_ms=DURATION_MS),
    )
    return TangoSystem(config, be_scheduler=be_scheduler)


def main() -> None:
    episodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scheduler = DCGBEScheduler(DCGBEConfig(seed=5))
    print(f"training DCG-BE for {episodes} episodes of {DURATION_MS/1000:.0f}s\n")
    for episode in range(episodes):
        metrics = fresh_system(scheduler).run(episode_trace(200 + episode))
        print(
            f"episode {episode}: BE throughput {metrics.be_throughput:5d}   "
            f"decisions {scheduler.decisions:6d}   "
            f"A2C updates {scheduler.agent.train_steps:4d}"
        )

    final = fresh_system(scheduler).run(episode_trace(999))
    baseline = fresh_system(be_policy="k8s-native").run(episode_trace(999))
    print(
        f"\nevaluation trace: DCG-BE {final.be_throughput} vs "
        f"K8s-native {baseline.be_throughput} completed BE requests"
    )


if __name__ == "__main__":
    main()
