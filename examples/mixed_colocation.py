#!/usr/bin/env python
"""HRM in action: co-locating LC and BE services on one edge cluster.

Reproduces the Fig. 9 story interactively: a single physical-scale cluster
(1 master + 4 workers) receives the P1 pattern (periodic LC, random BE).
With HRM, BE services soak idle resources and get squeezed/evicted when the
LC wave arrives; without it, fixed partitions waste the trough capacity.

Run:  python examples/mixed_colocation.py
"""

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.metrics.plotting import sparkline
from repro.sim.runner import RunnerConfig
from repro.workloads.patterns import PatternConfig, PatternKind, PatternWorkload


def run_arm(with_hrm: bool):
    records = PatternWorkload(
        PatternConfig(
            pattern=PatternKind.P1,
            duration_ms=20_000.0,
            lc_mean_rps=10.0,
            be_mean_rps=2.5,
            seed=3,
        )
    ).generate(cluster_id=0)
    factory = TangoConfig.tango if with_hrm else TangoConfig.k8s_native
    config = factory(
        lc_policy="k8s-native",
        be_policy="k8s-native",
        topology=TopologyConfig(n_clusters=1, workers_per_cluster=4, seed=3),
        runner=RunnerConfig(duration_ms=20_000.0),
    )
    system = TangoSystem(config)
    metrics = system.run(records)
    return system, metrics


def main() -> None:
    for with_hrm in (True, False):
        label = "with HRM" if with_hrm else "K8s-native"
        system, metrics = run_arm(with_hrm)
        print(f"=== {label} ===")
        print(f"  LC  utilization  {sparkline(metrics.lc_utilization)}")
        print(f"  BE  utilization  {sparkline(metrics.be_utilization)}")
        print(
            f"  overall {metrics.mean_utilization:.3f}   "
            f"QoS {metrics.qos_satisfaction_rate:.3f}   "
            f"BE done {metrics.be_throughput}   "
            f"evictions {metrics.be_evictions}"
        )
        if with_hrm:
            manager = system.manager
            print(
                f"  preemption: {manager.preemption_squeezes} CPU squeezes, "
                f"{manager.preemption_evictions} BE evictions (incompressible)"
            )
            ops = sum(d.stats.operations for d in manager._dvpa.values())
            print(f"  D-VPA scaling operations: {ops}")
        print()


if __name__ == "__main__":
    main()
