#!/usr/bin/env python
"""Calibrate the twin space from pressure tests, as the paper does (§6.1).

Sweeps one LC and one BE service over allocation × background-load grids
(the paper's "different loads and resources"), prints the measured
processing-time tables, fits a :class:`TableLatencyModel`, and verifies the
closure property: simulating on the measured table reproduces the behaviour
it was measured from.

Run:  python examples/pressure_calibration.py
"""

from repro.sim.latency import LatencyModel
from repro.sim.pressure import PressureTester, TableLatencyModel
from repro.workloads.spec import ServiceKind, default_catalog

FRACS = (0.4, 0.6, 0.8, 1.0, 1.2)
UTILS = (0.0, 0.5, 0.8, 0.95)


def print_table(spec, points):
    print(f"\n--- {spec.name} (base {spec.base_service_ms:.0f} ms at "
          f"reference allocation) ---")
    header = "alloc\\util " + "".join(f"{u:>9.2f}" for u in UTILS)
    print(header)
    for frac in FRACS:
        row = [p for p in points if p.allocation_fraction == frac]
        row.sort(key=lambda p: p.background_utilization)
        cells = "".join(f"{p.processing_ms:>9.0f}" for p in row)
        print(f"{frac:>10.1f} {cells}")


def main() -> None:
    catalog = default_catalog()
    lc = next(s for s in catalog if s.kind is ServiceKind.LC)
    be = next(s for s in catalog if s.kind is ServiceKind.BE)

    tester = PressureTester(tick_ms=1.0)
    table_model = TableLatencyModel()

    for spec in (lc, be):
        points = tester.sweep(spec, FRACS, UTILS)
        print_table(spec, points)
        table_model.fit(spec, points)

    # closure check: the fitted table reproduces the source behaviour
    parametric = LatencyModel()
    print("\nclosure check (table speed vs parametric speed):")
    worst = 0.0
    for frac in (0.5, 0.75, 1.0):
        for util in (0.2, 0.7, 0.9):
            alloc = lc.reference_resources * frac
            want = parametric.speed(lc, alloc, util)
            got = table_model.speed(lc, alloc, util)
            err = abs(got - want) / max(want, 1e-9)
            worst = max(worst, err)
            print(f"  alloc={frac:.2f} util={util:.1f}: "
                  f"table {got:.3f} vs parametric {want:.3f} "
                  f"({err*100:.1f}% error)")
    print(f"\nworst interpolation error: {worst*100:.1f}% "
          "(the paper's twin space relies on exactly this closure)")


if __name__ == "__main__":
    main()
