#!/usr/bin/env python
"""Tango under fire: node crashes and recoveries during a live run.

Enables the failure injector (not part of the paper's evaluation — an
extension for robustness testing) and shows Tango absorbing worker crashes:
displaced BE work is rescheduled through the central dispatcher, crashed
nodes disappear from the state storage until they recover, and LC QoS
degrades gracefully instead of collapsing.

Run:  python examples/failure_resilience.py
"""

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.failures import FailureConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

DURATION_MS = 15_000.0


def run(failures):
    config = TangoConfig.tango(
        topology=TopologyConfig(n_clusters=4, workers_per_cluster=3, seed=9),
        runner=RunnerConfig(duration_ms=DURATION_MS, failures=failures),
    )
    trace = SyntheticTrace(
        TraceConfig(n_clusters=4, duration_ms=DURATION_MS, seed=9,
                    lc_peak_rps=15.0, be_peak_rps=5.0)
    ).generate()
    system = TangoSystem(config)
    metrics = system.run(trace)
    return system, metrics


def main() -> None:
    _, healthy = run(None)
    system, churned = run(
        FailureConfig(node_mtbf_ms=2_000.0, node_downtime_ms=3_000.0, seed=4)
    )
    injector = system.last_runner.injector
    crashes = [e for e in injector.events if e.kind == "crash"]
    recoveries = [e for e in injector.events if e.kind == "recover"]

    print(f"injected {len(crashes)} crashes, {len(recoveries)} recoveries "
          f"over {DURATION_MS/1000:.0f}s on {system.system.total_nodes()} nodes\n")
    for event in injector.events[:8]:
        print(f"  t={event.time_ms/1000:5.1f}s {event.kind:8s} {event.target}")
    if len(injector.events) > 8:
        print(f"  ... {len(injector.events) - 8} more events")

    print("\n                 healthy   under churn")
    print(f"  LC QoS rate    {healthy.qos_satisfaction_rate:7.3f}   "
          f"{churned.qos_satisfaction_rate:7.3f}")
    print(f"  BE throughput  {healthy.be_throughput:7d}   "
          f"{churned.be_throughput:7d}")
    print(f"  BE evictions   {healthy.be_evictions:7d}   "
          f"{churned.be_evictions:7d}")
    print("\nDisplaced BE work re-enters the central queue and completes on "
          "surviving nodes;\ncrashed workers vanish from the schedulers' "
          "snapshots until they recover.")


if __name__ == "__main__":
    main()
