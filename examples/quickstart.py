#!/usr/bin/env python
"""Quickstart: run the full Tango stack on a synthetic edge-cloud system.

Builds a 4-cluster topology, generates a trace of mixed LC/BE requests with
diurnal load, runs Tango (HRM + DSS-LC + DCG-BE), and prints the headline
metrics next to a plain-Kubernetes baseline.

Run:  python examples/quickstart.py
"""

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig


def run_stack(name: str, config: TangoConfig, trace) -> None:
    system = TangoSystem(config)
    metrics = system.run(trace)
    s = metrics.summary()
    print(
        f"{name:12s}  QoS rate {s['qos_satisfaction_rate']:6.3f}   "
        f"BE throughput {s['be_throughput']:6.0f}   "
        f"utilization {s['mean_utilization']:6.3f}   "
        f"LC p95 {s['lc_tail_latency_ms']:6.1f} ms"
    )


def main() -> None:
    topology = TopologyConfig(n_clusters=4, workers_per_cluster=4, seed=7)
    runner = RunnerConfig(duration_ms=15_000.0)
    trace = SyntheticTrace(
        TraceConfig(n_clusters=4, duration_ms=15_000.0, seed=7)
    ).generate()
    print(f"trace: {len(trace)} requests over 15 s across 4 clusters\n")

    run_stack(
        "tango",
        TangoConfig.tango(topology=topology, runner=runner),
        trace,
    )
    run_stack(
        "k8s-native",
        TangoConfig.k8s_native(topology=topology, runner=runner),
        trace,
    )
    print(
        "\nTango co-locates BE work inside the LC headroom (higher utilization"
        "\nand throughput) while HRM keeps the LC tail inside its QoS target."
    )


if __name__ == "__main__":
    main()
