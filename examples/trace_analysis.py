#!/usr/bin/env python
"""Inspect a workload trace before running experiments on it.

Generates the default synthetic trace (the Google-2019 stand-in), prints
the marginals the paper's evaluation depends on — diurnal arrival shape,
LC/BE mix, per-type popularity, geographic skew, demand heterogeneity —
and renders the arrival timeline per kind.

Swap the generator for :class:`repro.workloads.google.GoogleTraceLoader`
to analyse the real 2019 trace the same way.

Run:  python examples/trace_analysis.py
"""

from repro.metrics.plotting import histogram, sparkline, timeline_chart
from repro.workloads.spec import ServiceKind
from repro.workloads.stats import arrival_series, summarize_trace
from repro.workloads.trace import SyntheticTrace, TraceConfig


def main() -> None:
    config = TraceConfig(
        n_clusters=4,
        duration_ms=60_000.0,
        hours_per_second=0.4,  # 24 simulated hours over the minute
        start_hour=0.0,
        seed=13,
    )
    records = SyntheticTrace(config).generate()
    summary = summarize_trace(records)

    print(f"{summary.n_records} requests over {summary.duration_ms/1000:.0f}s "
          f"({summary.mean_rps:.1f} req/s mean, "
          f"peak/mean {summary.peak_to_mean:.2f})\n")

    print("arrivals over the (compressed) day:")
    chart = timeline_chart(
        {
            "LC": arrival_series(records, kind=ServiceKind.LC),
            "BE": arrival_series(records, kind=ServiceKind.BE),
        },
        width=64,
    )
    print(chart)

    print(f"\nLC fraction: {summary.lc_fraction:.2f}   "
          f"cluster skew (max/min share): {summary.skew_ratio():.2f}")
    print("cluster shares:",
          {c: round(s, 3) for c, s in summary.cluster_share.items()})

    print("\nservice mix (requests per type):")
    for service, count in sorted(
        summary.service_mix.items(), key=lambda kv: -kv[1]
    ):
        bar = sparkline([count], width=1)
        print(f"  {service:20s} {count:6d}")

    print("\nper-request CPU demand distribution (cores):")
    print(histogram([r.cpu for r in records], bins=8, width=32))


if __name__ == "__main__":
    main()
