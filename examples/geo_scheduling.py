#!/usr/bin/env python
"""DSS-LC across distributed edge-clouds: geo-nearby offloading.

Builds an 8-cluster system with heterogeneous worker fleets and uneven
geographic load, then compares DSS-LC's flow-based dispatch against the
K8s round-robin default.  Shows where requests actually ran (local vs
spilled to nearby clusters) and the per-decision latency of the min-cost
max-flow solve.

Run:  python examples/geo_scheduling.py
"""

from collections import Counter

from repro import TangoConfig, TangoSystem
from repro.cluster.topology import TopologyConfig
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig


def run(lc_policy: str):
    topology = TopologyConfig(n_clusters=8, workers_per_cluster=3, seed=11,
                              region_km=1000.0)
    config = TangoConfig.tango(
        lc_policy=lc_policy,
        be_policy="k8s-native",
        topology=topology,
        runner=RunnerConfig(duration_ms=12_000.0),
    )
    trace = SyntheticTrace(
        TraceConfig(n_clusters=8, duration_ms=12_000.0, seed=11,
                    lc_peak_rps=30.0, be_peak_rps=6.0)
    ).generate()
    system = TangoSystem(config)
    metrics = system.run(trace)
    return system, metrics


def main() -> None:
    for policy in ("dss-lc", "k8s-native"):
        system, metrics = run(policy)
        print(f"=== LC policy: {policy} ===")
        print(
            f"  QoS rate {metrics.qos_satisfaction_rate:.3f}   "
            f"p95 {metrics.lc_tail_latency_ms() or 0:.0f} ms   "
            f"abandoned {metrics.lc_abandoned}"
        )
        topo = system.system
        print(f"  topology: {topo.total_nodes()} workers in 8 clusters; "
              f"central cluster = {topo.central_cluster_id}")
        neighbourhoods = Counter(
            len(topo.nearby_clusters(c.cluster_id)) for c in topo.clusters
        )
        print(f"  geo-nearby neighbourhood sizes: {dict(neighbourhoods)}")
        if policy == "dss-lc":
            sched = system.lc_scheduler
            print(
                f"  DSS-LC: {len(sched.decision_latencies_ms)} dispatch rounds, "
                f"mean decision {sched.mean_decision_latency_ms():.2f} ms, "
                f"{sched.case2_rounds} overload (case-2) rounds"
            )
        print()


if __name__ == "__main__":
    main()
