#!/usr/bin/env python
"""Tour of the behaviour-level Kubernetes substrate.

Shows the pieces Tango builds on, without any Tango components:

1. an API server with typed objects and watch streams;
2. a kubelet starting pods (cold-start latency included) and building the
   cgroup hierarchy;
3. the default scheduler's filter/score placement;
4. the native VPA's delete-and-rebuild resize vs D-VPA's in-place resize —
   the §4.2 pain point that motivates HRM.

Run:  python examples/kubernetes_substrate.py
"""

from repro.cluster.resources import ResourceVector
from repro.hrm.dvpa import DVPA
from repro.kube import (
    ApiServer,
    ContainerSpec,
    CONTAINER_COLD_START_MS,
    Kubelet,
    KubeScheduler,
    NativeVPA,
    NodeView,
    Pod,
    PodSpec,
)

rv = ResourceVector.of


def main() -> None:
    api = ApiServer()
    events = []
    api.watch(lambda e: events.append(f"{e.type.value} {e.kind}/{e.name}"))

    # two registered worker nodes
    views = [
        NodeView("edge-a", rv(cpu=4, memory=8192), rv()),
        NodeView("edge-b", rv(cpu=8, memory=16384), rv(cpu=6, memory=12000)),
    ]

    pod = Pod(
        name="lc-render-0",
        spec=PodSpec(
            containers=[
                ContainerSpec(
                    "render",
                    requests=rv(cpu=1.0, memory=1024),
                    limits=rv(cpu=1.0, memory=1024),
                )
            ],
            service_name="lc-cloud-render",
        ),
    )

    scheduler = KubeScheduler()
    target = scheduler.select_node(pod, views)
    pod.spec.node_name = target
    api.create("Pod", pod.name, pod)
    print(f"scheduler bound {pod.name} -> {target} (LeastRequested)")

    kubelet = Kubelet(target, api, capacity=rv(cpu=4, memory=8192))
    kubelet.admit(pod, now_ms=0.0)
    ready = kubelet.sync(now_ms=CONTAINER_COLD_START_MS + 1)
    print(f"kubelet started {ready[0].name} after {CONTAINER_COLD_START_MS:.0f} ms "
          f"cold start; QoS class = {pod.qos_class.value}")
    group = kubelet.cgroups.pod_group(pod.qos_class.value, pod.uid)
    print(f"cgroup: {group.path} (cpu limit {group.cpu_limit_cores():.1f} cores)")

    # resize the pod both ways
    native = NativeVPA()
    outcome = native.resize(pod, rv(cpu=2.0, memory=2048))
    print(
        f"\nnative VPA resize: {outcome.latency_ms:.0f} ms, "
        f"interrupted={outcome.interrupted} (delete-and-rebuild)"
    )

    dvpa = DVPA(target, detailed=True)
    dvpa.scale("lc-cloud-render", rv(cpu=1.0, memory=1024))
    latency = dvpa.scale("lc-cloud-render", rv(cpu=2.0, memory=2048))
    print(f"Tango D-VPA resize: {latency:.1f} ms, interrupted=False (in-place)")
    print(f"speedup: {outcome.latency_ms / latency:.0f}x")

    print("\nAPI-server watch stream saw:")
    for line in events:
        print(f"  {line}")


if __name__ == "__main__":
    main()
