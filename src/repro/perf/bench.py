"""The standard benchmark workload behind ``python -m repro bench``.

One fixed configuration — 10 clusters, heterogeneous worker counts (3-20 per
cluster), 10 s of simulated time, seeded trace at 60 LC / 15 BE rps — so the
numbers in ``BENCH_PR1.json`` are comparable run-over-run and PR-over-PR.

``python -m repro bench --shards N`` instead runs :data:`SCALE_WORKLOAD`
(many clusters, LC-heavy — the per-master dispatch dominates, which is the
work sharding parallelizes) twice — serial and sharded — checks the two
RunMetrics fingerprints are bit-identical, and reports both the measured
wall speedup and the critical-path *modeled* speedup derived from
worker-side CPU times (meaningful even on core-starved CI boxes, where
wall time only measures contention; see :func:`run_shard_bench`).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, Optional

__all__ = [
    "STANDARD_WORKLOAD",
    "SCALE_WORKLOAD",
    "run_bench",
    "run_shard_bench",
    "write_bench_json",
]

#: the standard 10-cluster workload (matches the seed-baseline measurement).
STANDARD_WORKLOAD: Dict[str, Any] = {
    "clusters": 10,
    "workers_per_cluster": None,  # heterogeneous 3-20 per cluster
    "duration_ms": 10_000.0,
    "seed": 3,
    "lc_peak_rps": 60.0,
    "be_peak_rps": 15.0,
    "stack": "tango",
}

#: the multi-cluster scale workload for ``bench --shards``: many masters,
#: LC-heavy (BE is centralized by design and does not shard), so the
#: embarrassingly-parallel per-master DSS-LC dominates the tick.
SCALE_WORKLOAD: Dict[str, Any] = {
    "clusters": 32,
    "workers_per_cluster": 3,
    "duration_ms": 5_000.0,
    "seed": 11,
    "lc_peak_rps": 140.0,
    "be_peak_rps": 0.5,
    "stack": "tango",
    # Coarser ticks than the 25 ms default: per-master LC batches grow
    # (MCMF work per solve grows superlinearly with batch and graph size)
    # while per-tick stepping overhead shrinks, so the stage sharding
    # targets the dominant cost.  tick_ms is part of the workload
    # identity — the serial and sharded legs must agree on it.
    "tick_ms": 250.0,
    # Geo-wide LC dispatch: with the locality radius covering the whole
    # region every master's MCMF graph spans all 96 workers, which is
    # exactly the regime where the per-master solves dwarf the
    # centralized remainder of the tick.
    "nearby_radius_km": 2_400.0,
}


def run_bench(
    overrides: Optional[Dict[str, Any]] = None,
    *,
    profile: bool = True,
    shards: int = 0,
    backend: str = "process",
) -> Dict[str, Any]:
    """Run the benchmark workload; returns a result dict (see keys below)."""
    from repro.cluster.topology import TopologyConfig
    from repro.core.config import TangoConfig
    from repro.core.tango import TangoSystem
    from repro.sim.runner import RunnerConfig
    from repro.workloads.trace import SyntheticTrace, TraceConfig

    wl = dict(STANDARD_WORKLOAD)
    if overrides:
        wl.update(overrides)

    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=wl["clusters"],
            duration_ms=wl["duration_ms"],
            seed=wl["seed"],
            lc_peak_rps=wl["lc_peak_rps"],
            be_peak_rps=wl["be_peak_rps"],
        )
    ).generate()

    factories = {
        "tango": TangoConfig.tango,
        "k8s-native": TangoConfig.k8s_native,
        "ceres": TangoConfig.ceres,
        "dsaco": TangoConfig.dsaco,
    }
    config = factories[wl["stack"]](
        topology=TopologyConfig(
            n_clusters=wl["clusters"],
            workers_per_cluster=wl["workers_per_cluster"],
            seed=wl["seed"],
            **(
                {"nearby_radius_km": wl["nearby_radius_km"]}
                if wl.get("nearby_radius_km") is not None
                else {}
            ),
        ),
        runner=RunnerConfig(
            duration_ms=wl["duration_ms"],
            profile=profile,
            shards=shards,
            parallel_backend=backend,
            **(
                {"tick_ms": wl["tick_ms"]}
                if wl.get("tick_ms") is not None
                else {}
            ),
        ),
    )
    system = TangoSystem(config)
    n_workers = system.system.total_nodes()

    t0 = time.perf_counter()
    metrics = system.run(trace)
    wall_s = time.perf_counter() - t0

    runner = system.last_runner
    n_ticks = int(wl["duration_ms"] / config.runner.tick_ms)
    result: Dict[str, Any] = {
        "workload": {**wl, "n_workers": n_workers, "trace_records": len(trace)},
        "ticks": n_ticks,
        "wall_s": round(wall_s, 3),
        "ticks_per_sec": round(n_ticks / wall_s, 2),
        "metrics": {
            "lc_completed": metrics.lc_completed,
            "be_completed": metrics.be_completed,
            "qos_satisfaction_rate": round(metrics.qos_satisfaction_rate, 4),
        },
        "python": platform.python_version(),
    }
    if runner.profiler is not None:
        result["stage_ms"] = {
            k: round(v, 1) for k, v in runner.profiler.stage_ms().items()
        }
    solver_stats = getattr(system.lc_scheduler, "solver_stats", None)
    if callable(solver_stats):
        result["solver"] = solver_stats()
    from repro.metrics.fingerprint import metrics_fingerprint

    result["fingerprint"] = metrics_fingerprint(metrics)
    shard_stats = runner.shard_stats()
    if shard_stats is not None:
        result["shard_stats"] = shard_stats
        runner.close()
    return result


def run_shard_bench(
    n_shards: int,
    *,
    backend: str = "process",
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serial vs sharded on :data:`SCALE_WORKLOAD`; parity + speedups.

    Reports two speedups:

    * ``wall_speedup`` — measured wall-clock ratio.  Only meaningful with
      at least ``n_shards`` free cores; on a 1-core container every
      backend time-slices one CPU and wall can only get *worse*.
    * ``modeled.speedup`` — the critical-path model: per-shard worker CPU
      times (``time.process_time`` inside each worker, immune to
      contention) give the LC stage's parallel critical path
      ``Σ_ticks max_shard(busy)``; the modeled wall replaces the serial
      run's LC stage time with that critical path plus the measured
      payload-build/merge overhead.  This is the speedup the shard plan
      delivers once cores exist, computed from measurements, not guesses.

    Both runs' RunMetrics fingerprints are compared; ``fingerprints_match``
    is the headline parity bit (the equivalence suite asserts it too).
    """
    wl = dict(SCALE_WORKLOAD)
    if overrides:
        wl.update(overrides)
    serial = run_bench(wl, profile=True)
    sharded = run_bench(wl, profile=True, shards=n_shards, backend=backend)

    lc_stats = sharded["shard_stats"]["lc"]
    serial_wall = serial["wall_s"]
    lc_serial_s = serial.get("stage_ms", {}).get("lc", 0.0) / 1000.0
    critical_s = lc_stats["critical_busy_s"]
    overhead_s = lc_stats["overhead_s"]
    modeled_wall = max(
        1e-9, serial_wall - lc_serial_s + critical_s + overhead_s
    )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return {
        "workload": wl,
        "shards": n_shards,
        "backend": backend,
        "cores": cores,
        "fingerprints_match": serial["fingerprint"] == sharded["fingerprint"],
        "wall_speedup": round(serial_wall / sharded["wall_s"], 3),
        "modeled": {
            "note": (
                "critical-path model from worker-side CPU times: "
                "modeled_wall = serial_wall - lc_serial + "
                "max-per-tick shard busy + shard overhead; the parallel "
                "speedup the plan delivers with >= `shards` free cores "
                f"(this box exposes {cores})"
            ),
            "lc_serial_s": round(lc_serial_s, 3),
            "lc_critical_path_s": round(critical_s, 3),
            "lc_total_busy_s": round(lc_stats["total_busy_s"], 3),
            "shard_overhead_s": round(overhead_s, 3),
            "modeled_wall_s": round(modeled_wall, 3),
            "speedup": round(serial_wall / modeled_wall, 3),
        },
        "serial": serial,
        "sharded": sharded,
    }


def write_bench_json(
    result: Dict[str, Any],
    path: str,
    *,
    before: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``{before, after, speedup}`` to ``path`` (BENCH_PR1.json form)."""
    payload: Dict[str, Any] = {"after": result}
    if before is not None:
        payload["before"] = before
        b, a = before.get("ticks_per_sec"), result.get("ticks_per_sec")
        if b and a:
            payload["speedup"] = round(a / b, 2)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
