"""The standard benchmark workload behind ``python -m repro bench``.

One fixed configuration — 10 clusters, heterogeneous worker counts (3-20 per
cluster), 10 s of simulated time, seeded trace at 60 LC / 15 BE rps — so the
numbers in ``BENCH_PR1.json`` are comparable run-over-run and PR-over-PR.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, Optional

__all__ = ["STANDARD_WORKLOAD", "run_bench", "write_bench_json"]

#: the standard 10-cluster workload (matches the seed-baseline measurement).
STANDARD_WORKLOAD: Dict[str, Any] = {
    "clusters": 10,
    "workers_per_cluster": None,  # heterogeneous 3-20 per cluster
    "duration_ms": 10_000.0,
    "seed": 3,
    "lc_peak_rps": 60.0,
    "be_peak_rps": 15.0,
    "stack": "tango",
}


def run_bench(
    overrides: Optional[Dict[str, Any]] = None, *, profile: bool = True
) -> Dict[str, Any]:
    """Run the benchmark workload; returns a result dict (see keys below)."""
    from repro.cluster.topology import TopologyConfig
    from repro.core.config import TangoConfig
    from repro.core.tango import TangoSystem
    from repro.sim.runner import RunnerConfig
    from repro.workloads.trace import SyntheticTrace, TraceConfig

    wl = dict(STANDARD_WORKLOAD)
    if overrides:
        wl.update(overrides)

    trace = SyntheticTrace(
        TraceConfig(
            n_clusters=wl["clusters"],
            duration_ms=wl["duration_ms"],
            seed=wl["seed"],
            lc_peak_rps=wl["lc_peak_rps"],
            be_peak_rps=wl["be_peak_rps"],
        )
    ).generate()

    factories = {
        "tango": TangoConfig.tango,
        "k8s-native": TangoConfig.k8s_native,
        "ceres": TangoConfig.ceres,
        "dsaco": TangoConfig.dsaco,
    }
    config = factories[wl["stack"]](
        topology=TopologyConfig(
            n_clusters=wl["clusters"],
            workers_per_cluster=wl["workers_per_cluster"],
            seed=wl["seed"],
        ),
        runner=RunnerConfig(duration_ms=wl["duration_ms"], profile=profile),
    )
    system = TangoSystem(config)
    n_workers = system.system.total_nodes()

    t0 = time.perf_counter()
    metrics = system.run(trace)
    wall_s = time.perf_counter() - t0

    runner = system.last_runner
    n_ticks = int(wl["duration_ms"] / config.runner.tick_ms)
    result: Dict[str, Any] = {
        "workload": {**wl, "n_workers": n_workers, "trace_records": len(trace)},
        "ticks": n_ticks,
        "wall_s": round(wall_s, 3),
        "ticks_per_sec": round(n_ticks / wall_s, 2),
        "metrics": {
            "lc_completed": metrics.lc_completed,
            "be_completed": metrics.be_completed,
            "qos_satisfaction_rate": round(metrics.qos_satisfaction_rate, 4),
        },
        "python": platform.python_version(),
    }
    if runner.profiler is not None:
        result["stage_ms"] = {
            k: round(v, 1) for k, v in runner.profiler.stage_ms().items()
        }
    solver_stats = getattr(system.lc_scheduler, "solver_stats", None)
    if callable(solver_stats):
        result["solver"] = solver_stats()
    return result


def write_bench_json(
    result: Dict[str, Any],
    path: str,
    *,
    before: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``{before, after, speedup}`` to ``path`` (BENCH_PR1.json form)."""
    payload: Dict[str, Any] = {"after": result}
    if before is not None:
        payload["before"] = before
        b, a = before.get("ticks_per_sec"), result.get("ticks_per_sec")
        if b and a:
            payload["speedup"] = round(a / b, 2)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
