"""Low-overhead per-stage wall-clock accounting for the tick loop.

The profiler is a plain accumulator: the runner brackets each pipeline stage
with :meth:`StageProfiler.start` / :meth:`StageProfiler.stop` pairs, which
cost two ``perf_counter`` calls and two dict operations per stage per tick.
At 25 ms ticks and ~9 stages that is well under 0.1 % of a typical run, so
profiled numbers stay representative (unlike ``cProfile``, whose tracing
inflates the Python-heavy stages 1.5-2x).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = ["StageProfiler"]


class StageProfiler:
    """Accumulates wall-clock time per named pipeline stage."""

    __slots__ = ("totals_s", "counts")

    def __init__(self) -> None:
        self.totals_s: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    @staticmethod
    def start() -> float:
        return time.perf_counter()

    def stop(self, stage: str, t0: float) -> None:
        dt = time.perf_counter() - t0
        self.totals_s[stage] = self.totals_s.get(stage, 0.0) + dt
        self.counts[stage] = self.counts.get(stage, 0) + 1

    def add(self, stage: str, seconds: float) -> None:
        """Fold an externally measured duration into one stage."""
        self.totals_s[stage] = self.totals_s.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def stage_ms(self) -> Dict[str, float]:
        """Total milliseconds per stage."""
        return {k: v * 1000.0 for k, v in self.totals_s.items()}

    def total_s(self) -> float:
        return sum(self.totals_s.values())

    def rows(self) -> List[Tuple[str, float, int, float]]:
        """(stage, total_ms, calls, share) sorted by time, heaviest first."""
        total = self.total_s() or 1.0
        out = []
        for stage, seconds in sorted(
            self.totals_s.items(), key=lambda kv: kv[1], reverse=True
        ):
            out.append(
                (stage, seconds * 1000.0, self.counts[stage], seconds / total)
            )
        return out

    def format_table(self, wall_s: Optional[float] = None) -> str:
        lines = [f"{'stage':<12} {'total ms':>10} {'calls':>8} {'share':>7}"]
        for stage, ms, calls, share in self.rows():
            lines.append(f"{stage:<12} {ms:>10.1f} {calls:>8d} {share:>6.1%}")
        lines.append(
            f"{'(sum)':<12} {self.total_s() * 1000.0:>10.1f}"
        )
        if wall_s is not None:
            lines.append(f"{'(wall)':<12} {wall_s * 1000.0:>10.1f}")
        return "\n".join(lines)
