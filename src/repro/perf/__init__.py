"""Performance instrumentation for the simulation hot path.

The tick loop touches every subsystem (state storage, both schedulers, the
node runtime, HRM), so regressions in any of them show up as wall-clock time.
This package provides the measurement side of the hot-path performance layer:

* :class:`~repro.perf.profiler.StageProfiler` — a low-overhead per-stage
  timer the runner drives when ``RunnerConfig(profile=True)``;
* :func:`~repro.perf.bench.run_bench` — the standard 10-cluster benchmark
  workload whose results are recorded in ``BENCH_PR1.json`` so future
  changes have a perf trajectory to compare against.
"""

from .profiler import StageProfiler
from .bench import run_bench, write_bench_json

__all__ = ["StageProfiler", "run_bench", "write_bench_json"]
