"""Minimal NumPy neural-network layers with manual backprop.

The paper implements DCG-BE with PyTorch 1.11; the networks involved are tiny
(three-layer ReLU MLPs of 256/128/32 units and a two-hop GraphSAGE encoder),
so a hand-rolled NumPy substrate reproduces the training dynamics exactly and
deterministically.  Every layer exposes ``forward(x)`` and ``backward(grad)``,
caches what it needs between the two calls, and accumulates parameter
gradients in ``.grads`` aligned with ``.params`` for the optimizer.

Shapes are ``(batch, features)`` throughout; float64 is used for numerical
reproducibility (these nets are far too small for that to matter for speed).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "Sequential", "mlp"]


class Layer:
    """Base class: parameterless layers inherit the empty param lists."""

    params: List[np.ndarray]
    grads: List[np.ndarray]

    def __init__(self) -> None:
        self.params = []
        self.grads = []

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def zero_grad(self) -> None:
        for g in self.grads:
            g[...] = 0.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with He/Xavier init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        init: str = "he",
    ) -> None:
        super().__init__()
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(1.0 / in_features)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.W = rng.normal(0.0, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.params = [self.W, self.b]
        self.grads = [np.zeros_like(self.W), np.zeros_like(self.b)]
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.grads[0] += self._x.T @ grad
        self.grads[1] += grad.sum(axis=0)
        return grad @ self.W.T


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad * self._mask


class Tanh(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._y is not None
        return grad * (1.0 - self._y**2)


class Sequential(Layer):
    """Chain of layers; flattens params/grads for the optimizer."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        super().__init__()
        self.layers = list(layers)
        for layer in self.layers:
            self.params.extend(layer.params)
            self.grads.extend(layer.grads)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()


def mlp(
    sizes: Sequence[int],
    rng: np.random.Generator,
    *,
    output_init: str = "xavier",
) -> Sequential:
    """Build the paper's ReLU MLP: ``sizes = [in, 256, 128, 32, out]``.

    Hidden layers use He init + ReLU; the output layer is linear with Xavier
    init (logits or value head).
    """
    if len(sizes) < 2:
        raise ValueError("mlp needs at least input and output sizes")
    layers: List[Layer] = []
    for i in range(len(sizes) - 2):
        layers.append(Dense(sizes[i], sizes[i + 1], rng, init="he"))
        layers.append(ReLU())
    layers.append(Dense(sizes[-2], sizes[-1], rng, init=output_init))
    return Sequential(layers)
