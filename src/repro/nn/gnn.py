"""Graph encoders for DCG-BE: GraphSAGE (the paper's choice) and ablations.

The paper encodes the global edge-cloud topology with a two-hop GraphSAGE
network using mean aggregation over ``p`` sampled neighbours (Eq. 9), and
ablates against GCN, GAT, and a plain MLP ("Native-A2C") in Fig. 11(d).

All encoders share one computational form per layer::

    H^{l+1} = relu(A_l @ H^l @ W_l + b_l)

where ``A_l`` is a (row-stochastic or normalised) aggregation matrix built
from the topology.  This makes forward and backward pure matrix algebra:

* **GraphSAGE** — row ``i`` of ``A`` averages over ``{i} ∪ sample_p(N(i))``;
  the neighbour sample is redrawn per forward pass (inductive, per the paper).
* **GCN** — symmetric normalisation ``D^-1/2 (A+I) D^-1/2`` over the full
  neighbourhood (transductive; no sampling).
* **GAT** — attention coefficients ``softmax_j(leaky_relu(a^T [Wh_i || Wh_j]))``
  computed per forward pass.  Gradients flow through the value path only; the
  attention coefficients themselves are treated as constants in backward (a
  straight-through simplification that preserves learning behaviour at this
  scale and keeps the substrate small — documented here as a deliberate
  deviation).
* **IdentityEncoder** — no aggregation; reproduces the "Native-A2C" ablation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .layers import Layer

__all__ = [
    "GraphEncoder",
    "GraphSAGEEncoder",
    "GCNEncoder",
    "GATEncoder",
    "IdentityEncoder",
    "adjacency_from_edges",
]


def adjacency_from_edges(n_nodes: int, edges: Sequence[tuple]) -> List[List[int]]:
    """Undirected adjacency list from ``(u, v)`` pairs (self-loops ignored)."""
    adj: List[List[int]] = [[] for _ in range(n_nodes)]
    seen = set()
    for u, v in edges:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        adj[u].append(v)
        adj[v].append(u)
    return adj


class GraphEncoder(Layer):
    """Base: stack of aggregation+dense layers mapping (N, F) → (N, D).

    Two layer forms are supported, selected by ``separate_self``:

    * ``False`` (GCN/GAT/Identity): ``H' = relu(A @ H @ W + b)`` where the
      aggregation matrix ``A`` already mixes the node itself.
    * ``True`` (GraphSAGE): ``H' = relu(H @ W_self + (A @ H) @ W_neigh + b)``
      — the CONCAT form of Hamilton et al. expressed as two weight blocks,
      which preserves each node's own features through deep aggregation.
      (A pure mean over ``{i} ∪ N(i)`` shrinks the self signal to ~(1/deg)^L
      after L hops, leaving the downstream actor unable to tell nodes of one
      LAN clique apart.)
    """

    separate_self = False

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.rng = rng
        sizes = [in_features, *hidden]
        self.weights: List[np.ndarray] = []
        self.self_weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fin, fout in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fin)
            self.weights.append(rng.normal(0.0, scale, size=(fin, fout)))
            self.biases.append(np.zeros(fout))
            if self.separate_self:
                self.self_weights.append(
                    rng.normal(0.0, scale, size=(fin, fout))
                )
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            self.params.extend([w, b])
            self.grads.extend([np.zeros_like(w), np.zeros_like(b)])
            if self.separate_self:
                ws = self.self_weights[i]
                self.params.append(ws)
                self.grads.append(np.zeros_like(ws))
        self.out_features = sizes[-1]
        # caches for backward
        self._agg_mats: List[np.ndarray] = []
        self._inputs: List[np.ndarray] = []
        self._selves: List[np.ndarray] = []
        self._masks: List[np.ndarray] = []

    def _stride(self) -> int:
        return 3 if self.separate_self else 2

    # -- topology hook -------------------------------------------------- #
    def aggregation_matrix(
        self, adj: List[List[int]], h: np.ndarray, layer: int
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- forward/backward ------------------------------------------------ #
    def encode(self, features: np.ndarray, adj: List[List[int]]) -> np.ndarray:
        """Run all hops; caches intermediates for :meth:`backward`."""
        h = np.asarray(features, dtype=np.float64)
        self._agg_mats, self._inputs, self._selves, self._masks = [], [], [], []
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            a = self.aggregation_matrix(adj, h, layer)
            agg = a @ h
            z = agg @ w + b
            if self.separate_self:
                z = z + h @ self.self_weights[layer]
                self._selves.append(h)
            mask = z > 0.0
            new_h = z * mask
            self._agg_mats.append(a)
            self._inputs.append(agg)
            self._masks.append(mask)
            h = new_h
        return h

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise TypeError("GraphEncoder needs a topology; call encode() instead")

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through all hops; accumulates into ``self.grads``."""
        stride = self._stride()
        for layer in range(len(self.weights) - 1, -1, -1):
            grad = grad * self._masks[layer]
            self.grads[stride * layer] += self._inputs[layer].T @ grad
            self.grads[stride * layer + 1] += grad.sum(axis=0)
            grad_h = self._agg_mats[layer].T @ (grad @ self.weights[layer].T)
            if self.separate_self:
                self.grads[stride * layer + 2] += self._selves[layer].T @ grad
                grad_h = grad_h + grad @ self.self_weights[layer].T
            grad = grad_h
        return grad


class GraphSAGEEncoder(GraphEncoder):
    """GraphSAGE with neighbour sampling (Eq. 9: p samples, L=2 hops).

    Uses the CONCAT layer form (``separate_self``): the aggregation matrix
    means over the *sampled neighbours only*, and the node's own vector takes
    the dedicated self-weight path.
    """

    separate_self = True

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
        *,
        sample_size: int = 3,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.sample_size = sample_size
        #: id(adj) -> sampling plan.  Each plan pins its adjacency list so
        #: ``id()`` reuse cannot alias entries; the topology must not be
        #: mutated in place between encode calls (degree changes are
        #: detected, same-degree rewires are not).
        self._plan_cache: dict = {}
        super().__init__(in_features, hidden, rng)

    def _sampling_plan(self, adj: List[List[int]]) -> dict:
        """Precompute everything about ``adj`` that sampling reuses.

        * ``template`` — the aggregation matrix with every row of degree
          ≤ p already filled (those rows never change between draws);
        * ``sampled`` — the ``(row, neighbours, degree)`` triples that do
          need a fresh sample each pass;
        * ``bounds`` — the exclusive upper bounds of every uniform draw
          `choice(d, size=p, replace=False)` makes, concatenated across
          sampled rows: Floyd's algorithm draws ``integers(0, j+1)`` for
          ``j = d-p .. d-1``, then the output shuffle draws
          ``integers(0, i+1)`` for ``i = p-1 .. 1``.
        """
        key = id(adj)
        plan = self._plan_cache.get(key)
        if plan is not None and plan["adj"] is adj:
            if plan["degrees"] == [len(x) for x in adj]:
                return plan
        n = len(adj)
        p = self.sample_size
        template = np.zeros((n, n))
        rows: List[int] = []
        degrees_sampled: List[int] = []
        neigh_rows: List[List[int]] = []
        bounds: List[int] = []
        max_d = 0
        for i, neigh in enumerate(adj):
            d = len(neigh)
            if d > p:
                rows.append(i)
                degrees_sampled.append(d)
                neigh_rows.append(neigh)
                bounds.extend(range(d - p + 1, d + 1))
                bounds.extend(range(p, 1, -1))
                max_d = max(max_d, d)
            elif d:
                weight = 1.0 / d
                row = template[i]
                for j in neigh:
                    row[j] += weight
            # isolated node: only the self path contributes
        # padded neighbour table so sampled indices gather in one shot
        neigh_pad = np.zeros((len(rows), max_d), dtype=np.int64)
        for r, neigh in enumerate(neigh_rows):
            neigh_pad[r, : len(neigh)] = neigh
        plan = {
            "adj": adj,
            "degrees": [len(x) for x in adj],
            "template": template,
            "rows": np.asarray(rows, dtype=np.int64),
            "bases": np.asarray(degrees_sampled, dtype=np.int64) - p,
            "neigh_pad": neigh_pad,
            "bounds": np.asarray(bounds, dtype=np.int64),
            # with unique neighbour lists a sample never scatters twice into
            # one cell, so plain fancy assignment replaces np.add.at.
            "unique_neigh": all(
                len(set(neigh)) == len(neigh) for neigh in neigh_rows
            ),
        }
        if len(self._plan_cache) >= 64:
            self._plan_cache.clear()
        self._plan_cache[key] = plan
        return plan

    def aggregation_matrix(
        self, adj: List[List[int]], h: np.ndarray, layer: int
    ) -> np.ndarray:
        """Mean over p sampled neighbours, via one batched RNG call.

        Replays ``Generator.choice(d, size=p, replace=False)`` exactly —
        Floyd's sampler followed by a Fisher-Yates output shuffle — against
        a single vectorised ``integers`` draw, so the RNG stream and the
        resulting matrix are bit-identical to the per-row ``choice`` loop
        (asserted across seeds by ``tests/test_gnn.py``).  The shuffle
        draws are consumed but their permutation is ignored: every sampled
        neighbour carries the same 1/p weight, so row sums don't depend on
        sample order.
        """
        plan = self._sampling_plan(adj)
        a = plan["template"].copy()
        bounds = plan["bounds"]
        if bounds.size:
            p = self.sample_size
            rows = plan["rows"]
            bases = plan["bases"]
            # (m, 2p-1) draws per sampled row: p Floyd draws, then p-1
            # output-shuffle draws whose permutation is irrelevant here.
            draws = self.rng.integers(0, bounds).reshape(len(rows), 2 * p - 1)
            chosen = draws[:, :p].copy()
            # Floyd's collision rule, one sweep per sample slot: a draw that
            # hit an earlier slot becomes j = base + k, which can never
            # itself collide (earlier slots are all < base + k).
            for k in range(1, p):
                col = chosen[:, k]
                hit = (chosen[:, :k] == col[:, None]).any(axis=1)
                col[hit] = bases[hit] + k
            cols = np.take_along_axis(plan["neigh_pad"], chosen, axis=1)
            flat = np.repeat(rows * a.shape[1], p) + cols.ravel()
            if plan["unique_neigh"]:
                a.ravel()[flat] = 1.0 / p
            else:
                np.add.at(a.ravel(), flat, 1.0 / p)
        return a


class GCNEncoder(GraphEncoder):
    """Kipf-Welling GCN: ``D^-1/2 (A+I) D^-1/2`` aggregation, no sampling."""

    def aggregation_matrix(
        self, adj: List[List[int]], h: np.ndarray, layer: int
    ) -> np.ndarray:
        n = len(adj)
        a = np.eye(n)
        for i in range(n):
            for j in adj[i]:
                a[i, j] = 1.0
        deg = a.sum(axis=1)
        d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
        return a * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GATEncoder(GraphEncoder):
    """Single-head graph attention; attention weights are stop-gradient."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
        *,
        leaky_slope: float = 0.2,
    ) -> None:
        super().__init__(in_features, hidden, rng)
        self.leaky_slope = leaky_slope
        # one attention vector per layer over the layer's *input* features
        sizes = [in_features, *hidden]
        self.att_vectors: List[np.ndarray] = [
            rng.normal(0.0, 0.1, size=(2 * fin,)) for fin in sizes[:-1]
        ]

    def aggregation_matrix(
        self, adj: List[List[int]], h: np.ndarray, layer: int
    ) -> np.ndarray:
        n = len(adj)
        att = self.att_vectors[layer]
        fin = h.shape[1]
        a_self = h @ att[:fin]
        a_neigh = h @ att[fin:]
        mat = np.full((n, n), -np.inf)
        for i in range(n):
            members = [i, *adj[i]]
            scores = a_self[i] + a_neigh[members]
            scores = np.where(
                scores > 0, scores, self.leaky_slope * scores
            )
            scores -= scores.max()
            e = np.exp(scores)
            mat[i, members] = e / e.sum()
        mat[~np.isfinite(mat)] = 0.0
        return mat


class IdentityEncoder(GraphEncoder):
    """No message passing — reduces the actor to a plain MLP (Native-A2C)."""

    def aggregation_matrix(
        self, adj: List[List[int]], h: np.ndarray, layer: int
    ) -> np.ndarray:
        return np.eye(len(adj))
