"""Pure-NumPy neural substrate: layers, optimizers, GNN encoders, RL."""

from .a2c import A2CAgent, A2CConfig, Transition
from .gnn import (
    GATEncoder,
    GCNEncoder,
    GraphEncoder,
    GraphSAGEEncoder,
    IdentityEncoder,
    adjacency_from_edges,
)
from .layers import Dense, Layer, ReLU, Sequential, Tanh, mlp
from .optim import Adam, SGD, clip_grad_norm
from .persistence import CheckpointError, load_params, save_params
from .policy import (
    categorical_entropy,
    masked_log_softmax,
    masked_softmax,
    sample_categorical,
)
from .sac import SACAgent, SACConfig, SACTransition

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sequential",
    "mlp",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "save_params",
    "load_params",
    "CheckpointError",
    "masked_softmax",
    "masked_log_softmax",
    "sample_categorical",
    "categorical_entropy",
    "GraphEncoder",
    "GraphSAGEEncoder",
    "GCNEncoder",
    "GATEncoder",
    "IdentityEncoder",
    "adjacency_from_edges",
    "A2CAgent",
    "A2CConfig",
    "Transition",
    "SACAgent",
    "SACConfig",
    "SACTransition",
]
