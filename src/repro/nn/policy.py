"""Categorical policy utilities: masked softmax, sampling, entropy.

DCG-BE's *policy context filtering* (§5.3.2) multiplies the raw logits'
probability mass by a validity vector ``c_t ∈ {0,1}^N`` so the actor can never
pick a node whose available resources cannot fit the request.  We implement
the filter in log space (masked softmax) which is the numerically stable
equivalent of the paper's ``p̂(s_t) = p(s_t) * c_t`` renormalisation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "masked_softmax",
    "masked_log_softmax",
    "sample_categorical",
    "categorical_entropy",
]

_NEG_INF = -1e30


def masked_softmax(logits: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Softmax over the last axis with invalid entries forced to probability 0.

    ``mask`` holds 1 for valid actions, 0 for filtered ones.  If every action
    is masked, falls back to uniform over all actions (the caller is expected
    to treat that situation as "requeue the request").
    """
    z = np.asarray(logits, dtype=np.float64)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            return np.full(z.shape, 1.0 / z.shape[-1])
        z = np.where(mask, z, _NEG_INF)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def masked_log_softmax(
    logits: np.ndarray, mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """Log-probabilities consistent with :func:`masked_softmax`."""
    probs = masked_softmax(logits, mask)
    return np.log(np.maximum(probs, 1e-300))


def sample_categorical(
    probs: np.ndarray, rng: np.random.Generator
) -> int:
    """Draw one action index from a probability vector."""
    p = np.asarray(probs, dtype=np.float64)
    p = p / p.sum()
    return int(rng.choice(len(p), p=p))


def categorical_entropy(probs: np.ndarray) -> float:
    """Shannon entropy of a probability vector (nats)."""
    p = np.asarray(probs, dtype=np.float64)
    nz = p > 0
    return float(-(p[nz] * np.log(p[nz])).sum())


def softmax_grad_from_logp_grad(
    probs: np.ndarray, action: int, coeff: float
) -> np.ndarray:
    """Gradient of ``coeff * log p[action]`` w.r.t. the logits.

    For a softmax policy, d log p_a / d z_i = 1{i==a} - p_i.  Masked logits
    receive zero gradient automatically because their probability is 0.
    """
    grad = -probs.copy()
    grad[action] += 1.0
    return coeff * grad


def entropy_grad(probs: np.ndarray) -> np.ndarray:
    """Gradient of the entropy w.r.t. the logits (for entropy bonuses).

    dH/dz_i = -p_i * (log p_i + H).
    """
    logp = np.log(np.maximum(probs, 1e-300))
    h = -(probs * logp).sum()
    return -probs * (logp + h)
