"""Advantage Actor-Critic over graph embeddings — the DRL half of DCG-BE.

Architecture (per §5.3.2 of the paper):

* a graph encoder (GraphSAGE by default) produces one embedding per node;
* the **actor** scores every node with a weight-shared three-layer ReLU MLP
  (256/128/32 hidden units) producing one logit per node, so the action space
  follows the topology size ``N`` with no retraining;
* the **critic** estimates the state value from the mean-pooled embedding
  through an MLP of the same shape;
* invalid nodes are removed by the *policy context filter* (a 0/1 mask over
  logits) before sampling;
* both networks are optimised with Adam at lr 2e-4.

Training is batched: the agent stores transitions and, once
``train_interval`` actions have been collected (the paper's "required number
of samples"), replays them — recomputing forward passes so gradients flow
through the encoder — and applies one update with n-step discounted returns
as the target and ``R − V(s)`` as the advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .gnn import GraphEncoder, GraphSAGEEncoder
from .layers import Sequential, mlp
from .optim import Adam, clip_grad_norm
from .persistence import load_params, save_params
from .policy import (
    categorical_entropy,
    entropy_grad,
    masked_softmax,
    sample_categorical,
    softmax_grad_from_logp_grad,
)

__all__ = ["A2CAgent", "Transition", "A2CConfig"]


@dataclass
class Transition:
    """One step of interaction stored for batched training."""

    features: np.ndarray
    adj: List[List[int]]
    mask: Optional[np.ndarray]
    action: int
    reward: float


@dataclass
class A2CConfig:
    hidden_actor: Sequence[int] = (256, 128, 32)
    hidden_critic: Sequence[int] = (256, 128, 32)
    encoder_hidden: Sequence[int] = (64, 64)
    lr: float = 2e-4
    gamma: float = 0.95
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    train_interval: int = 32
    grad_clip: float = 5.0
    #: standardise discounted returns within each batch; on a non-episodic
    #: decision stream this keeps advantage magnitudes bounded so the
    #: entropy bonus can prevent premature policy collapse.
    normalize_returns: bool = True


class A2CAgent:
    """Actor-critic agent choosing a target node on a resource graph."""

    def __init__(
        self,
        n_node_features: int,
        rng: np.random.Generator,
        *,
        encoder: Optional[GraphEncoder] = None,
        config: Optional[A2CConfig] = None,
    ) -> None:
        self.cfg = config or A2CConfig()
        self.rng = rng
        self.encoder = encoder or GraphSAGEEncoder(
            n_node_features, self.cfg.encoder_hidden, rng
        )
        d = self.encoder.out_features
        self.actor: Sequential = mlp([d, *self.cfg.hidden_actor, 1], rng)
        self.critic: Sequential = mlp([d, *self.cfg.hidden_critic, 1], rng)
        params = [*self.encoder.params, *self.actor.params, *self.critic.params]
        grads = [*self.encoder.grads, *self.actor.grads, *self.critic.grads]
        self.optimizer = Adam(params, grads, lr=self.cfg.lr)
        self._buffer: List[Transition] = []
        self.train_steps = 0
        self.episodes_seen = 0
        self.last_entropy = 0.0

    # ------------------------------------------------------------------ #
    # acting
    # ------------------------------------------------------------------ #
    def action_probs(
        self,
        features: np.ndarray,
        adj: List[List[int]],
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Masked action distribution over nodes (no caching for training)."""
        h = self.encoder.encode(features, adj)
        logits = self.actor.forward(h)[:, 0]
        return masked_softmax(logits, mask)

    def act(
        self,
        features: np.ndarray,
        adj: List[List[int]],
        mask: Optional[np.ndarray] = None,
        *,
        greedy: bool = False,
    ) -> int:
        probs = self.action_probs(features, adj, mask)
        self.last_entropy = categorical_entropy(probs)
        if greedy:
            return int(np.argmax(probs))
        return sample_categorical(probs, self.rng)

    def value(self, features: np.ndarray, adj: List[List[int]]) -> float:
        h = self.encoder.encode(features, adj)
        pooled = h.mean(axis=0, keepdims=True)
        return float(self.critic.forward(pooled)[0, 0])

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #
    def record(self, transition: Transition) -> bool:
        """Store a transition; train when the batch is full.

        Returns True when a training update happened.
        """
        self._buffer.append(transition)
        if len(self._buffer) >= self.cfg.train_interval:
            self.train_on(self._buffer)
            self._buffer = []
            return True
        return False

    def train_on(self, batch: Sequence[Transition]) -> float:
        """One A2C update over a trajectory slice; returns the actor loss."""
        if not batch:
            return 0.0
        returns = self._discounted_returns([t.reward for t in batch])
        if self.cfg.normalize_returns and len(batch) > 1:
            std = float(returns.std())
            returns = (returns - returns.mean()) / (std + 1e-8)
        self._zero_grads()
        actor_loss_total = 0.0
        inv_n = 1.0 / len(batch)
        for transition, ret in zip(batch, returns):
            actor_loss_total += self._accumulate_gradients(transition, ret, inv_n)
        clip_grad_norm(self.optimizer.grads, self.cfg.grad_clip)
        self.optimizer.step()
        self.train_steps += 1
        return actor_loss_total

    def _discounted_returns(self, rewards: Sequence[float]) -> np.ndarray:
        returns = np.zeros(len(rewards))
        acc = 0.0
        for i in range(len(rewards) - 1, -1, -1):
            acc = rewards[i] + self.cfg.gamma * acc
            returns[i] = acc
        return returns

    def _accumulate_gradients(
        self, transition: Transition, ret: float, weight: float
    ) -> float:
        # Recompute forward with caching so backward is well defined.
        h = self.encoder.encode(transition.features, transition.adj)
        n = h.shape[0]
        logits = self.actor.forward(h)[:, 0]
        probs = masked_softmax(logits, transition.mask)
        pooled = h.mean(axis=0, keepdims=True)
        value = float(self.critic.forward(pooled)[0, 0])
        advantage = ret - value

        # Actor: minimise -(logp * advantage) - entropy_coef * H.
        logit_grad = -softmax_grad_from_logp_grad(
            probs, transition.action, advantage
        )
        logit_grad -= self.cfg.entropy_coef * entropy_grad(probs)
        logit_grad *= weight
        grad_h_actor = self.actor.backward(logit_grad[:, None])

        # Critic: minimise value_coef * (ret - V)^2.
        value_grad = np.array([[2.0 * self.cfg.value_coef * (value - ret) * weight]])
        grad_pooled = self.critic.backward(value_grad)
        grad_h_critic = np.repeat(grad_pooled / n, n, axis=0)

        self.encoder.backward(grad_h_actor + grad_h_critic)
        logp = np.log(max(probs[transition.action], 1e-300))
        return float(-logp * advantage * weight)

    def _zero_grads(self) -> None:
        for g in self.optimizer.grads:
            g[...] = 0.0

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Checkpoint encoder + actor + critic parameters to ``path``."""
        save_params(self.optimizer.params, path)

    def load(self, path) -> None:
        """Restore a checkpoint written by :meth:`save` (same shapes)."""
        load_params(self.optimizer.params, path)
