"""Save/load trained agent parameters as ``.npz`` checkpoints.

The learning schedulers (DCG-BE, GNN-SAC, DSACO) train online; checkpoints
let experiments warm-start from a previous session instead of re-training —
the bench suite's warmup runs can be cached, and the examples can ship a
pre-trained policy.

A checkpoint stores every parameter array in registration order plus a
structural fingerprint (shapes), so loading into a mismatched architecture
fails loudly instead of silently corrupting weights.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

__all__ = ["save_params", "load_params", "CheckpointError"]

_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised when a checkpoint does not match the target architecture."""


def save_params(
    params: Sequence[np.ndarray], path: Union[str, Path]
) -> Path:
    """Write the parameter list to ``path`` (.npz appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {f"p{i:04d}": np.asarray(p) for i, p in enumerate(params)}
    arrays["_meta"] = np.array(
        [_VERSION, len(params)], dtype=np.int64
    )
    np.savez(path, **arrays)
    return path


def load_params(
    params: Sequence[np.ndarray], path: Union[str, Path]
) -> None:
    """Load a checkpoint *into* the live parameter arrays (in place).

    The target agent must already be constructed with the same architecture
    and parameter registration order.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as data:
        meta = data.get("_meta")
        if meta is None or int(meta[0]) != _VERSION:
            raise CheckpointError(f"{path}: unsupported checkpoint format")
        count = int(meta[1])
        if count != len(params):
            raise CheckpointError(
                f"{path}: checkpoint has {count} parameter arrays, "
                f"agent has {len(params)}"
            )
        for i, live in enumerate(params):
            stored = data[f"p{i:04d}"]
            if stored.shape != live.shape:
                raise CheckpointError(
                    f"{path}: parameter {i} shape {stored.shape} != "
                    f"agent shape {live.shape}"
                )
            live[...] = stored
