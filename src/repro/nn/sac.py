"""Discrete Soft Actor-Critic over graph embeddings — the GNN-SAC baseline.

Fig. 11(c) compares DCG-BE against *GNN-SAC*, "an improved GNN-based learning
algorithm that builds on the success of SAC".  We implement discrete-action
SAC (Christodoulou, 2019) on top of the same per-node-scoring architecture as
:class:`repro.nn.a2c.A2CAgent`:

* a graph encoder shared by all heads;
* a policy head producing one logit per node (masked softmax);
* two Q heads producing one Q-value per node, with polyak-averaged targets;
* a fixed entropy temperature ``alpha``.

Updates are replay-based: transitions ``(s, a, r, s')`` are stored and
minibatches are sampled uniformly.  The encoder receives gradients from the
policy and both Q heads.  The paper notes GNN-SAC "struggles to calculate
strategy differences" relative to DCG-BE's advantage mechanism — in practice
the off-policy critic lags the quickly shifting cluster state, which is what
our reproduction exhibits as slightly lower long-term throughput.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .gnn import GraphEncoder, GraphSAGEEncoder
from .layers import Sequential, mlp
from .optim import Adam, clip_grad_norm
from .persistence import load_params, save_params
from .policy import masked_softmax, sample_categorical

__all__ = ["SACAgent", "SACConfig", "SACTransition"]


@dataclass
class SACTransition:
    features: np.ndarray
    adj: List[List[int]]
    mask: Optional[np.ndarray]
    action: int
    reward: float
    next_features: Optional[np.ndarray]
    next_adj: Optional[List[List[int]]]
    next_mask: Optional[np.ndarray]


@dataclass
class SACConfig:
    hidden: Sequence[int] = (256, 128, 32)
    encoder_hidden: Sequence[int] = (64, 64)
    lr: float = 2e-4
    gamma: float = 0.95
    alpha: float = 0.2
    tau: float = 0.01
    batch_size: int = 16
    buffer_size: int = 1024
    train_interval: int = 16
    grad_clip: float = 5.0


class _QHead:
    """One Q network: encoder-embedding → per-node Q values."""

    def __init__(self, d: int, hidden: Sequence[int], rng: np.random.Generator):
        self.net: Sequential = mlp([d, *hidden, 1], rng)

    def q_values(self, h: np.ndarray) -> np.ndarray:
        return self.net.forward(h)[:, 0]


class SACAgent:
    """Discrete SAC agent choosing a target node on a resource graph."""

    def __init__(
        self,
        n_node_features: int,
        rng: np.random.Generator,
        *,
        encoder: Optional[GraphEncoder] = None,
        config: Optional[SACConfig] = None,
    ) -> None:
        self.cfg = config or SACConfig()
        self.rng = rng
        self.encoder = encoder or GraphSAGEEncoder(
            n_node_features, self.cfg.encoder_hidden, rng
        )
        d = self.encoder.out_features
        self.policy: Sequential = mlp([d, *self.cfg.hidden, 1], rng)
        self.q1 = _QHead(d, self.cfg.hidden, rng)
        self.q2 = _QHead(d, self.cfg.hidden, rng)
        self.q1_target = copy.deepcopy(self.q1)
        self.q2_target = copy.deepcopy(self.q2)
        params = [
            *self.encoder.params,
            *self.policy.params,
            *self.q1.net.params,
            *self.q2.net.params,
        ]
        grads = [
            *self.encoder.grads,
            *self.policy.grads,
            *self.q1.net.grads,
            *self.q2.net.grads,
        ]
        self.optimizer = Adam(params, grads, lr=self.cfg.lr)
        self._buffer: List[SACTransition] = []
        self._since_train = 0
        self.train_steps = 0

    # ------------------------------------------------------------------ #
    # acting
    # ------------------------------------------------------------------ #
    def action_probs(
        self,
        features: np.ndarray,
        adj: List[List[int]],
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        h = self.encoder.encode(features, adj)
        logits = self.policy.forward(h)[:, 0]
        return masked_softmax(logits, mask)

    def act(
        self,
        features: np.ndarray,
        adj: List[List[int]],
        mask: Optional[np.ndarray] = None,
        *,
        greedy: bool = False,
    ) -> int:
        probs = self.action_probs(features, adj, mask)
        if greedy:
            return int(np.argmax(probs))
        return sample_categorical(probs, self.rng)

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #
    def record(self, transition: SACTransition) -> bool:
        self._buffer.append(transition)
        if len(self._buffer) > self.cfg.buffer_size:
            self._buffer.pop(0)
        self._since_train += 1
        if (
            self._since_train >= self.cfg.train_interval
            and len(self._buffer) >= self.cfg.batch_size
        ):
            self._since_train = 0
            self._train_minibatch()
            return True
        return False

    def _soft_q_target(self, t: SACTransition) -> float:
        """r + γ E_{a'~π}[min Q_target(s', a') − α log π(a'|s')]."""
        if t.next_features is None:
            return t.reward
        h = self.encoder.encode(t.next_features, t.next_adj or [])
        logits = self.policy.forward(h)[:, 0]
        probs = masked_softmax(logits, t.next_mask)
        q1 = self.q1_target.q_values(h)
        q2 = self.q2_target.q_values(h)
        qmin = np.minimum(q1, q2)
        logp = np.log(np.maximum(probs, 1e-300))
        soft_value = float((probs * (qmin - self.cfg.alpha * logp)).sum())
        return t.reward + self.cfg.gamma * soft_value

    def _train_minibatch(self) -> None:
        idx = self.rng.choice(
            len(self._buffer), size=self.cfg.batch_size, replace=False
        )
        batch = [self._buffer[i] for i in idx]
        targets = [self._soft_q_target(t) for t in batch]

        for g in self.optimizer.grads:
            g[...] = 0.0
        inv_n = 1.0 / len(batch)
        for t, y in zip(batch, targets):
            self._accumulate(t, y, inv_n)
        clip_grad_norm(self.optimizer.grads, self.cfg.grad_clip)
        self.optimizer.step()
        self._polyak_update()
        self.train_steps += 1

    def _accumulate(self, t: SACTransition, y: float, weight: float) -> None:
        h = self.encoder.encode(t.features, t.adj)
        n = h.shape[0]
        a = t.action

        grad_h_total = np.zeros_like(h)

        # Q losses: (Q(s,a) - y)^2 for each head.
        for head in (self.q1, self.q2):
            q = head.q_values(h)
            gq = np.zeros((n, 1))
            gq[a, 0] = 2.0 * (q[a] - y) * weight
            grad_h_total += head.net.backward(gq)

        # Policy loss: E_{a~π}[α log π(a|s) − min Q(s,a)] with Q detached.
        logits = self.policy.forward(h)[:, 0]
        probs = masked_softmax(logits, t.mask)
        q1 = self.q1.q_values(h)
        q2 = self.q2.q_values(h)
        qmin = np.minimum(q1, q2)
        logp = np.log(np.maximum(probs, 1e-300))
        # dL/dlogits for L = Σ_i p_i (α logp_i − qmin_i):
        inner = self.cfg.alpha * logp - qmin
        expected = float((probs * inner).sum())
        glogits = probs * (inner + self.cfg.alpha - expected) * weight
        # Recompute the q-head forwards above clobbered the policy cache? No:
        # each Sequential keeps its own cache, so policy.backward is valid.
        grad_h_total += self.policy.backward(glogits[:, None])

        self.encoder.backward(grad_h_total)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Checkpoint all live networks (targets are rebuilt on load)."""
        save_params(self.optimizer.params, path)

    def load(self, path) -> None:
        load_params(self.optimizer.params, path)
        # re-sync the target networks with the restored live Q heads
        for live, target in ((self.q1, self.q1_target), (self.q2, self.q2_target)):
            for p_live, p_tgt in zip(live.net.params, target.net.params):
                p_tgt[...] = p_live

    def _polyak_update(self) -> None:
        tau = self.cfg.tau
        for live, target in ((self.q1, self.q1_target), (self.q2, self.q2_target)):
            for p_live, p_tgt in zip(live.net.params, target.net.params):
                p_tgt *= 1.0 - tau
                p_tgt += tau * p_live
