"""Optimizers for the NumPy neural substrate.

The paper trains DCG-BE with Adam at a fixed learning rate of 2e-4 (§5.3.2);
:class:`Adam` reproduces the standard bias-corrected update.  ``SGD`` is kept
for tests and ablations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Adam", "SGD", "clip_grad_norm"]


class SGD:
    """Plain stochastic gradient descent, optionally with momentum."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self.params = list(params)
        self.grads = list(grads)
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[np.ndarray] = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * g
                p += v
            else:
                p -= self.lr * g


class Adam:
    """Adam with bias correction (Kingma & Ba), matching torch defaults."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        grads: Sequence[np.ndarray],
        lr: float = 2e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self.params = list(params)
        self.grads = list(grads)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self._m: List[np.ndarray] = [np.zeros_like(p) for p in params]
        self._v: List[np.ndarray] = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


def clip_grad_norm(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``."""
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total
