"""DSACO baseline — distributed SAC-based computation offloading (§7.3).

The paper compares Tango against DSACO, "a distributed scheduling framework
for edge computing based on SAC", and notes it "only provides an
edge-oriented scheduling scheme, which cannot effectively manage resource
allocation for mixed workloads".

Our behaviour-level DSACO:

* makes *distributed* decisions: each origin cluster dispatches its own
  queue, choosing a target node among the local + geo-nearby clusters only
  (no global view);
* uses one shared discrete-SAC policy across clusters (weight sharing among
  homogeneous agents, standard for this family);
* schedules **both** LC and BE requests through the same learned policy —
  no LC/BE specialisation and, crucially, no HRM underneath: in the Fig. 13
  comparison it runs on the static K8s-native resource manager, exactly as
  the paper frames it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.nn.gnn import GraphSAGEEncoder
from repro.nn.sac import SACAgent, SACConfig, SACTransition
from repro.scheduling.base import Assignment
from repro.scheduling.dcg_be import N_NODE_FEATURES, build_topology
from repro.sim.request import ServiceRequest

__all__ = ["DSACOConfig", "DSACOScheduler"]


@dataclass
class DSACOConfig:
    encoder_width: int = 64
    hops: int = 2
    sample_size: int = 3
    lr: float = 2e-4
    gamma: float = 0.95
    seed: int = 0
    max_per_round: int = 128


class DSACOScheduler:
    """Distributed SAC offloading for mixed queues (LC role + BE role)."""

    def __init__(self, config: Optional[DSACOConfig] = None, *, greedy: bool = False):
        self.config = config or DSACOConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        encoder = GraphSAGEEncoder(
            N_NODE_FEATURES,
            [cfg.encoder_width] * cfg.hops,
            rng,
            sample_size=cfg.sample_size,
        )
        self.agent = SACAgent(
            N_NODE_FEATURES,
            rng,
            encoder=encoder,
            config=SACConfig(lr=cfg.lr, gamma=cfg.gamma),
        )
        self.greedy = greedy
        self.decisions = 0
        self._prev: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        return {
            "agent": self.agent,
            "decisions": self.decisions,
            "prev": self._prev,
        }

    def restore_state(self, state: dict) -> None:
        self.agent = state["agent"]
        self.decisions = state["decisions"]
        self._prev = state["prev"]

    # ------------------------------------------------------------------ #
    # shared dispatch core
    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        requests: Sequence[ServiceRequest],
        nodes: List[NodeSnapshot],
        snapshot: SystemSnapshot,
    ) -> List[Assignment]:
        if not requests or not nodes:
            return []
        adj = build_topology(nodes, snapshot)
        cpu_ava = np.array([n.cpu_available for n in nodes])
        mem_ava = np.array([n.mem_available for n in nodes])
        backlog = np.array([float(n.lc_queue + n.be_queue) for n in nodes])
        pending_cpu = np.array([n.be_queue_cpu for n in nodes])

        out: List[Assignment] = []
        for request in list(requests)[: self.config.max_per_round]:
            spec = request.spec
            mask = (cpu_ava >= spec.min_resources.cpu) & (
                mem_ava >= spec.min_resources.memory
            )
            if not mask.any():
                mask = None  # queue at the chosen node
            features = self._features(nodes, cpu_ava, mem_ava, backlog, spec)
            action = self.agent.act(features, adj, mask, greedy=self.greedy)
            node = nodes[action]
            out.append(
                Assignment(
                    request=request, node_name=node.name, cluster_id=node.cluster_id
                )
            )
            self.decisions += 1
            cpu_ava[action] -= spec.min_resources.cpu
            mem_ava[action] -= spec.min_resources.memory
            backlog[action] += 1.0

            if not self.greedy:
                # DSACO's reward is load-balance oriented: favour idle nodes.
                load = 1.0 - min(
                    cpu_ava[action] / max(node.cpu_total, 1e-9), 1.0
                )
                reward = float(np.exp(-load))
                if self._prev is not None:
                    pf, pa, pm, pact, prew = self._prev
                    self.agent.record(
                        SACTransition(
                            features=pf,
                            adj=pa,
                            mask=pm,
                            action=pact,
                            reward=prew,
                            next_features=features,
                            next_adj=adj,
                            next_mask=mask,
                        )
                    )
                self._prev = (features, adj, mask, action, reward)
        return out

    @staticmethod
    def _features(nodes, cpu_ava, mem_ava, backlog, spec) -> np.ndarray:
        n = len(nodes)
        feats = np.zeros((n, N_NODE_FEATURES))
        for i, node in enumerate(nodes):
            cpu_total = max(node.cpu_total, 1e-9)
            mem_total = max(node.mem_total, 1e-9)
            feats[i, 0] = cpu_ava[i] / cpu_total
            feats[i, 1] = mem_ava[i] / mem_total
            feats[i, 2] = cpu_total / 16.0
            feats[i, 3] = mem_total / 32768.0
            feats[i, 4] = node.min_slack
            feats[i, 5] = spec.reference_resources.cpu / cpu_total
            feats[i, 6] = spec.reference_resources.memory / mem_total
            feats[i, 7] = min(1.0, backlog[i] / 32.0)  # DSACO keeps counts
        return feats

    # ------------------------------------------------------------------ #
    # protocol adapters
    # ------------------------------------------------------------------ #
    def dispatch(
        self,
        origin_cluster: int,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        eligible_clusters: Sequence[int],
        now_ms: float,
    ) -> List[Assignment]:
        nodes = snapshot.nodes_of(list(eligible_clusters))
        return self._dispatch(requests, nodes, snapshot)

    def dispatch_be(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        # DSACO has no central dispatcher; in the BE role it still decides
        # per origin cluster over that cluster's neighbourhood.
        by_origin: dict = {}
        for r in requests:
            by_origin.setdefault(r.origin_cluster, []).append(r)
        out: List[Assignment] = []
        for origin, reqs in sorted(by_origin.items()):
            nodes = snapshot.nodes  # nearby filter applied by the runner
            out.extend(self._dispatch(reqs, nodes, snapshot))
        return out
