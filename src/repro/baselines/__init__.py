"""End-to-end baseline systems: K8s-native static, CERES, DSACO."""

from .ceres import CeresConfig, CeresManager
from .dsaco import DSACOConfig, DSACOScheduler
from .static import StaticPartitionManager

__all__ = [
    "StaticPartitionManager",
    "CeresManager",
    "CeresConfig",
    "DSACOScheduler",
    "DSACOConfig",
]
