"""CERES baseline — container-based elastic resource management (ICPP'21).

§7.3: "CERES only provides a *local* resource management scheme, which
cannot effectively utilize distributed and heterogeneous edge resources."

Our behaviour-level CERES captures that profile:

* **elastic, per-node**: like HRM it sizes allocations from observed demand
  rather than static partitions — requests are admitted with their minimum
  allocation and running containers are periodically re-balanced toward a
  per-node utilisation set-point (the CERES controller's feedback loop);
* **mixed-workload aware but priority-soft**: LC gets a mild admission
  preference, yet there is no compressible/incompressible split and no
  eviction — under memory pressure LC requests simply wait;
* **no traffic dimension**: CERES is paired with K8s-native round-robin
  dispatch in the Fig. 13 comparison, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.node import AdmitDecision, RunningRequest, WorkerNode
from repro.cluster.resources import ResourceVector
from repro.sim.request import ServiceRequest

__all__ = ["CeresConfig", "CeresManager"]


@dataclass
class CeresConfig:
    #: utilisation set-point of the feedback controller.
    target_utilization: float = 0.85
    #: proportional gain of the per-tick reallocation step.
    gain: float = 0.25
    #: containers never shrink below this fraction of their minimum.
    floor_fraction: float = 0.8
    #: control loop period (ms).
    period_ms: float = 400.0
    #: memory fraction kept free of BE so LC admissions are not locked out.
    lc_memory_headroom: float = 0.30


class CeresManager:
    """Local elastic resource manager in the CERES style."""

    def __init__(self, config: Optional[CeresConfig] = None) -> None:
        self.config = config or CeresConfig()
        self._last_control_ms: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        return {"last_control_ms": self._last_control_ms}

    def restore_state(self, state: Dict) -> None:
        self._last_control_ms = state["last_control_ms"]

    # ------------------------------------------------------------------ #
    # ResourceManager interface
    # ------------------------------------------------------------------ #
    def admit(
        self, node: WorkerNode, request: ServiceRequest, now_ms: float
    ) -> Optional[AdmitDecision]:
        # CERES is mixed-workload aware *locally*: LC containers get their
        # full reference allocation and may squeeze CPU out of co-located
        # BE work; BE containers are packed elastically at their minimum.
        # What CERES lacks vs HRM is the compressible/incompressible split
        # (no eviction — LC blocked on memory simply waits) and any traffic
        # dimension (it is paired with round-robin dispatch).
        spec = request.spec
        if spec.is_lc:
            demand = spec.reference_resources.min_with(node.capacity)
            free = node.free()
            if demand.cpu > free.cpu:
                self._squeeze_be_cpu(node, demand.cpu - free.cpu)
                free = node.free()
            if not demand.fits_in(free):
                return None
            return AdmitDecision(allocation=demand, overhead_ms=0.0)
        # BE admission control: keep a memory headroom for LC (CERES cannot
        # evict, so BE packing must not lock memory away from LC arrivals)
        # and stay under the utilisation set-point.
        if node.utilization() >= self.config.target_utilization:
            return None
        demand = spec.min_resources.min_with(node.capacity)
        free_after = node.free() - demand
        if not free_after.is_nonnegative():
            return None
        headroom = node.capacity.memory * self.config.lc_memory_headroom
        if free_after.memory < headroom:
            return None
        return AdmitDecision(allocation=demand, overhead_ms=0.0)

    def _squeeze_be_cpu(self, node: WorkerNode, missing_cpu: float) -> float:
        freed = 0.0
        for rr in sorted(
            node.running.values(),
            key=lambda r: r.allocation.cpu,
            reverse=True,
        ):
            if rr.request.is_lc:
                continue
            if freed >= missing_cpu:
                break
            floor = rr.request.spec.min_resources.cpu * 0.5
            take = min(max(0.0, rr.allocation.cpu - floor), missing_cpu - freed)
            if take <= 1e-9:
                continue
            node.adjust_running_allocation(
                rr,
                ResourceVector(
                    cpu=rr.allocation.cpu - take,
                    memory=rr.allocation.memory,
                    bandwidth=rr.allocation.bandwidth,
                    disk=rr.allocation.disk,
                ),
            )
            freed += take
        return freed

    def on_complete(
        self, node: WorkerNode, running: RunningRequest, now_ms: float
    ) -> None:
        """No per-completion bookkeeping; the controller is periodic."""

    def tick(self, node: WorkerNode, now_ms: float) -> None:
        """Feedback loop: push node utilisation toward the set-point.

        Below the set-point, grow the most-starved containers toward their
        reference; above it, shrink the most-generous ones toward the floor.
        No priority classes: LC and BE are treated alike, which is exactly
        what loses to HRM when LC load spikes.
        """
        last = self._last_control_ms.get(node.name, -1e18)
        if now_ms - last < self.config.period_ms:
            return
        self._last_control_ms[node.name] = now_ms

        cfg = self.config
        util = node.cpu_utilization()
        error = cfg.target_utilization - util
        if abs(error) < 0.02 or not node.running:
            return
        step_cpu = abs(error) * node.capacity.cpu * cfg.gain

        if error > 0:
            # below set-point: expand starved containers
            for rr in sorted(
                node.running.values(),
                key=lambda r: r.allocation.cpu
                / max(1e-9, r.request.spec.reference_resources.cpu),
            ):
                free_cpu = node.free().cpu
                if free_cpu <= 1e-6 or step_cpu <= 1e-6:
                    break
                ref = rr.request.spec.reference_resources
                gap = max(0.0, ref.cpu * 1.1 - rr.allocation.cpu)
                grow = min(gap, step_cpu, free_cpu)
                if grow <= 1e-6:
                    continue
                node.adjust_running_allocation(
                    rr,
                    ResourceVector(
                        cpu=rr.allocation.cpu + grow,
                        memory=rr.allocation.memory,
                        bandwidth=rr.allocation.bandwidth,
                        disk=rr.allocation.disk,
                    ),
                )
                step_cpu -= grow
        else:
            # above set-point: shrink the most generous containers
            for rr in sorted(
                node.running.values(),
                key=lambda r: r.allocation.cpu
                / max(1e-9, r.request.spec.reference_resources.cpu),
                reverse=True,
            ):
                if step_cpu <= 1e-6:
                    break
                floor = rr.request.spec.min_resources.cpu * cfg.floor_fraction
                reducible = max(0.0, rr.allocation.cpu - floor)
                cut = min(reducible, step_cpu)
                if cut <= 1e-6:
                    continue
                node.adjust_running_allocation(
                    rr,
                    ResourceVector(
                        cpu=rr.allocation.cpu - cut,
                        memory=rr.allocation.memory,
                        bandwidth=rr.allocation.bandwidth,
                        disk=rr.allocation.disk,
                    ),
                )
                step_cpu -= cut
