"""K8s-native resource management: fixed allocation, no preemption.

§7.1: "We initialize the resource allocation limits of services for
K8s-native according to the total resource usage ratio in the trace."  Native
K8s resource lists are set at pod creation and cannot change at runtime
(§4.2 pain points), so the baseline partitions each node statically into an
LC share and a BE share; requests always receive their *reference*
allocation from their own partition, wait when the partition is full, and
never preempt — the "fixed allocation and unordered competition" Fig. 9(c)
attributes the baseline's turbulence to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.node import AdmitDecision, RunningRequest, WorkerNode
from repro.cluster.resources import ResourceVector
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind

__all__ = ["StaticPartitionManager"]


@dataclass
class _PartitionState:
    lc_allocated: ResourceVector
    be_allocated: ResourceVector


class StaticPartitionManager:
    """Fixed LC/BE node partitions with reference-sized allocations."""

    #: :meth:`tick` is a no-op, so the runner may skip idle nodes entirely.
    #: (CeresManager deliberately lacks this flag: its tick stamps the
    #: control-loop clock even on idle nodes.)
    idle_tick_noop = True

    def __init__(self, lc_share: float = 0.5) -> None:
        if not 0.0 < lc_share < 1.0:
            raise ValueError("lc_share must be in (0, 1)")
        self.lc_share = lc_share
        self._state: Dict[str, _PartitionState] = {}

    def _partition(self, node: WorkerNode) -> _PartitionState:
        if node.name not in self._state:
            self._state[node.name] = _PartitionState(
                lc_allocated=ResourceVector(), be_allocated=ResourceVector()
            )
        return self._state[node.name]

    def _quota(self, node: WorkerNode, kind: ServiceKind) -> ResourceVector:
        share = self.lc_share if kind is ServiceKind.LC else 1.0 - self.lc_share
        return node.capacity * share

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        return {"state": self._state}

    def restore_state(self, state: Dict) -> None:
        self._state = state["state"]

    # ------------------------------------------------------------------ #
    # ResourceManager interface
    # ------------------------------------------------------------------ #
    def admit(
        self, node: WorkerNode, request: ServiceRequest, now_ms: float
    ) -> Optional[AdmitDecision]:
        state = self._partition(node)
        spec = request.spec
        demand = spec.reference_resources
        quota = self._quota(node, spec.kind)
        used = (
            state.lc_allocated if spec.is_lc else state.be_allocated
        )
        if not (used + demand).fits_in(quota):
            return None
        if not demand.fits_in(node.free()):
            return None
        if spec.is_lc:
            state.lc_allocated = state.lc_allocated + demand
        else:
            state.be_allocated = state.be_allocated + demand
        return AdmitDecision(allocation=demand, overhead_ms=0.0)

    def on_complete(
        self, node: WorkerNode, running: RunningRequest, now_ms: float
    ) -> None:
        state = self._partition(node)
        if running.request.is_lc:
            state.lc_allocated = (
                state.lc_allocated - running.allocation
            ).clamp_min(0.0)
        else:
            state.be_allocated = (
                state.be_allocated - running.allocation
            ).clamp_min(0.0)

    def tick(self, node: WorkerNode, now_ms: float) -> None:
        """Native K8s performs no runtime reallocation."""
