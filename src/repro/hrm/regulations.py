"""Resource usage regulations — the HRM resource manager (§4.1).

The regulations give LC services strict priority over BE services throughout
scheduling and processing:

* LC requests may use idle resources *and* resources currently held by BE
  services, preferring the former;
* when idle resources cannot satisfy a pending LC request's minimum
  requirement, preemption is allowed — **compressible** resources (CPU,
  bandwidth) are squeezed out of running BE containers instantly, while
  **incompressible** resources (memory, disk) are reclaimed by *evicting*
  running BE services, which restart later;
* BE services, in turn, "aim to maximize idle resources": the manager grows
  their allocations toward (and slightly past) their reference whenever the
  node has slack, and shrinks them again under LC pressure.

Every allocation change flows through the node's D-VPA instance, so each
admission carries the in-place scaling latency (~23 ms) instead of a
container restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.node import AdmitDecision, RunningRequest, WorkerNode
from repro.cluster.resources import ResourceVector
from repro.obs.emitter import NULL_EMITTER
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceSpec

from .dvpa import DVPA
from .qos import QoSDetector
from .reassurance import ReassuranceMechanism

__all__ = ["HRMConfig", "HRMManager"]


@dataclass
class HRMConfig:
    #: lowest CPU fraction (of the catalog minimum) a squeezed BE keeps.
    be_squeeze_floor: float = 0.25
    #: per-tick fraction of the gap to reference closed when expanding BE.
    be_expand_rate: float = 0.35
    #: BE allocations may grow to this multiple of their reference.
    be_expand_cap: float = 1.2
    #: charge D-VPA scaling latency on admissions (set False for ablations).
    charge_dvpa_latency: bool = True


class HRMManager:
    """Harmonious Resource Management for one or more worker nodes.

    One instance can serve a whole cluster: all per-node state is keyed by
    node name (D-VPA instances, adjusted minima via the shared re-assurance
    mechanism).
    """

    #: :meth:`tick` has no effect on a node with no queued or running work
    #: (BE expansion needs running BE), so the runner may skip idle nodes.
    idle_tick_noop = True

    def __init__(
        self,
        detector: QoSDetector,
        reassurance: ReassuranceMechanism,
        config: Optional[HRMConfig] = None,
        *,
        detailed_cgroups: bool = False,
    ) -> None:
        self.detector = detector
        self.reassurance = reassurance
        self.config = config or HRMConfig()
        self.detailed_cgroups = detailed_cgroups
        self._dvpa: Dict[str, DVPA] = {}
        self.preemption_squeezes = 0
        self.preemption_evictions = 0
        #: observability bus; assigned by the runner, None when disabled
        #: (kept for introspection — emissions go through the emitter).
        self.bus = None
        #: lifecycle emitter; rewired by the runner, null when standalone.
        self.emitter = NULL_EMITTER

    def dvpa_for(self, node_name: str) -> DVPA:
        if node_name not in self._dvpa:
            self._dvpa[node_name] = DVPA(node_name, detailed=self.detailed_cgroups)
        return self._dvpa[node_name]

    # ------------------------------------------------------------------ #
    # ResourceManager interface
    # ------------------------------------------------------------------ #
    def admit(
        self, node: WorkerNode, request: ServiceRequest, now_ms: float
    ) -> Optional[AdmitDecision]:
        spec = request.spec
        demand = self._demand_for(node, spec)
        free = node.free()
        evicted: List[RunningRequest] = []

        if not demand.fits_in(free):
            if not request.is_lc:
                return None  # BE never preempts anyone
            # LC preemption path: squeeze compressible, evict incompressible.
            freed = self._squeeze_be_cpu(node, demand.cpu - free.cpu)
            free = node.free()
            if not demand.fits_in(free):
                evicted = self._select_evictions(node, demand, free)
                if evicted is None:
                    return None
                freed_by_eviction = ResourceVector()
                for rr in evicted:
                    freed_by_eviction = freed_by_eviction + rr.allocation
                if not demand.fits_in(free + freed_by_eviction):
                    return None
                self.preemption_evictions += len(evicted)
                # the victims' pods shrink with them — their limits must
                # not keep claiming resources the containers no longer hold.
                dvpa = self.dvpa_for(node.name)
                for rr in evicted:
                    dvpa.release(rr.request.spec.name, rr.allocation)
                self.emitter.preemptive_eviction(
                    now_ms, node.name, spec.name, len(evicted)
                )
            if freed > 0:
                self.preemption_squeezes += 1
                self.emitter.be_squeezed(now_ms, node.name, freed)

        # the pod limit always tracks the admitted allocation; the scaling
        # *latency* is only charged to the request when configured (the
        # ablation keeps accounting honest but makes resizes free).
        overhead = self.dvpa_for(node.name).grow(spec.name, demand)
        if self.config.charge_dvpa_latency:
            if overhead > 0:
                self.emitter.dvpa_resized(
                    now_ms, node.name, spec.name, overhead, "grow"
                )
        else:
            overhead = 0.0
        return AdmitDecision(
            allocation=demand, overhead_ms=overhead, evicted=evicted or []
        )

    def on_complete(
        self, node: WorkerNode, running: RunningRequest, now_ms: float
    ) -> None:
        spec = running.request.spec
        shrink_ms = self.dvpa_for(node.name).release(spec.name, running.allocation)
        if shrink_ms > 0:
            self.emitter.dvpa_resized(
                now_ms, node.name, spec.name, shrink_ms, "shrink"
            )
        if spec.is_lc:
            latency = running.request.total_latency_ms()
            if latency is not None:
                self.detector.observe(node.name, spec.name, now_ms, latency)

    def tick(self, node: WorkerNode, now_ms: float) -> None:
        """Grow BE allocations into idle resources (Fig. 4(a) idle phase)."""
        free = node.free()
        if free.cpu <= 1e-6 and free.memory <= 1e-6:
            return
        cfg = self.config
        candidates = [
            rr
            for rr in node.running_be()
            if rr.allocation.cpu
            < rr.request.spec.reference_resources.cpu * cfg.be_expand_cap
        ]
        if not candidates:
            return
        for rr in candidates:
            free = node.free()
            if free.cpu <= 1e-6:
                break
            ref = rr.request.spec.reference_resources
            target_cpu = min(
                ref.cpu * cfg.be_expand_cap,
                rr.allocation.cpu
                + cfg.be_expand_rate * max(0.0, ref.cpu - rr.allocation.cpu)
                + 0.05,
            )
            grow_cpu = min(max(0.0, target_cpu - rr.allocation.cpu), free.cpu)
            grow_mem = 0.0
            if rr.allocation.memory < ref.memory:
                grow_mem = min(ref.memory - rr.allocation.memory, free.memory)
            if grow_cpu <= 1e-6 and grow_mem <= 1e-6:
                continue
            new_alloc = ResourceVector(
                cpu=rr.allocation.cpu + grow_cpu,
                memory=rr.allocation.memory + grow_mem,
                bandwidth=rr.allocation.bandwidth,
                disk=rr.allocation.disk,
            )
            # grow the pod limit with the container: expansion without a
            # D-VPA resize left usage above the pod limit (§4.2 cgroup
            # flows), which the invariant checker flags.
            self.dvpa_for(node.name).grow(
                rr.request.spec.name,
                ResourceVector(cpu=grow_cpu, memory=grow_mem),
            )
            node.adjust_running_allocation(rr, new_alloc)

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """D-VPA trees (pods, cgroup hierarchies, scale stats) go whole;
        the shared detector/re-assurance are snapshotted by the runner."""
        return {
            "dvpa": self._dvpa,
            "preemption_squeezes": self.preemption_squeezes,
            "preemption_evictions": self.preemption_evictions,
        }

    def restore_state(self, state: Dict) -> None:
        self._dvpa = state["dvpa"]
        self.preemption_squeezes = state["preemption_squeezes"]
        self.preemption_evictions = state["preemption_evictions"]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _demand_for(self, node: WorkerNode, spec: ServiceSpec) -> ResourceVector:
        """Minimum request allocation, as adjusted by re-assurance (LC)."""
        if spec.is_lc:
            return self.reassurance.min_resources(node.name, spec)
        return spec.min_resources

    def _squeeze_be_cpu(self, node: WorkerNode, missing_cpu: float) -> float:
        """Reclaim compressible CPU from running BE; returns amount freed."""
        if missing_cpu <= 0:
            return 0.0
        freed = 0.0
        floor_frac = self.config.be_squeeze_floor
        for rr in sorted(
            node.running_be(), key=lambda r: r.allocation.cpu, reverse=True
        ):
            if freed >= missing_cpu:
                break
            floor = rr.request.spec.min_resources.cpu * floor_frac
            reducible = max(0.0, rr.allocation.cpu - floor)
            take = min(reducible, missing_cpu - freed)
            if take <= 1e-9:
                continue
            node.adjust_running_allocation(
                rr,
                ResourceVector(
                    cpu=rr.allocation.cpu - take,
                    memory=rr.allocation.memory,
                    bandwidth=rr.allocation.bandwidth,
                    disk=rr.allocation.disk,
                ),
            )
            # shrink the pod limit in step (compressible squeeze is free —
            # the release latency is not charged to anyone).
            self.dvpa_for(node.name).release(
                rr.request.spec.name, ResourceVector(cpu=take)
            )
            freed += take
        return freed

    def _select_evictions(
        self,
        node: WorkerNode,
        demand: ResourceVector,
        free: ResourceVector,
    ) -> Optional[List[RunningRequest]]:
        """Pick BE victims until incompressible demand fits; None if hopeless.

        Victims with the *most remaining work fraction* go first, minimising
        wasted progress.
        """
        victims: List[RunningRequest] = []
        freed = ResourceVector()
        candidates = sorted(
            node.running_be(),
            key=lambda r: r.remaining_ms / max(1.0, r.request.spec.base_service_ms),
            reverse=True,
        )
        for rr in candidates:
            if demand.fits_in(free + freed):
                break
            victims.append(rr)
            freed = freed + rr.allocation
        if not demand.fits_in(free + freed):
            return None
        return victims
