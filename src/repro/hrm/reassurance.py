"""QoS re-assurance mechanism — Algorithm 1 of the paper (§4.3).

For every worker node and LC service, the mechanism compares the slack score
δ against two empirical thresholds:

* ``δ < α``  (poor)      → *increase* the minimum requested resource amount;
* ``δ > β``  (excellent) → *decrease* it;
* otherwise  (stable)    → leave it alone.

"To minimize resource perturbations, the mechanism operates at a high
frequency with a small proportion": adjustments are multiplicative with a
small step and clamped between a floor (a fraction of the catalog minimum)
and a ceiling (a multiple of the reference allocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.obs.emitter import NULL_EMITTER
from repro.workloads.spec import ServiceSpec

from .qos import QoSDetector

__all__ = [
    "ReassuranceConfig",
    "ReassuranceMechanism",
    "LEVEL_POOR",
    "LEVEL_STABLE",
    "LEVEL_EXCELLENT",
]


@dataclass
class ReassuranceConfig:
    #: slack below which performance is "poor" (α in Algorithm 1).  The
    #: paper sets the thresholds empirically; α=0.25 reacts before the p95
    #: actually crosses the target (slack < 0), keeping violations rare.
    alpha: float = 0.25
    #: slack above which performance is "excellent" (β in Algorithm 1):
    #: above it the service is over-provisioned and its minimum shrinks,
    #: freeing resources for BE work.
    beta: float = 0.45
    #: multiplicative step applied on each adjustment ("small proportion").
    increase_step: float = 1.10
    decrease_step: float = 0.96
    #: bounds relative to the catalog values.
    floor_fraction: float = 0.6
    ceiling_multiple: float = 1.6
    #: how often the mechanism runs (ms); paper: every 100 ms window.
    period_ms: float = 100.0


# Quality-performance levels from §4.3 (kept as plain strings so they can be
# used directly as dict keys in counters and reports).
LEVEL_POOR = "poor"
LEVEL_STABLE = "stable"
LEVEL_EXCELLENT = "excellent"


class ReassuranceMechanism:
    """Maintains the adjusted per-(node, service) minimum request amounts."""

    def __init__(
        self,
        detector: QoSDetector,
        config: Optional[ReassuranceConfig] = None,
    ) -> None:
        self.detector = detector
        self.config = config or ReassuranceConfig()
        if not self.config.alpha < self.config.beta:
            raise ValueError("require alpha < beta")
        self._min_resources: Dict[Tuple[str, str], ResourceVector] = {}
        self._last_run_ms: float = -1e18
        self.adjustments = {LEVEL_POOR: 0, LEVEL_EXCELLENT: 0, LEVEL_STABLE: 0}
        #: bumped on every minima change so consumers (DSS-LC) can cache
        #: derived per-node values between adjustment passes.
        self.version = 0
        #: observability bus; assigned by the runner, None when disabled
        #: (kept for introspection — emissions go through the emitter).
        self.bus = None
        #: lifecycle emitter; rewired by the runner, null when standalone.
        self.emitter = NULL_EMITTER
        #: last known level per (node, service); only maintained when the
        #: emitter is live, to publish level *transitions* rather than the
        #: stable-state classification of every pass.
        self._levels: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    def min_resources(self, node: str, spec: ServiceSpec) -> ResourceVector:
        """Current minimum allocation for one request of ``spec`` on node."""
        return self._min_resources.get((node, spec.name), spec.min_resources)

    def classify(
        self,
        node: str,
        spec: ServiceSpec,
        *,
        now_ms: Optional[float] = None,
    ) -> str:
        slack = self.detector.slack_score(node, spec.name, spec, now_ms=now_ms)
        if slack is None:
            return LEVEL_STABLE
        if slack < self.config.alpha:
            return LEVEL_POOR
        if slack > self.config.beta:
            return LEVEL_EXCELLENT
        return LEVEL_STABLE

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def run(
        self,
        now_ms: float,
        nodes: Dict[str, Dict[str, ServiceSpec]],
    ) -> int:
        """One pass over (node, LC service) pairs; returns adjustment count.

        ``nodes`` maps node name → {service name: spec} for the LC services
        active on that node.  Respects the configured period: calls between
        periods are no-ops, so the caller can invoke it every tick.
        """
        if now_ms - self._last_run_ms < self.config.period_ms:
            return 0
        self._last_run_ms = now_ms
        changed = 0
        for node, services in nodes.items():
            for name, spec in services.items():
                if not spec.is_lc:
                    continue
                level = self.classify(node, spec, now_ms=now_ms)
                self.adjustments[level] += 1
                if level == LEVEL_POOR:
                    self._scale(node, spec, self.config.increase_step)
                    changed += 1
                elif level == LEVEL_EXCELLENT:
                    self._scale(node, spec, self.config.decrease_step)
                    changed += 1
                if self.emitter.enabled:
                    key = (node, name)
                    previous = self._levels.get(key, LEVEL_STABLE)
                    if level != previous:
                        self._levels[key] = level
                        self.emitter.reassurance_transition(
                            now_ms, node, name, previous, level
                        )
        return changed

    def _scale(self, node: str, spec: ServiceSpec, factor: float) -> None:
        current = self.min_resources(node, spec)
        scaled = current * factor
        floor = spec.min_resources * self.config.floor_fraction
        ceiling = spec.reference_resources * self.config.ceiling_multiple
        self._min_resources[(node, spec.name)] = scaled.max_with(floor).min_with(
            ceiling
        )
        self.version += 1

    def reset(self, node: Optional[str] = None) -> None:
        self.version += 1
        if node is None:
            self._min_resources.clear()
        else:
            for key in [k for k in self._min_resources if k[0] == node]:
                del self._min_resources[key]

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        return {
            "min_resources": self._min_resources,
            "last_run_ms": self._last_run_ms,
            "adjustments": self.adjustments,
            "version": self.version,
            "levels": self._levels,
        }

    def restore_state(self, state: Dict) -> None:
        self._min_resources = state["min_resources"]
        self._last_run_ms = state["last_run_ms"]
        self.adjustments = state["adjustments"]
        self.version = state["version"]
        self._levels = state["levels"]
