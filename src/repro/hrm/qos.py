"""QoS detector: per-(node, service) latency windows and slack scores.

§4.3: "the processing latency of LC service requests on each worker node is
collected within a time window of 100 ms".  The slack score of service *k*
on node *i* is

    δ_k(n_i) = 1 − ξ_k / γ_k

with ξ_k the p95 tail latency inside the window and γ_k the QoS target.
Negative slack means the target is violated; the re-assurance mechanism
(Algorithm 1) consumes these scores.  The same detector feeds the ``δ_k``
field of DCG-BE's node state (§5.3.1).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.spec import ServiceSpec

__all__ = ["QoSDetector", "WINDOW_MS"]

#: §4.3 collection window.
WINDOW_MS = 100.0


@dataclass
class _Sample:
    completed_ms: float
    latency_ms: float


class QoSDetector:
    """Sliding-window tail-latency tracker."""

    def __init__(self, window_ms: float = WINDOW_MS, min_keep: int = 8) -> None:
        self.window_ms = window_ms
        #: keep at least this many samples so p95 stays defined in quiet
        #: windows (the detector would otherwise flap between ticks).
        self.min_keep = min_keep
        self._samples: Dict[Tuple[str, str], Deque[_Sample]] = defaultdict(deque)
        #: node → services it has samples for, so per-node queries do not
        #: scan every (node, service) window in the system.
        self._node_services: Dict[str, List[str]] = {}
        #: memoised tail percentiles, invalidated when a window changes —
        #: the state storage queries every (node, service) each refresh,
        #: while only the nodes that completed work have new samples.
        self._tail_cache: Dict[Tuple[str, str], Dict[float, float]] = {}

    def observe(
        self,
        node: str,
        service: str,
        completed_ms: float,
        latency_ms: float,
    ) -> None:
        key = (node, service)
        if key not in self._samples:
            self._node_services.setdefault(node, []).append(service)
        window = self._samples[key]
        window.append(_Sample(completed_ms, latency_ms))
        self._expire(key, window, completed_ms)
        self._tail_cache.pop(key, None)

    def _expire(
        self, key: Tuple[str, str], window: Deque[_Sample], now_ms: float
    ) -> None:
        expired = False
        while (
            len(window) > self.min_keep
            and window[0].completed_ms < now_ms - self.window_ms
        ):
            window.popleft()
            expired = True
        if expired:
            self._tail_cache.pop(key, None)

    def purge_node(self, node: str) -> None:
        """Drop every window for a node (crashed/removed: its history is
        meaningless once the node restarts cold)."""
        for service in self._node_services.pop(node, ()):
            key = (node, service)
            self._samples.pop(key, None)
            self._tail_cache.pop(key, None)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def tail_latency_ms(
        self,
        node: str,
        service: str,
        percentile: float = 95.0,
        *,
        now_ms: Optional[float] = None,
    ) -> Optional[float]:
        key = (node, service)
        window = self._samples.get(key)
        if not window:
            return None
        if now_ms is not None:
            # expire on read: a window that stopped receiving completions
            # (evicted service, idle node) must not report a stale tail
            # forever.  min_keep still floors the window, exactly as in
            # observe(), so quiet-window behaviour is unchanged.
            self._expire(key, window, now_ms)
        cached = self._tail_cache.get(key)
        if cached is not None:
            value = cached.get(percentile)
            if value is not None:
                return value
        else:
            cached = self._tail_cache[key] = {}
        values = [s.latency_ms for s in window]
        value = float(np.percentile(values, percentile))
        cached[percentile] = value
        return value

    def slack_score(
        self,
        node: str,
        service: str,
        spec: ServiceSpec,
        *,
        now_ms: Optional[float] = None,
    ) -> Optional[float]:
        """δ = 1 − ξ/γ; None when no samples exist yet."""
        if not spec.is_lc or not np.isfinite(spec.qos_target_ms):
            return None
        tail = self.tail_latency_ms(node, service, now_ms=now_ms)
        if tail is None:
            return None
        return 1.0 - tail / spec.qos_target_ms

    def sample_count(self, node: str, service: str) -> int:
        window = self._samples.get((node, service))
        return len(window) if window else 0

    def node_min_slack(
        self,
        node: str,
        specs: Dict[str, ServiceSpec],
        *,
        now_ms: Optional[float] = None,
    ) -> float:
        """Worst slack over LC services on a node (DCG-BE state feature)."""
        scores = []
        for service in self._node_services.get(node, ()):
            spec = specs.get(service)
            if spec is None or not spec.is_lc:
                continue
            s = self.slack_score(node, service, spec, now_ms=now_ms)
            if s is not None:
                scores.append(s)
        return min(scores) if scores else 1.0

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """``_node_services`` insertion order decides ``node_min_slack``'s
        scan order, so it is state, not a rebuildable index."""
        return {
            "samples": self._samples,
            "node_services": self._node_services,
            "tail_cache": self._tail_cache,
        }

    def restore_state(self, state: Dict) -> None:
        self._samples = state["samples"]
        self._node_services = state["node_services"]
        self._tail_cache = state["tail_cache"]
