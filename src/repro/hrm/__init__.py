"""Harmonious Resource Management: regulations, D-VPA, QoS re-assurance."""

from .dvpa import DVPA, DVPA_SCALE_LATENCY_MS
from .qos import QoSDetector, WINDOW_MS
from .reassurance import (
    LEVEL_EXCELLENT,
    LEVEL_POOR,
    LEVEL_STABLE,
    ReassuranceConfig,
    ReassuranceMechanism,
)
from .regulations import HRMConfig, HRMManager

__all__ = [
    "HRMManager",
    "HRMConfig",
    "DVPA",
    "DVPA_SCALE_LATENCY_MS",
    "QoSDetector",
    "WINDOW_MS",
    "ReassuranceMechanism",
    "ReassuranceConfig",
    "LEVEL_POOR",
    "LEVEL_STABLE",
    "LEVEL_EXCELLENT",
]
