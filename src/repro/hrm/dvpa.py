"""D-VPA: dynamic vertical pod autoscaling without delete-and-rebuild (§4.2).

The component keeps one long-running pod per (node, service) — Tango's
scenario runs "fixed types of containerized applications ... continuously"
(footnote 3) — and resizes that pod's cgroup limits in place as requests
arrive and complete.  Each resize follows the ordered two-level protocol of
:meth:`repro.kube.cgroups.CGroupTree.resize_pod`; a full operation costs
~23 ms of control latency and, crucially, never interrupts the running
container (unlike :class:`repro.kube.vpa.NativeVPA`, which pays a teardown
plus a cold start ≈ 100× more and drops in-flight work).

Two modes are offered:

* ``detailed=True`` drives a real :class:`CGroupTree` (used by unit tests and
  the D-VPA latency bench so every write is validated and logged);
* ``detailed=False`` keeps only the aggregate limits and op counters, which
  is what the large-scale simulation uses on its hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.kube.cgroups import CGroupTree, WRITE_LATENCY_MS
from repro.kube.objects import QoSClass

__all__ = ["DVPA", "DVPA_SCALE_LATENCY_MS", "ScaleStats"]

#: Measured latency of one D-VPA scaling operation (§7.1: 23 ms).  With the
#: detailed cgroup tree this emerges from ~6 control-file writes; the
#: aggregate mode charges it directly.
DVPA_SCALE_LATENCY_MS = 6 * WRITE_LATENCY_MS  # 22.8 ms


@dataclass
class ScaleStats:
    operations: int = 0
    total_latency_ms: float = 0.0
    expansions: int = 0
    shrinks: int = 0

    @property
    def mean_latency_ms(self) -> float:
        return self.total_latency_ms / self.operations if self.operations else 0.0


@dataclass
class _ServicePod:
    pod_uid: str
    container: str
    current_limit: ResourceVector


class DVPA:
    """Per-node dynamic vertical scaler."""

    def __init__(self, node_name: str, *, detailed: bool = False) -> None:
        self.node_name = node_name
        self.detailed = detailed
        self.tree: Optional[CGroupTree] = CGroupTree() if detailed else None
        self._pods: Dict[str, _ServicePod] = {}
        self.stats = ScaleStats()
        self._uid_counter = 0

    # ------------------------------------------------------------------ #
    # pod management
    # ------------------------------------------------------------------ #
    def ensure_service_pod(
        self, service: str, initial_limit: ResourceVector
    ) -> _ServicePod:
        if service in self._pods:
            return self._pods[service]
        self._uid_counter += 1
        uid = f"{self.node_name}-{service}-{self._uid_counter:04d}"
        pod = _ServicePod(pod_uid=uid, container=f"{service}-c0", current_limit=initial_limit)
        if self.tree is not None:
            self.tree.create_pod_group(
                QoSClass.BURSTABLE.value,
                uid,
                [pod.container],
                cpu_limit_cores=max(initial_limit.cpu, 0.01),
                memory_limit_mib=max(initial_limit.memory, 1.0),
            )
        self._pods[service] = pod
        return pod

    def current_limit(self, service: str) -> Optional[ResourceVector]:
        pod = self._pods.get(service)
        return pod.current_limit if pod else None

    # ------------------------------------------------------------------ #
    # scaling
    # ------------------------------------------------------------------ #
    def scale(self, service: str, new_limit: ResourceVector) -> float:
        """Resize the service pod to ``new_limit``; returns latency in ms.

        A no-op (identical limit) costs nothing — D-VPA only touches the
        cgroups when the target differs.
        """
        # a brand-new service pod starts at zero, so its first sizing is a
        # real (charged) scaling operation
        pod = self.ensure_service_pod(service, ResourceVector())
        if pod.current_limit.approx_equal(new_limit):
            return 0.0
        expanding = new_limit.cpu > pod.current_limit.cpu or (
            new_limit.memory > pod.current_limit.memory
        )
        if self.tree is not None:
            latency = self.tree.resize_pod(
                QoSClass.BURSTABLE.value,
                pod.pod_uid,
                pod.container,
                ResourceVector(
                    cpu=max(new_limit.cpu, 0.01),
                    memory=max(new_limit.memory, 1.0),
                ),
            )
        else:
            latency = DVPA_SCALE_LATENCY_MS
        pod.current_limit = new_limit
        self.stats.operations += 1
        self.stats.total_latency_ms += latency
        if expanding:
            self.stats.expansions += 1
        else:
            self.stats.shrinks += 1
        return latency

    def release(self, service: str, amount: ResourceVector) -> float:
        """Shrink the service pod by ``amount`` (request completion path)."""
        pod = self._pods.get(service)
        if pod is None:
            return 0.0
        new_limit = (pod.current_limit - amount).clamp_min(0.0)
        return self.scale(service, new_limit)

    def grow(self, service: str, amount: ResourceVector) -> float:
        """Expand the service pod by ``amount`` (request admission path)."""
        pod = self._pods.get(service)
        base = pod.current_limit if pod else ResourceVector()
        return self.scale(service, base + amount)
