"""Behaviour-level Kubernetes: API server, cgroups, kubelet, schedulers."""

from .controller import Deployment, DeploymentController, ReconcileResult
from .endpoints import EndpointsResolver
from .events import ClusterEvent, EventRecorder, Reason
from .api_server import ApiServer, ConflictError, EventType, NotFoundError, WatchEvent
from .cgroups import CGroup, CGroupError, CGroupTree
from .hpa import HorizontalPodAutoscaler
from .kubelet import CONTAINER_COLD_START_MS, Kubelet
from .objects import (
    ContainerSpec,
    NodeInfo,
    Pod,
    PodPhase,
    PodSpec,
    QoSClass,
    ServiceObject,
    qos_class_of,
)
from .scheduler import KubeScheduler, NodeView, RoundRobinProxy
from .vpa import NativeVPA

__all__ = [
    "ApiServer",
    "WatchEvent",
    "EventType",
    "ConflictError",
    "NotFoundError",
    "CGroup",
    "CGroupTree",
    "CGroupError",
    "Kubelet",
    "CONTAINER_COLD_START_MS",
    "KubeScheduler",
    "RoundRobinProxy",
    "NodeView",
    "NativeVPA",
    "HorizontalPodAutoscaler",
    "Pod",
    "PodSpec",
    "PodPhase",
    "ContainerSpec",
    "NodeInfo",
    "ServiceObject",
    "QoSClass",
    "qos_class_of",
    "Deployment",
    "DeploymentController",
    "ReconcileResult",
    "EndpointsResolver",
    "EventRecorder",
    "ClusterEvent",
    "Reason",
]
