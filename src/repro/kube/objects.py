"""Typed Kubernetes API objects used by the behaviour-level K8s simulation.

Tango is "backwards compatible with Kubernetes" (§3): its components speak to
a standard API server, pods carry the usual QoS classes, and the D-VPA acts
on the same cgroup hierarchy the kubelet builds.  This module defines the
subset of the K8s object model the reproduction needs: Pods with container
resource requests/limits, Nodes with capacities, and Services selecting pods.

Only fields the simulation reads are modelled; everything follows K8s
semantics (e.g. :func:`qos_class_of` mirrors how kubelet classifies pods into
Guaranteed / Burstable / BestEffort from requests vs limits).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector, ZERO

__all__ = [
    "QoSClass",
    "PodPhase",
    "ContainerSpec",
    "PodSpec",
    "Pod",
    "NodeInfo",
    "ServiceObject",
    "qos_class_of",
]

_uid_counter = itertools.count(1)


def _next_uid(prefix: str) -> str:
    return f"{prefix}-{next(_uid_counter):08x}"


class QoSClass(str, Enum):
    """K8s pod QoS classes; HRM maps LC→Guaranteed/Burstable, BE→BestEffort."""

    GUARANTEED = "Guaranteed"
    BURSTABLE = "Burstable"
    BEST_EFFORT = "BestEffort"


class PodPhase(str, Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclass
class ContainerSpec:
    """One container: requests are scheduler-visible, limits are cgroup caps."""

    name: str
    requests: ResourceVector = ZERO
    limits: ResourceVector = ZERO

    def effective_limits(self) -> ResourceVector:
        """Limits default to requests when unset (K8s admission behaviour)."""
        if self.limits.is_zero() and not self.requests.is_zero():
            return self.requests
        return self.limits


@dataclass
class PodSpec:
    containers: List[ContainerSpec] = field(default_factory=list)
    node_name: Optional[str] = None
    #: service this pod backs; used by Service endpoints and by HRM to know
    #: whether the pod hosts an LC or a BE workload.
    service_name: Optional[str] = None
    priority: int = 0

    def total_requests(self) -> ResourceVector:
        total = ZERO
        for c in self.containers:
            total = total + c.requests
        return total

    def total_limits(self) -> ResourceVector:
        total = ZERO
        for c in self.containers:
            total = total + c.effective_limits()
        return total


@dataclass
class Pod:
    name: str
    spec: PodSpec
    namespace: str = "default"
    uid: str = field(default_factory=lambda: _next_uid("pod"))
    labels: Dict[str, str] = field(default_factory=dict)
    phase: PodPhase = PodPhase.PENDING
    #: simulation time (ms) at which the containers became ready.
    started_at_ms: Optional[float] = None
    deleted: bool = False

    @property
    def qos_class(self) -> QoSClass:
        return qos_class_of(self.spec)

    def key(self) -> str:
        return f"{self.namespace}/{self.name}"


def qos_class_of(spec: PodSpec) -> QoSClass:
    """Classify a pod exactly as kubelet does.

    * Guaranteed: every container sets requests == limits on CPU and memory.
    * BestEffort: no container sets any request or limit.
    * Burstable: everything else.
    """
    if not spec.containers:
        return QoSClass.BEST_EFFORT
    any_set = False
    all_guaranteed = True
    for c in spec.containers:
        req, lim = c.requests, c.effective_limits()
        if not req.is_zero() or not lim.is_zero():
            any_set = True
        if (
            req.cpu <= 0
            or req.memory <= 0
            or abs(req.cpu - lim.cpu) > 1e-9
            or abs(req.memory - lim.memory) > 1e-9
        ):
            all_guaranteed = False
    if not any_set:
        return QoSClass.BEST_EFFORT
    return QoSClass.GUARANTEED if all_guaranteed else QoSClass.BURSTABLE


@dataclass
class NodeInfo:
    """A worker node as seen by the API server."""

    name: str
    capacity: ResourceVector
    labels: Dict[str, str] = field(default_factory=dict)
    uid: str = field(default_factory=lambda: _next_uid("node"))
    ready: bool = True

    def allocatable(self, system_reserved: float = 0.05) -> ResourceVector:
        """Capacity minus the system-reserved slice (kubelet behaviour)."""
        return self.capacity * (1.0 - system_reserved)


@dataclass
class ServiceObject:
    """A K8s Service: selects pods by label and load-balances over them."""

    name: str
    selector: Dict[str, str] = field(default_factory=dict)
    namespace: str = "default"
    uid: str = field(default_factory=lambda: _next_uid("svc"))

    def matches(self, pod: Pod) -> bool:
        return all(pod.labels.get(k) == v for k, v in self.selector.items())
