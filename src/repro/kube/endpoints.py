"""Endpoints controller: Service → ready pod endpoints, kept fresh by watch.

In K8s, the endpoints controller lists the pods a Service's selector matches
and publishes the *ready* ones; kube-proxy then load-balances across that
endpoint set.  This module reproduces the behaviour: an
:class:`EndpointsResolver` subscribes to the API server's Pod and Service
watch streams and maintains the endpoint sets incrementally, so lookups are
O(1) per request — which is what lets the round-robin baseline run at
request rate inside the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .api_server import ApiServer, EventType, WatchEvent
from .objects import Pod, PodPhase, ServiceObject
from .scheduler import RoundRobinProxy

__all__ = ["EndpointsResolver"]


class EndpointsResolver:
    """Watch-driven Service endpoint index with a round-robin front."""

    def __init__(self, api: ApiServer) -> None:
        self.api = api
        self._services: Dict[str, ServiceObject] = {}
        #: service name → set of "namespace/pod" keys currently ready.
        self._endpoints: Dict[str, Set[str]] = {}
        #: pod key → node name (what the proxy ultimately routes to).
        self._pod_nodes: Dict[str, str] = {}
        self.proxy = RoundRobinProxy()
        self._cancel_pod = api.watch(self._on_pod_event, kind="Pod")
        self._cancel_svc = api.watch(self._on_service_event, kind="Service")
        # bootstrap from current state
        for svc in api.list("Service"):
            self._add_service(svc)
        for pod in api.list("Pod"):
            self._index_pod(pod)

    # ------------------------------------------------------------------ #
    # watch handlers
    # ------------------------------------------------------------------ #
    def _on_service_event(self, event: WatchEvent) -> None:
        svc: ServiceObject = event.obj
        if event.type is EventType.DELETED:
            self._services.pop(svc.name, None)
            self._endpoints.pop(svc.name, None)
            self.proxy.reset(svc.name)
        else:
            self._add_service(svc)

    def _add_service(self, svc: ServiceObject) -> None:
        self._services[svc.name] = svc
        members: Set[str] = set()
        for pod in self.api.list("Pod", svc.namespace):
            if self._pod_ready(pod) and svc.matches(pod):
                members.add(pod.key())
                self._pod_nodes[pod.key()] = pod.spec.node_name or ""
        self._endpoints[svc.name] = members

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod: Pod = event.obj
        if event.type is EventType.DELETED:
            self._drop_pod(pod)
        else:
            self._index_pod(pod)

    def _index_pod(self, pod: Pod) -> None:
        key = pod.key()
        ready = self._pod_ready(pod)
        if ready:
            self._pod_nodes[key] = pod.spec.node_name or ""
        for name, svc in self._services.items():
            members = self._endpoints.setdefault(name, set())
            if ready and svc.matches(pod):
                members.add(key)
            else:
                members.discard(key)

    def _drop_pod(self, pod: Pod) -> None:
        key = pod.key()
        self._pod_nodes.pop(key, None)
        for members in self._endpoints.values():
            members.discard(key)

    @staticmethod
    def _pod_ready(pod: Pod) -> bool:
        return pod.phase is PodPhase.RUNNING and not pod.deleted

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def endpoints(self, service: str) -> List[str]:
        """Sorted ready pod keys backing a service ([] when unknown)."""
        return sorted(self._endpoints.get(service, ()))

    def route(self, service: str) -> Optional[str]:
        """Round-robin one request: returns the target *node* name."""
        eps = self.endpoints(service)
        pod_key = self.proxy.next_endpoint(service, eps)
        if pod_key is None:
            return None
        return self._pod_nodes.get(pod_key) or None

    def close(self) -> None:
        self._cancel_pod()
        self._cancel_svc()
