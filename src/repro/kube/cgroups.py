"""Simulated Linux cgroup-v1 hierarchy as built by kubelet.

D-VPA's whole trick (§4.2, Fig. 5) is an extra control flow into the cgroup
tree: instead of delete-and-rebuild, it rewrites ``cpu.shares`` /
``cpu.cfs_quota_us`` / memory limits on the *pod-level* and *container-level*
cgroups at runtime.  The paper stresses that "modifications must be
sequential to prevent failure": expansion writes the pod-level group first,
then the container level; shrinking reverses the order — otherwise a child
limit could momentarily exceed its parent and the write would fail, exactly
like the real kernel rejects such writes.

This module models:

* the ``kubepods/<qos>/<pod>/<container>`` tree with per-group control files;
* the invariant "child limit ≤ parent limit" enforced on every write;
* a per-write latency cost so experiments can measure scaling-operation time
  (a D-VPA resize is a handful of file writes ≈ 23 ms; the native VPA path is
  a pod delete + cold container start ≈ 100× that, §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.resources import ResourceKind, ResourceVector

__all__ = ["CGroup", "CGroupTree", "CGroupError", "WRITE_LATENCY_MS"]

#: Simulated latency of one cgroup control-file write (ms).  Six writes per
#: two-level resize puts a D-VPA operation at ~23 ms, matching §7.1.
WRITE_LATENCY_MS = 3.8

#: cpu.cfs_period_us default used by kubelet.
CFS_PERIOD_US = 100_000

#: cpu.shares per core, K8s convention.
SHARES_PER_CORE = 1024


class CGroupError(RuntimeError):
    """A rejected control-file write (kernel ``EINVAL``/``EBUSY`` analogue)."""


@dataclass
class CGroup:
    """One cgroup directory with its control files."""

    path: str
    parent: Optional["CGroup"] = None
    children: Dict[str, "CGroup"] = field(default_factory=dict)
    #: control files; limits of 0 mean "unlimited" (root groups).
    controls: Dict[str, float] = field(default_factory=dict)

    def control(self, name: str, default: float = 0.0) -> float:
        return self.controls.get(name, default)

    # -- limit views ---------------------------------------------------- #
    def cpu_limit_cores(self) -> float:
        quota = self.control("cpu.cfs_quota_us", -1.0)
        if quota < 0:
            return float("inf")
        return quota / self.control("cpu.cfs_period_us", CFS_PERIOD_US)

    def memory_limit_mib(self) -> float:
        limit = self.control("memory.limit_in_bytes", -1.0)
        if limit < 0:
            return float("inf")
        return limit / (1024.0 * 1024.0)

    def limit_vector(self) -> ResourceVector:
        cpu = self.cpu_limit_cores()
        mem = self.memory_limit_mib()
        return ResourceVector(
            cpu=cpu if cpu != float("inf") else 1e12,
            memory=mem if mem != float("inf") else 1e12,
        )


@dataclass
class WriteRecord:
    """Audit-log entry for one control-file write."""

    path: str
    control: str
    value: float
    time_cost_ms: float


class CGroupTree:
    """The per-node cgroup filesystem under ``/sys/fs/cgroup/.../kubepods``."""

    ROOT_PATH = "/sys/fs/cgroup/cpu,cpuacct/kubepods"

    def __init__(self) -> None:
        self.root = CGroup(path=self.ROOT_PATH)
        for qos in ("guaranteed", "burstable", "besteffort"):
            self._add_child(self.root, qos)
        self.write_log: List[WriteRecord] = []

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def _add_child(self, parent: CGroup, name: str) -> CGroup:
        group = CGroup(path=f"{parent.path}/{name}", parent=parent)
        parent.children[name] = group
        return group

    def qos_group(self, qos: str) -> CGroup:
        key = qos.lower().replace("-", "")
        if key not in self.root.children:
            raise CGroupError(f"unknown QoS class group {qos!r}")
        return self.root.children[key]

    def create_pod_group(
        self,
        qos: str,
        pod_uid: str,
        container_names: List[str],
        *,
        cpu_limit_cores: Optional[float] = None,
        memory_limit_mib: Optional[float] = None,
    ) -> CGroup:
        """Create ``.../<qos>/pod<uid>/<container>`` as kubelet does."""
        parent = self.qos_group(qos)
        pod_name = f"pod{pod_uid}"
        if pod_name in parent.children:
            raise CGroupError(f"pod cgroup {pod_name} already exists")
        pod_group = self._add_child(parent, pod_name)
        self._init_limits(pod_group, cpu_limit_cores, memory_limit_mib)
        for cname in container_names:
            container = self._add_child(pod_group, cname)
            self._init_limits(container, cpu_limit_cores, memory_limit_mib)
        return pod_group

    def remove_pod_group(self, qos: str, pod_uid: str) -> None:
        parent = self.qos_group(qos)
        pod_name = f"pod{pod_uid}"
        if pod_name not in parent.children:
            raise CGroupError(f"pod cgroup {pod_name} does not exist")
        del parent.children[pod_name]

    def pod_group(self, qos: str, pod_uid: str) -> CGroup:
        parent = self.qos_group(qos)
        pod_name = f"pod{pod_uid}"
        if pod_name not in parent.children:
            raise CGroupError(f"pod cgroup {pod_name} does not exist")
        return parent.children[pod_name]

    def _init_limits(
        self,
        group: CGroup,
        cpu_limit_cores: Optional[float],
        memory_limit_mib: Optional[float],
    ) -> None:
        group.controls["cpu.cfs_period_us"] = CFS_PERIOD_US
        if cpu_limit_cores is None:
            group.controls["cpu.cfs_quota_us"] = -1.0
            group.controls["cpu.shares"] = 2  # K8s BestEffort shares
        else:
            group.controls["cpu.cfs_quota_us"] = cpu_limit_cores * CFS_PERIOD_US
            group.controls["cpu.shares"] = max(
                2, int(cpu_limit_cores * SHARES_PER_CORE)
            )
        if memory_limit_mib is None:
            group.controls["memory.limit_in_bytes"] = -1.0
        else:
            group.controls["memory.limit_in_bytes"] = memory_limit_mib * 1024 * 1024

    # ------------------------------------------------------------------ #
    # writes (the D-VPA control flow)
    # ------------------------------------------------------------------ #
    def write(self, group: CGroup, control: str, value: float) -> float:
        """Write one control file; returns simulated latency in ms.

        Enforces the kernel invariant that a group's limit may not exceed its
        parent's limit and may not fall below the sum already granted to its
        children — the reason D-VPA's two-level writes must be ordered.
        """
        self._validate(group, control, value)
        group.controls[control] = value
        record = WriteRecord(group.path, control, value, WRITE_LATENCY_MS)
        self.write_log.append(record)
        return WRITE_LATENCY_MS

    def _validate(self, group: CGroup, control: str, value: float) -> None:
        if control == "cpu.cfs_quota_us":
            if value < 0:
                return  # unlimited is always allowed
            new_cores = value / group.control("cpu.cfs_period_us", CFS_PERIOD_US)
            self._check_bounds(group, new_cores, CGroup.cpu_limit_cores)
        elif control == "memory.limit_in_bytes":
            if value < 0:
                return
            new_mib = value / (1024.0 * 1024.0)
            self._check_bounds(group, new_mib, CGroup.memory_limit_mib)
        elif control in ("cpu.shares", "cpu.cfs_period_us"):
            if value <= 0:
                raise CGroupError(f"{control} must be positive, got {value}")
        else:
            raise CGroupError(f"unknown control file {control!r}")

    @staticmethod
    def _check_bounds(group: CGroup, new_value: float, limit_getter) -> None:
        if group.parent is not None:
            parent_limit = limit_getter(group.parent)
            if new_value > parent_limit + 1e-9:
                raise CGroupError(
                    f"{group.path}: new limit {new_value:.3f} exceeds parent "
                    f"limit {parent_limit:.3f} (writes must go top-down when "
                    "expanding)"
                )
        child_max = 0.0
        for child in group.children.values():
            child_limit = limit_getter(child)
            if child_limit != float("inf"):
                child_max = max(child_max, child_limit)
        if group.children and new_value < child_max - 1e-9:
            raise CGroupError(
                f"{group.path}: new limit {new_value:.3f} is below child "
                f"limit {child_max:.3f} (writes must go bottom-up when "
                "shrinking)"
            )

    # ------------------------------------------------------------------ #
    # resize protocols
    # ------------------------------------------------------------------ #
    def resize_pod(
        self,
        qos: str,
        pod_uid: str,
        container_name: str,
        new_limits: ResourceVector,
    ) -> float:
        """Resize a container via the ordered two-level protocol (§4.2).

        Expansion: pod-level first, then container-level.  Shrink: container
        first, then pod.  Returns the total simulated latency (ms).
        """
        pod_group = self.pod_group(qos, pod_uid)
        if container_name not in pod_group.children:
            raise CGroupError(
                f"container cgroup {container_name} not in {pod_group.path}"
            )
        container = pod_group.children[container_name]
        latency = 0.0
        for kind, control, to_raw in (
            (
                ResourceKind.CPU,
                "cpu.cfs_quota_us",
                lambda cores: cores * CFS_PERIOD_US,
            ),
            (
                ResourceKind.MEMORY,
                "memory.limit_in_bytes",
                lambda mib: mib * 1024 * 1024,
            ),
        ):
            target = new_limits.get(kind)
            if target <= 0:
                continue
            current = (
                container.cpu_limit_cores()
                if kind is ResourceKind.CPU
                else container.memory_limit_mib()
            )
            expanding = target > current
            order = (pod_group, container) if expanding else (container, pod_group)
            for group in order:
                latency += self.write(group, control, to_raw(target))
            if kind is ResourceKind.CPU:
                latency += self.write(
                    container,
                    "cpu.shares",
                    max(2, int(target * SHARES_PER_CORE)),
                )
        return latency
