"""Horizontal Pod Autoscaler — the slow-elasticity baseline.

§2.1 notes horizontal scaling "is relatively time-consuming for
millisecond-level LC services due to long container start-up time".  We model
the upstream HPA control loop faithfully enough to demonstrate that: the
desired replica count follows the standard ratio formula

    desired = ceil(current * observed_utilisation / target_utilisation)

with a stabilisation window on scale-down and a sync period between
evaluations; every added replica pays the cold-start latency from
:mod:`repro.kube.kubelet` before it serves traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["HorizontalPodAutoscaler", "HPADecision"]


@dataclass
class HPADecision:
    desired_replicas: int
    reason: str


class HorizontalPodAutoscaler:
    """Replica controller for one service."""

    def __init__(
        self,
        *,
        min_replicas: int = 1,
        max_replicas: int = 10,
        target_utilization: float = 0.6,
        sync_period_ms: float = 15_000.0,
        scale_down_stabilization_ms: float = 300_000.0,
        tolerance: float = 0.1,
    ) -> None:
        if not 0 < target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError("invalid replica bounds")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.target_utilization = target_utilization
        self.sync_period_ms = sync_period_ms
        self.scale_down_stabilization_ms = scale_down_stabilization_ms
        self.tolerance = tolerance
        self._last_sync_ms: Optional[float] = None
        self._recommendations: List[tuple] = []  # (time_ms, replicas)

    def evaluate(
        self,
        now_ms: float,
        current_replicas: int,
        observed_utilization: float,
    ) -> Optional[HPADecision]:
        """Run one control-loop iteration; None when between sync periods."""
        if (
            self._last_sync_ms is not None
            and now_ms - self._last_sync_ms < self.sync_period_ms
        ):
            return None
        self._last_sync_ms = now_ms

        ratio = observed_utilization / self.target_utilization
        if abs(ratio - 1.0) <= self.tolerance:
            desired = current_replicas
        else:
            desired = math.ceil(current_replicas * ratio)
        desired = max(self.min_replicas, min(self.max_replicas, desired))

        # Scale-down stabilisation: never drop below the max recommendation
        # seen within the window (upstream behaviour).
        self._recommendations.append((now_ms, desired))
        cutoff = now_ms - self.scale_down_stabilization_ms
        self._recommendations = [
            (t, r) for t, r in self._recommendations if t >= cutoff
        ]
        if desired < current_replicas:
            stabilized = max(r for _, r in self._recommendations)
            desired = min(current_replicas, max(desired, stabilized))
            reason = "scale-down (stabilized)"
        elif desired > current_replicas:
            reason = "scale-up"
        else:
            reason = "steady"
        return HPADecision(desired_replicas=desired, reason=reason)
