"""The native K8s scheduler and service-proxy traffic policy.

Two distinct "K8s-native" behaviours appear in the paper's baselines:

* **Pod placement** — the default kube-scheduler's filter/score pipeline.
  We implement PodFitsResources filtering plus the classic
  ``LeastRequestedPriority`` score, which is what §7 calls "K8s-native"
  placement.
* **Traffic dispatch** — kube-proxy's round-robin over service endpoints
  (§2.1: "K8s only provides simplistic policies such as round-robin"), used
  as the K8s-native request scheduling baseline in Figs. 11–13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.resources import ResourceVector

from .objects import NodeInfo, Pod

__all__ = ["KubeScheduler", "RoundRobinProxy", "NodeView"]


@dataclass
class NodeView:
    """Scheduler-visible snapshot of a node."""

    name: str
    allocatable: ResourceVector
    allocated: ResourceVector

    def free(self) -> ResourceVector:
        return (self.allocatable - self.allocated).clamp_min(0.0)


class KubeScheduler:
    """Default scheduler: PodFitsResources filter + LeastRequested score."""

    def __init__(self) -> None:
        self.scheduled_count = 0

    def select_node(
        self, pod: Pod, nodes: Sequence[NodeView]
    ) -> Optional[str]:
        demand = pod.spec.total_requests()
        feasible = [n for n in nodes if demand.fits_in(n.free())]
        if not feasible:
            return None
        best_name, best_score = None, -1.0
        for node in feasible:
            score = self._least_requested_score(demand, node)
            if score > best_score:
                best_name, best_score = node.name, score
        self.scheduled_count += 1
        return best_name

    @staticmethod
    def _least_requested_score(demand: ResourceVector, node: NodeView) -> float:
        """K8s LeastRequestedPriority: mean of free-fraction post-placement."""
        after = node.allocated + demand
        scores = []
        for cap, used in (
            (node.allocatable.cpu, after.cpu),
            (node.allocatable.memory, after.memory),
        ):
            if cap <= 0:
                return -1.0
            scores.append(max(0.0, (cap - used) / cap))
        return sum(scores) / len(scores)


class RoundRobinProxy:
    """kube-proxy style round-robin over a rotating endpoint list.

    Keeps one cursor per service so interleaved services don't perturb each
    other, exactly like iptables/IPVS round-robin does per Service.
    """

    def __init__(self) -> None:
        self._cursors: Dict[str, int] = {}

    def next_endpoint(self, service: str, endpoints: Sequence[str]) -> Optional[str]:
        if not endpoints:
            return None
        cursor = self._cursors.get(service, 0)
        choice = endpoints[cursor % len(endpoints)]
        self._cursors[service] = cursor + 1
        return choice

    def reset(self, service: Optional[str] = None) -> None:
        if service is None:
            self._cursors.clear()
        else:
            self._cursors.pop(service, None)
