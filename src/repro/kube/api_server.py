"""In-memory Kubernetes API server: typed object store with watch semantics.

Tango's components (Fig. 3) interact with the cluster exclusively through the
K8s API server — the LC traffic dispatcher reads node state, the D-VPA
patches pod resources, Prometheus pushes metrics into the state storage.
This module provides the storage and eventing core: CRUD over (kind,
namespace, name) keys, optimistic concurrency via ``resourceVersion``, and
watch streams that deliver ADDED / MODIFIED / DELETED events to subscribers,
mirroring the real API machinery at behaviour level.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["ApiServer", "WatchEvent", "EventType", "ConflictError", "NotFoundError"]


class EventType(str, Enum):
    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclass
class WatchEvent:
    type: EventType
    kind: str
    namespace: str
    name: str
    obj: Any
    resource_version: int


class ConflictError(Exception):
    """Raised on a stale-resourceVersion update (HTTP 409 equivalent)."""


class NotFoundError(KeyError):
    """Raised when an object does not exist (HTTP 404 equivalent)."""


_Key = Tuple[str, str, str]


class ApiServer:
    """The cluster's source of truth for API objects."""

    def __init__(self) -> None:
        self._store: Dict[_Key, Any] = {}
        self._versions: Dict[_Key, int] = {}
        self._global_version = 0
        self._watchers: List[Tuple[Optional[str], Callable[[WatchEvent], None]]] = []

    # ------------------------------------------------------------------ #
    # CRUD
    # ------------------------------------------------------------------ #
    def create(
        self, kind: str, name: str, obj: Any, namespace: str = "default"
    ) -> int:
        key = (kind, namespace, name)
        if key in self._store:
            raise ConflictError(f"{kind} {namespace}/{name} already exists")
        self._store[key] = obj
        version = self._bump(key)
        self._notify(EventType.ADDED, key, obj, version)
        return version

    def get(self, kind: str, name: str, namespace: str = "default") -> Any:
        try:
            return self._store[(kind, namespace, name)]
        except KeyError:
            raise NotFoundError(f"{kind} {namespace}/{name}") from None

    def exists(self, kind: str, name: str, namespace: str = "default") -> bool:
        return (kind, namespace, name) in self._store

    def update(
        self,
        kind: str,
        name: str,
        obj: Any,
        namespace: str = "default",
        expected_version: Optional[int] = None,
    ) -> int:
        key = (kind, namespace, name)
        if key not in self._store:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        if expected_version is not None and self._versions[key] != expected_version:
            raise ConflictError(
                f"{kind} {namespace}/{name}: version {expected_version} is stale "
                f"(current {self._versions[key]})"
            )
        self._store[key] = obj
        version = self._bump(key)
        self._notify(EventType.MODIFIED, key, obj, version)
        return version

    def patch(
        self,
        kind: str,
        name: str,
        mutate: Callable[[Any], None],
        namespace: str = "default",
    ) -> int:
        """Read-modify-write in one step (strategic-merge-patch equivalent)."""
        obj = self.get(kind, name, namespace)
        mutate(obj)
        return self.update(kind, name, obj, namespace)

    def delete(self, kind: str, name: str, namespace: str = "default") -> Any:
        key = (kind, namespace, name)
        if key not in self._store:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        obj = self._store.pop(key)
        version = self._bump(key, removed=True)
        self._notify(EventType.DELETED, key, obj, version)
        return obj

    def list(self, kind: str, namespace: Optional[str] = None) -> List[Any]:
        return [
            obj
            for (k, ns, _), obj in sorted(
                self._store.items(), key=lambda item: item[0]
            )
            if k == kind and (namespace is None or ns == namespace)
        ]

    def list_items(
        self, kind: str, namespace: Optional[str] = None
    ) -> Iterator[Tuple[str, str, Any]]:
        for (k, ns, name), obj in sorted(
            self._store.items(), key=lambda item: item[0]
        ):
            if k == kind and (namespace is None or ns == namespace):
                yield ns, name, obj

    def resource_version(
        self, kind: str, name: str, namespace: str = "default"
    ) -> int:
        key = (kind, namespace, name)
        if key not in self._versions:
            raise NotFoundError(f"{kind} {namespace}/{name}")
        return self._versions[key]

    # ------------------------------------------------------------------ #
    # watch
    # ------------------------------------------------------------------ #
    def watch(
        self,
        callback: Callable[[WatchEvent], None],
        kind: Optional[str] = None,
    ) -> Callable[[], None]:
        """Subscribe to events (optionally one kind); returns an unsubscribe."""
        entry = (kind, callback)
        self._watchers.append(entry)

        def cancel() -> None:
            if entry in self._watchers:
                self._watchers.remove(entry)

        return cancel

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _bump(self, key: _Key, removed: bool = False) -> int:
        self._global_version += 1
        if removed:
            self._versions.pop(key, None)
        else:
            self._versions[key] = self._global_version
        return self._global_version

    def _notify(self, etype: EventType, key: _Key, obj: Any, version: int) -> None:
        kind, namespace, name = key
        event = WatchEvent(etype, kind, namespace, name, obj, version)
        for want_kind, callback in list(self._watchers):
            if want_kind is None or want_kind == kind:
                callback(event)
