"""The native K8s Vertical Pod Autoscaler — the delete-and-rebuild baseline.

§4.2 ("Pain Points"): native K8s cannot modify a running pod's resource list;
the upstream VPA plugin resizes by *evicting* the pod and letting it be
recreated with new requests.  That costs a full teardown plus a cold
container start and interrupts the workload — the paper measures D-VPA's
in-place resize at 23 ms, "approximately 100 times" faster than this path.

This module reproduces the plugin at behaviour level: a recommender tracking
usage percentiles, and an updater that performs the disruptive resize and
accounts its latency and downtime so the D-VPA comparison bench
(``benchmarks/test_dvpa_latency.py``) can measure both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.resources import ResourceKind, ResourceVector

from .kubelet import CONTAINER_COLD_START_MS, POD_TEARDOWN_MS
from .objects import ContainerSpec, Pod, PodPhase, PodSpec

__all__ = ["NativeVPA", "VPARecommendation", "ResizeOutcome"]


@dataclass
class VPARecommendation:
    """Target requests computed from observed usage."""

    target: ResourceVector
    lower_bound: ResourceVector
    upper_bound: ResourceVector


@dataclass
class ResizeOutcome:
    """Cost accounting for one resize operation."""

    new_pod: Pod
    latency_ms: float
    downtime_ms: float
    interrupted: bool


class NativeVPA:
    """Recommender + delete-and-rebuild updater, as the upstream plugin."""

    #: safety margin applied over the usage percentile, as the real
    #: recommender's ``recommendation-margin-fraction`` (default 15%).
    MARGIN = 1.15
    #: usage percentile targeted by the recommender.
    TARGET_PERCENTILE = 90.0

    def __init__(self, history_len: int = 64) -> None:
        self.history_len = history_len
        self._usage: Dict[str, List[ResourceVector]] = {}
        self.resize_count = 0
        self.total_downtime_ms = 0.0

    # ------------------------------------------------------------------ #
    # recommender
    # ------------------------------------------------------------------ #
    def observe(self, pod_key: str, usage: ResourceVector) -> None:
        history = self._usage.setdefault(pod_key, [])
        history.append(usage)
        if len(history) > self.history_len:
            history.pop(0)

    def recommend(self, pod_key: str) -> Optional[VPARecommendation]:
        history = self._usage.get(pod_key)
        if not history:
            return None
        cpu = np.percentile([u.cpu for u in history], self.TARGET_PERCENTILE)
        mem = np.percentile([u.memory for u in history], self.TARGET_PERCENTILE)
        target = ResourceVector(cpu=cpu * self.MARGIN, memory=mem * self.MARGIN)
        return VPARecommendation(
            target=target,
            lower_bound=target * 0.8,
            upper_bound=target * 1.5,
        )

    def needs_resize(self, pod: Pod, rec: VPARecommendation) -> bool:
        """Resize only when current requests leave the recommendation band."""
        current = pod.spec.total_requests()
        for kind in (ResourceKind.CPU, ResourceKind.MEMORY):
            cur = current.get(kind)
            if cur < rec.lower_bound.get(kind) or cur > rec.upper_bound.get(kind):
                return True
        return False

    # ------------------------------------------------------------------ #
    # updater (the disruptive path)
    # ------------------------------------------------------------------ #
    def resize(self, pod: Pod, new_requests: ResourceVector) -> ResizeOutcome:
        """Delete-and-rebuild the pod with new requests.

        The returned latency covers teardown + cold start; the workload is
        down for the whole interval (``interrupted=True``), which is what the
        D-VPA design removes.
        """
        pod.phase = PodPhase.FAILED
        pod.deleted = True
        containers = [
            ContainerSpec(
                name=c.name,
                requests=self._scale_to(c.requests, new_requests, pod.spec),
                limits=self._scale_to(c.effective_limits(), new_requests, pod.spec),
            )
            for c in pod.spec.containers
        ]
        new_pod = Pod(
            name=pod.name,
            namespace=pod.namespace,
            labels=dict(pod.labels),
            spec=PodSpec(
                containers=containers,
                node_name=pod.spec.node_name,
                service_name=pod.spec.service_name,
                priority=pod.spec.priority,
            ),
        )
        latency = POD_TEARDOWN_MS + CONTAINER_COLD_START_MS
        self.resize_count += 1
        self.total_downtime_ms += latency
        return ResizeOutcome(
            new_pod=new_pod,
            latency_ms=latency,
            downtime_ms=latency,
            interrupted=True,
        )

    @staticmethod
    def _scale_to(
        current: ResourceVector, pod_target: ResourceVector, spec: PodSpec
    ) -> ResourceVector:
        """Distribute the pod-level target over containers pro-rata."""
        pod_current = spec.total_requests()
        result = current
        for kind in (ResourceKind.CPU, ResourceKind.MEMORY):
            total = pod_current.get(kind)
            share = current.get(kind) / total if total > 0 else 1.0 / max(
                1, len(spec.containers)
            )
            result = result.replace(kind, pod_target.get(kind) * share)
        return result
