"""K8s-style event recorder: the cluster's human-readable audit stream.

Real clusters expose ``kubectl get events`` — Scheduled/Pulled/Started/
Killing records that operators use to debug scheduling and eviction
behaviour.  The substrate components emit the same stream through
:class:`EventRecorder`; Tango's HRM emits additional events for the
behaviours the paper introduces (D-VPA resizes, preemptive squeezes,
incompressible evictions), making every experiment auditable after the
fact.

Since the observability subsystem landed, the recorder no longer sits on
any hot path directly: when a run enables event recording the runner
publishes typed events on the :class:`repro.obs.bus.EventBus` and a
:class:`repro.obs.bridges.KubeEventBridge` renders them into this stream.
Capacity and dedup window are surfaced as ``RunnerConfig.event_capacity``
and ``RunnerConfig.event_dedup_window_ms``.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ClusterEvent", "EventRecorder", "Reason"]

_sequence = itertools.count(1)


class Reason:
    """Well-known event reasons (mirrors upstream kubelet/scheduler ones)."""

    SCHEDULED = "Scheduled"
    STARTED = "Started"
    EVICTED = "Evicted"
    FAILED_SCHEDULING = "FailedScheduling"
    # Tango-specific reasons
    DVPA_RESIZED = "DVPAResized"
    BE_SQUEEZED = "BESqueezed"
    QOS_ADJUSTED = "QoSAdjusted"
    NODE_DOWN = "NodeDown"
    NODE_RECOVERED = "NodeRecovered"
    PARTITIONED = "WANPartition"
    PARTITION_HEALED = "WANPartitionHealed"


@dataclass(frozen=True)
class ClusterEvent:
    time_ms: float
    reason: str
    #: object the event is about, e.g. "pod/web-1" or "node/c0-w2"
    involved: str
    message: str
    #: Normal | Warning, as upstream
    type: str = "Normal"
    sequence: int = field(default_factory=lambda: next(_sequence))


class EventRecorder:
    """Bounded in-memory event log with counting dedup, like the API server.

    Repeated (reason, involved) pairs within ``dedup_window_ms`` are
    aggregated into a count instead of new entries — upstream does exactly
    this to survive crash-looping pods.
    """

    def __init__(self, capacity: int = 1000, dedup_window_ms: float = 1_000.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dedup_window_ms = dedup_window_ms
        self._events: List[ClusterEvent] = []
        self._counts: Counter = Counter()
        self._last_seen: Dict[tuple, float] = {}

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(
        self,
        time_ms: float,
        reason: str,
        involved: str,
        message: str,
        *,
        type: str = "Normal",
    ) -> Optional[ClusterEvent]:
        """Record an event; returns None when deduplicated into a count."""
        key = (reason, involved)
        self._counts[key] += 1
        last = self._last_seen.get(key)
        self._last_seen[key] = time_ms
        if last is not None and time_ms - last < self.dedup_window_ms:
            return None
        event = ClusterEvent(
            time_ms=time_ms, reason=reason, involved=involved,
            message=message, type=type,
        )
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.pop(0)
        return event

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def events(
        self,
        reason: Optional[str] = None,
        involved: Optional[str] = None,
    ) -> List[ClusterEvent]:
        out = self._events
        if reason is not None:
            out = [e for e in out if e.reason == reason]
        if involved is not None:
            out = [e for e in out if e.involved == involved]
        return list(out)

    def count(self, reason: str, involved: Optional[str] = None) -> int:
        """Total emissions (including deduplicated ones)."""
        if involved is not None:
            return self._counts[(reason, involved)]
        return sum(
            c for (r, _), c in self._counts.items() if r == reason
        )

    def tail(self, n: int = 20) -> List[ClusterEvent]:
        return self._events[-n:]

    def render(self, n: int = 20) -> str:
        """``kubectl get events``-style text block."""
        lines = ["TIME(s)   TYPE     REASON              OBJECT                MESSAGE"]
        for e in self.tail(n):
            lines.append(
                f"{e.time_ms/1000.0:<9.2f} {e.type:<8s} {e.reason:<19s} "
                f"{e.involved:<21s} {e.message}"
            )
        return "\n".join(lines)
