"""Behaviour-level kubelet: pod lifecycle and cgroup setup on one node.

The kubelet watches the API server for pods bound to its node, "starts"
containers (with a realistic cold-start latency — the reason horizontal
scaling and delete-and-rebuild VPA are too slow for millisecond LC services,
§2.1), builds the pod's cgroup subtree, and tears everything down on delete.

Time is simulated: ``sync(now_ms)`` is called by the engine each tick and the
kubelet transitions pods whose start deadline has passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector

from .api_server import ApiServer, EventType, WatchEvent
from .cgroups import CGroupTree
from .objects import Pod, PodPhase

__all__ = ["Kubelet", "CONTAINER_COLD_START_MS"]

#: Cold container start latency (image already pulled).  Matches the order of
#: magnitude behind the paper's "~100×" D-VPA advantage: a delete-and-rebuild
#: resize costs one of these plus teardown, ≈ 2.3 s vs D-VPA's 23 ms.
CONTAINER_COLD_START_MS = 2200.0

#: Pod teardown (SIGTERM grace handling compressed for simulation).
POD_TEARDOWN_MS = 100.0


@dataclass
class _PendingStart:
    pod: Pod
    ready_at_ms: float


class Kubelet:
    """Node agent driving pods through Pending → Running → terminal phases."""

    def __init__(
        self,
        node_name: str,
        api: ApiServer,
        *,
        capacity: ResourceVector,
    ) -> None:
        self.node_name = node_name
        self.api = api
        self.capacity = capacity
        self.cgroups = CGroupTree()
        self._pending: Dict[str, _PendingStart] = {}
        self._running: Dict[str, Pod] = {}
        self._cancel_watch = api.watch(self._on_event, kind="Pod")
        self.started_count = 0
        self.evicted_count = 0

    # ------------------------------------------------------------------ #
    # watch plumbing
    # ------------------------------------------------------------------ #
    def _on_event(self, event: WatchEvent) -> None:
        pod: Pod = event.obj
        if pod.spec.node_name != self.node_name:
            return
        if event.type == EventType.DELETED:
            self._teardown(pod)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def admit(self, pod: Pod, now_ms: float) -> bool:
        """Accept a bound pod if its requests fit remaining allocatable."""
        demand = pod.spec.total_requests()
        if not demand.fits_in(self.free_allocatable()):
            return False
        self._pending[pod.key()] = _PendingStart(
            pod=pod, ready_at_ms=now_ms + CONTAINER_COLD_START_MS
        )
        limits = pod.spec.total_limits()
        self.cgroups.create_pod_group(
            pod.qos_class.value,
            pod.uid,
            [c.name for c in pod.spec.containers],
            cpu_limit_cores=limits.cpu if limits.cpu > 0 else None,
            memory_limit_mib=limits.memory if limits.memory > 0 else None,
        )
        return True

    def sync(self, now_ms: float) -> List[Pod]:
        """Advance pending pods whose cold start completed; return them."""
        became_ready: List[Pod] = []
        for key in list(self._pending):
            entry = self._pending[key]
            if now_ms >= entry.ready_at_ms:
                del self._pending[key]
                pod = entry.pod
                pod.phase = PodPhase.RUNNING
                pod.started_at_ms = now_ms
                self._running[key] = pod
                self.started_count += 1
                became_ready.append(pod)
                if self.api.exists("Pod", pod.name, pod.namespace):
                    self.api.update("Pod", pod.name, pod, pod.namespace)
        return became_ready

    def evict(self, pod: Pod) -> None:
        """Forcibly remove a running pod (BE eviction under preemption)."""
        self._teardown(pod)
        pod.phase = PodPhase.FAILED
        self.evicted_count += 1
        if self.api.exists("Pod", pod.name, pod.namespace):
            self.api.update("Pod", pod.name, pod, pod.namespace)

    def _teardown(self, pod: Pod) -> None:
        self._pending.pop(pod.key(), None)
        self._running.pop(pod.key(), None)
        try:
            self.cgroups.remove_pod_group(pod.qos_class.value, pod.uid)
        except Exception:
            pass  # already gone (delete raced with eviction)

    # ------------------------------------------------------------------ #
    # resource accounting
    # ------------------------------------------------------------------ #
    def allocated(self) -> ResourceVector:
        total = ResourceVector()
        for entry in self._pending.values():
            total = total + entry.pod.spec.total_requests()
        for pod in self._running.values():
            total = total + pod.spec.total_requests()
        return total

    def free_allocatable(self) -> ResourceVector:
        return (self.capacity - self.allocated()).clamp_min(0.0)

    def running_pods(self) -> List[Pod]:
        return list(self._running.values())

    def pod_count(self) -> int:
        return len(self._pending) + len(self._running)

    def close(self) -> None:
        self._cancel_watch()
