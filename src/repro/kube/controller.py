"""Deployment-style replica controller closing the HPA loop.

The K8s substrate gains the piece that makes the HPA actionable: a
reconciling controller that owns a ReplicaSet of identical pods, watches
the API server, and converges the observed replica count to the desired
one — creating pods (which then pay scheduler placement + kubelet cold
start) or deleting the youngest ones on scale-down, exactly like the
upstream Deployment controller's default behaviour.

Tango itself does not scale horizontally (D-VPA replaces that), but the
§2.1 comparison — "horizontal scaling is relatively time-consuming for
millisecond-level LC services" — needs a working HPA + Deployment pipeline
to measure, and downstream users of the substrate get the standard K8s
trio: Deployment → scheduler → kubelet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.resources import ResourceVector

from .api_server import ApiServer, NotFoundError
from .objects import ContainerSpec, Pod, PodPhase, PodSpec
from .scheduler import KubeScheduler, NodeView

__all__ = ["Deployment", "DeploymentController", "ReconcileResult"]

_generation = itertools.count(1)


@dataclass
class Deployment:
    """Desired state: N replicas of one pod template."""

    name: str
    replicas: int
    template: PodSpec
    namespace: str = "default"
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replicas must be non-negative")
        self.labels.setdefault("app", self.name)


@dataclass
class ReconcileResult:
    created: List[str]
    deleted: List[str]
    unschedulable: int

    @property
    def changed(self) -> bool:
        return bool(self.created or self.deleted)


class DeploymentController:
    """Reconciles Deployments against the API server."""

    def __init__(
        self,
        api: ApiServer,
        scheduler: Optional[KubeScheduler] = None,
    ) -> None:
        self.api = api
        self.scheduler = scheduler or KubeScheduler()
        self._revision = itertools.count(1)

    # ------------------------------------------------------------------ #
    # desired state
    # ------------------------------------------------------------------ #
    def apply(self, deployment: Deployment) -> None:
        if self.api.exists("Deployment", deployment.name, deployment.namespace):
            self.api.update(
                "Deployment", deployment.name, deployment, deployment.namespace
            )
        else:
            self.api.create(
                "Deployment", deployment.name, deployment, deployment.namespace
            )

    def scale(self, name: str, replicas: int, namespace: str = "default") -> None:
        if replicas < 0:
            raise ValueError("replicas must be non-negative")

        def mutate(deployment: Deployment) -> None:
            deployment.replicas = replicas

        self.api.patch("Deployment", name, mutate, namespace)

    # ------------------------------------------------------------------ #
    # reconciliation
    # ------------------------------------------------------------------ #
    def owned_pods(self, deployment: Deployment) -> List[Pod]:
        return [
            pod
            for pod in self.api.list("Pod", deployment.namespace)
            if pod.labels.get("app") == deployment.labels["app"]
            and not pod.deleted
            and pod.phase is not PodPhase.FAILED
        ]

    def reconcile(
        self,
        deployment_name: str,
        nodes: Sequence[NodeView],
        namespace: str = "default",
    ) -> ReconcileResult:
        """One reconcile pass: converge actual replicas toward desired."""
        deployment: Deployment = self.api.get(
            "Deployment", deployment_name, namespace
        )
        pods = self.owned_pods(deployment)
        created: List[str] = []
        deleted: List[str] = []
        unschedulable = 0

        deficit = deployment.replicas - len(pods)
        for _ in range(max(0, deficit)):
            pod = self._new_pod(deployment)
            target = self.scheduler.select_node(pod, nodes)
            if target is None:
                unschedulable += 1
                continue
            pod.spec.node_name = target
            self.api.create("Pod", pod.name, pod, namespace)
            created.append(pod.name)

        # scale-down: delete the youngest pods first (upstream default)
        surplus = len(pods) - deployment.replicas
        if surplus > 0:
            for pod in sorted(pods, key=lambda p: p.uid, reverse=True)[:surplus]:
                pod.deleted = True
                try:
                    self.api.delete("Pod", pod.name, namespace)
                except NotFoundError:
                    pass
                deleted.append(pod.name)
        return ReconcileResult(created, deleted, unschedulable)

    def _new_pod(self, deployment: Deployment) -> Pod:
        revision = next(self._revision)
        template = deployment.template
        spec = PodSpec(
            containers=[
                ContainerSpec(
                    name=c.name, requests=c.requests, limits=c.limits
                )
                for c in template.containers
            ],
            service_name=template.service_name,
            priority=template.priority,
        )
        return Pod(
            name=f"{deployment.name}-{revision:05d}",
            spec=spec,
            namespace=deployment.namespace,
            labels=dict(deployment.labels),
        )
