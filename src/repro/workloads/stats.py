"""Trace statistics: the summaries used to sanity-check workload realism.

Before trusting experiment results, one should check the trace actually has
the marginals the paper relies on (diurnal shape, LC/BE mix, per-type
demand heterogeneity, geographic skew).  :func:`summarize_trace` computes
them; tests pin them for the synthetic generator; examples print them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .spec import ServiceKind
from .trace import TraceRecord

__all__ = ["TraceSummary", "summarize_trace", "arrival_series"]


@dataclass
class TraceSummary:
    n_records: int
    duration_ms: float
    lc_fraction: float
    #: requests/second overall
    mean_rps: float
    #: max-over-buckets / mean (burstiness indicator)
    peak_to_mean: float
    #: per-cluster share of requests (geographic skew)
    cluster_share: Dict[int, float]
    #: per-service request counts
    service_mix: Dict[str, int]
    #: mean CPU demand per kind
    mean_cpu: Dict[str, float]

    def skew_ratio(self) -> float:
        """Max/min cluster share — 1.0 means perfectly even load."""
        shares = list(self.cluster_share.values())
        if not shares or min(shares) <= 0:
            return float("inf")
        return max(shares) / min(shares)


def arrival_series(
    records: Sequence[TraceRecord],
    bucket_ms: float = 1_000.0,
    kind: ServiceKind = None,
) -> np.ndarray:
    """Arrival counts per time bucket (optionally filtered by kind)."""
    if not records:
        return np.zeros(0)
    horizon = max(r.time_ms for r in records)
    n_buckets = int(horizon / bucket_ms) + 1
    series = np.zeros(n_buckets)
    for r in records:
        if kind is not None and r.kind is not kind:
            continue
        series[min(n_buckets - 1, int(r.time_ms / bucket_ms))] += 1
    return series


def summarize_trace(records: Sequence[TraceRecord]) -> TraceSummary:
    if not records:
        return TraceSummary(
            n_records=0, duration_ms=0.0, lc_fraction=0.0, mean_rps=0.0,
            peak_to_mean=0.0, cluster_share={}, service_mix={}, mean_cpu={},
        )
    duration_ms = max(r.time_ms for r in records)
    lc_count = sum(1 for r in records if r.kind is ServiceKind.LC)
    series = arrival_series(records)
    mean_arrivals = float(series.mean()) if len(series) else 0.0
    cluster_counts = Counter(r.cluster_id for r in records)
    total = len(records)
    cpu_by_kind: Dict[str, List[float]] = {"LC": [], "BE": []}
    for r in records:
        cpu_by_kind[r.kind.value].append(r.cpu)
    return TraceSummary(
        n_records=total,
        duration_ms=duration_ms,
        lc_fraction=lc_count / total,
        mean_rps=total / max(duration_ms / 1000.0, 1e-9),
        peak_to_mean=float(series.max() / mean_arrivals)
        if mean_arrivals > 0
        else 0.0,
        cluster_share={
            cid: count / total for cid, count in sorted(cluster_counts.items())
        },
        service_mix=dict(Counter(r.service for r in records)),
        mean_cpu={
            kind: float(np.mean(values)) if values else 0.0
            for kind, values in cpu_by_kind.items()
        },
    )
