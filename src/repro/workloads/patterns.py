"""The three request patterns used in the HRM experiments (§7.1, Fig. 9(a)).

* **P1** — LC requests arrive *periodically* (a smooth sinusoidal schedule),
  BE requests arrive *randomly* (Poisson at constant mean).
* **P2** — BE periodic, LC random.
* **P3** — both random.

Each pattern yields per-tick arrival counts for one physical-scale cluster.
Rates are expressed in requests/second and converted by the generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .spec import ServiceKind, ServiceSpec, default_catalog
from .trace import TraceRecord

__all__ = ["PatternKind", "PatternConfig", "PatternWorkload"]


class PatternKind(str, Enum):
    P1 = "P1"  # LC periodic, BE random
    P2 = "P2"  # BE periodic, LC random
    P3 = "P3"  # both random


@dataclass
class PatternConfig:
    pattern: PatternKind = PatternKind.P1
    duration_ms: float = 60_000.0
    lc_mean_rps: float = 8.0
    be_mean_rps: float = 2.0
    #: period of the sinusoidal component (ms).
    period_ms: float = 8_000.0
    #: peak-to-mean ratio of the periodic component.
    amplitude: float = 0.8
    seed: int = 0


class PatternWorkload:
    """Generate a trace for one of the P1/P2/P3 patterns on one cluster."""

    def __init__(
        self,
        config: Optional[PatternConfig] = None,
        catalog: Optional[List[ServiceSpec]] = None,
    ) -> None:
        self.config = config or PatternConfig()
        self.catalog = list(catalog or default_catalog())
        self._lc = [s for s in self.catalog if s.kind is ServiceKind.LC]
        self._be = [s for s in self.catalog if s.kind is ServiceKind.BE]

    def _periodic(self, t_ms: float, mean_rps: float) -> float:
        cfg = self.config
        phase = 2.0 * math.pi * t_ms / cfg.period_ms
        return max(0.0, mean_rps * (1.0 + cfg.amplitude * math.sin(phase)))

    def rates_at(self, t_ms: float) -> Tuple[float, float]:
        """(lc_rps, be_rps) at time t under the configured pattern."""
        cfg = self.config
        if cfg.pattern is PatternKind.P1:
            return self._periodic(t_ms, cfg.lc_mean_rps), cfg.be_mean_rps
        if cfg.pattern is PatternKind.P2:
            return cfg.lc_mean_rps, self._periodic(t_ms, cfg.be_mean_rps)
        return cfg.lc_mean_rps, cfg.be_mean_rps

    def generate(self, cluster_id: int = 0) -> List[TraceRecord]:
        cfg = self.config
        # stable per-pattern stream (str.__hash__ is randomised per process
        # and must never reach a seed)
        pattern_index = list(PatternKind).index(cfg.pattern)
        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, pattern_index])
        )
        records: List[TraceRecord] = []
        step_ms = 100.0
        for step in range(int(cfg.duration_ms / step_ms)):
            t0 = step * step_ms
            lc_rps, be_rps = self.rates_at(t0)
            for kind, rps, specs in (
                (ServiceKind.LC, lc_rps, self._lc),
                (ServiceKind.BE, be_rps, self._be),
            ):
                lam = rps * step_ms / 1000.0
                # random components are Poisson; periodic components are
                # near-deterministic (small dispersion around the schedule)
                periodic = (
                    (cfg.pattern is PatternKind.P1 and kind is ServiceKind.LC)
                    or (cfg.pattern is PatternKind.P2 and kind is ServiceKind.BE)
                )
                if periodic:
                    count = int(lam) + (1 if rng.random() < (lam % 1.0) else 0)
                else:
                    count = int(rng.poisson(lam))
                for _ in range(count):
                    spec = specs[int(rng.integers(len(specs)))]
                    jitter = float(rng.uniform(0.9, 1.15))
                    records.append(
                        TraceRecord(
                            time_ms=t0 + float(rng.uniform(0, step_ms)),
                            cluster_id=cluster_id,
                            service=spec.name,
                            kind=kind,
                            cpu=spec.reference_resources.cpu * jitter,
                            memory=spec.reference_resources.memory * jitter,
                        )
                    )
        records.sort(key=lambda r: r.time_ms)
        return records
