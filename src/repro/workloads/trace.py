"""Synthetic workload trace generator — the Google 2019 cluster-data stand-in.

The paper drives its experiments with ``<EventType, SCHEDULE>`` /
``<CollectionType, JOB>`` records from the 2019 Google cluster trace (8.08 GB
of raw data, §6.2).  That trace cannot ship with this reproduction, so we
generate records with the same *structure and marginals the paper actually
uses*:

* 10 service types from :mod:`repro.workloads.spec`, split LC/BE by
  ``LatencySensitivity`` tier;
* a diurnal arrival-rate curve (Fig. 1(a): pronounced afternoon/evening
  peaks, overall resource usage < 20 % when LC runs alone);
* per-cluster geographic load skew (§1: "user requests' loads are uneven and
  fluctuating across geographical locations") via cluster-specific phase
  offsets and weights;
* heavy-tailed arrival bursts (Gamma-modulated Poisson) matching the bursty
  industrial traces.

Every record is a :class:`TraceRecord`; the generator is deterministic for a
given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .spec import ServiceKind, ServiceSpec, default_catalog

__all__ = ["TraceRecord", "TraceConfig", "SyntheticTrace", "diurnal_rate"]


@dataclass(frozen=True)
class TraceRecord:
    """One SCHEDULE event: a request for a service arriving at a cluster."""

    time_ms: float
    cluster_id: int
    service: str
    kind: ServiceKind
    #: trace-reported resource expectation (what K8s-native would reserve).
    cpu: float
    memory: float


@dataclass
class TraceConfig:
    n_clusters: int = 4
    duration_ms: float = 120_000.0
    #: mean LC arrivals per second per cluster at the diurnal peak.
    lc_peak_rps: float = 30.0
    #: mean BE arrivals per second per cluster at the diurnal peak.
    be_peak_rps: float = 8.0
    #: simulated trace start, as hour-of-day (controls the diurnal phase).
    start_hour: float = 12.0
    #: how many trace hours elapse per simulated wall-clock second; the
    #: experiments compress a day into a couple of minutes.
    hours_per_second: float = 0.2
    seed: int = 0
    burstiness: float = 0.35


def diurnal_rate(hour: float) -> float:
    """Relative load at an hour of day, normalised to peak 1.0.

    Two-humped curve with an afternoon and an evening peak and a deep night
    trough, matching the measured industrial utilisation curve in Fig. 1(a).
    """
    h = hour % 24.0
    afternoon = math.exp(-((h - 15.0) ** 2) / (2 * 3.0**2))
    evening = math.exp(-((h - 20.5) ** 2) / (2 * 2.0**2))
    base = 0.25
    value = base + 0.9 * afternoon + 0.75 * evening
    return min(1.0, value)


class SyntheticTrace:
    """Deterministic request trace over multiple clusters."""

    def __init__(
        self,
        config: Optional[TraceConfig] = None,
        catalog: Optional[Sequence[ServiceSpec]] = None,
    ) -> None:
        self.config = config or TraceConfig()
        self.catalog = list(catalog or default_catalog())
        self._lc_specs = [s for s in self.catalog if s.kind is ServiceKind.LC]
        self._be_specs = [s for s in self.catalog if s.kind is ServiceKind.BE]
        if not self._lc_specs or not self._be_specs:
            raise ValueError("catalog must contain both LC and BE services")
        rng = np.random.default_rng(self.config.seed)
        # per-cluster load weight and diurnal phase offset (geographic skew)
        self._cluster_weight = 0.5 + rng.random(self.config.n_clusters)
        self._cluster_weight /= self._cluster_weight.mean()
        self._cluster_phase = rng.uniform(-2.0, 2.0, size=self.config.n_clusters)
        # per-type popularity follows a Zipf-ish profile
        self._lc_pop = self._popularity(len(self._lc_specs), rng)
        self._be_pop = self._popularity(len(self._be_specs), rng)
        self._rng = rng

    @staticmethod
    def _popularity(n: int, rng: np.random.Generator) -> np.ndarray:
        weights = 1.0 / np.arange(1, n + 1) ** 0.8
        perm = rng.permutation(n)
        weights = weights[perm]
        return weights / weights.sum()

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def hour_at(self, time_ms: float) -> float:
        cfg = self.config
        return cfg.start_hour + (time_ms / 1000.0) * cfg.hours_per_second

    def rate_at(self, time_ms: float, cluster_id: int, kind: ServiceKind) -> float:
        """Instantaneous arrival rate (requests/sec) for a cluster and kind."""
        cfg = self.config
        hour = self.hour_at(time_ms) + self._cluster_phase[cluster_id]
        shape = diurnal_rate(hour)
        peak = cfg.lc_peak_rps if kind is ServiceKind.LC else cfg.be_peak_rps
        return peak * shape * self._cluster_weight[cluster_id]

    def generate(self) -> List[TraceRecord]:
        """Materialise the whole trace, sorted by arrival time."""
        return sorted(self.iter_records(), key=lambda r: r.time_ms)

    def iter_records(self) -> Iterator[TraceRecord]:
        cfg = self.config
        step_ms = 100.0
        n_steps = int(cfg.duration_ms / step_ms)
        for cluster in range(cfg.n_clusters):
            # independent stream per cluster for reproducible composition
            rng = np.random.default_rng(
                np.random.SeedSequence([cfg.seed, cluster, 77])
            )
            for kind, specs, pop in (
                (ServiceKind.LC, self._lc_specs, self._lc_pop),
                (ServiceKind.BE, self._be_specs, self._be_pop),
            ):
                for step in range(n_steps):
                    t0 = step * step_ms
                    lam = self.rate_at(t0, cluster, kind) * (step_ms / 1000.0)
                    if cfg.burstiness > 0:
                        lam *= rng.gamma(
                            1.0 / cfg.burstiness, cfg.burstiness
                        )
                    count = rng.poisson(lam)
                    if count == 0:
                        continue
                    type_ids = rng.choice(len(specs), size=count, p=pop)
                    offsets = rng.uniform(0.0, step_ms, size=count)
                    for tid, off in zip(type_ids, offsets):
                        spec = specs[tid]
                        jitter = rng.uniform(0.85, 1.25)
                        yield TraceRecord(
                            time_ms=t0 + float(off),
                            cluster_id=cluster,
                            service=spec.name,
                            kind=kind,
                            cpu=spec.reference_resources.cpu * jitter,
                            memory=spec.reference_resources.memory * jitter,
                        )

    # ------------------------------------------------------------------ #
    # summaries (used by the Fig. 1 reproduction)
    # ------------------------------------------------------------------ #
    def utilization_profile(
        self, capacity_cpu_per_cluster: float, bucket_ms: float = 1000.0
    ) -> Dict[str, np.ndarray]:
        """LC-only CPU demand over capacity, bucketed — Fig. 1(a)'s quantity."""
        cfg = self.config
        n_buckets = int(cfg.duration_ms / bucket_ms)
        demand = np.zeros(n_buckets)
        for rec in self.iter_records():
            if rec.kind is not ServiceKind.LC:
                continue
            bucket = min(n_buckets - 1, int(rec.time_ms / bucket_ms))
            spec = next(s for s in self._lc_specs if s.name == rec.service)
            demand[bucket] += rec.cpu * spec.base_service_ms / bucket_ms
        total_capacity = capacity_cpu_per_cluster * cfg.n_clusters
        hours = np.array(
            [self.hour_at(i * bucket_ms) for i in range(n_buckets)]
        )
        return {"hours": hours, "utilization": demand / total_capacity}
