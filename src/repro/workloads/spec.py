"""Service catalog: the 10 LC/BE service types extracted from the trace.

§6.2: the paper classifies 2019 Google cluster-data jobs into 10 categories
of LC and BE services using the ``LatencySensitivity`` field (tiers 0-3,
where higher is more latency sensitive), instantiates each in one container,
and derives per-type resource expectations and QoS targets (tail latency)
from pressure measurements à la PARTIES.

We reproduce that catalog synthetically: five LC types (tiers 2-3) spanning
the paper's motivating workloads (cloud rendering, AR/VR, audio/video) with
QoS targets around the ~300 ms the production measurement shows (Fig. 1(b)),
and five BE types (tiers 0-1) modelled on data analytics / model training
batch jobs with multi-second service times.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from repro.cluster.resources import ResourceVector

__all__ = ["ServiceKind", "ServiceSpec", "default_catalog", "CatalogError"]


class ServiceKind(str, Enum):
    LC = "LC"
    BE = "BE"


class CatalogError(ValueError):
    pass


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one service type.

    Attributes
    ----------
    qos_target_ms:
        γ_k — tail-latency target for LC services (∞ for BE, which have no
        strict QoS, §5.3).
    base_service_ms:
        processing time with the reference resource allocation on an
        unloaded node (from "pressure testing", §6.1).
    min_resources:
        the minimum request allocation r^{c,k}, r^{m,k} used by Eq. 2; the
        QoS re-assurance mechanism adjusts this at runtime.
    reference_resources:
        allocation at which ``base_service_ms`` was measured; giving less
        slows processing per the latency model.
    """

    name: str
    kind: ServiceKind
    latency_sensitivity: int
    qos_target_ms: float
    base_service_ms: float
    min_resources: ResourceVector
    reference_resources: ResourceVector
    #: how strongly latency reacts to CPU starvation (latency model exponent).
    cpu_elasticity: float = 1.0
    #: request payload size for network transfer accounting (KB).
    payload_kb: float = 64.0

    def __post_init__(self) -> None:
        if self.kind is ServiceKind.LC and not (0 < self.qos_target_ms < 10_000):
            raise CatalogError(f"{self.name}: implausible LC QoS target")
        if self.base_service_ms <= 0:
            raise CatalogError(f"{self.name}: base service time must be positive")

    @property
    def is_lc(self) -> bool:
        return self.kind is ServiceKind.LC


def default_catalog() -> List[ServiceSpec]:
    """The 10-type catalog used throughout the experiments."""
    rv = ResourceVector.of
    lc: List[Tuple[str, int, float, float, float, float, float]] = [
        # name, tier, qos_ms, base_ms, cpu, mem, elasticity
        ("lc-cloud-render", 3, 250.0, 80.0, 1.00, 1024.0, 1.2),
        ("lc-vr-stream", 3, 300.0, 100.0, 0.75, 768.0, 1.1),
        ("lc-video-conf", 2, 350.0, 120.0, 0.50, 512.0, 1.0),
        ("lc-smart-factory", 2, 280.0, 90.0, 0.60, 512.0, 1.0),
        ("lc-audio-rt", 2, 320.0, 70.0, 0.35, 256.0, 0.9),
    ]
    be: List[Tuple[str, int, float, float, float, float]] = [
        # name, tier, base_ms, cpu, mem, elasticity
        ("be-analytics", 1, 4_000.0, 1.00, 2048.0, 1.0),
        ("be-model-train", 0, 8_000.0, 2.00, 3072.0, 1.1),
        ("be-etl-batch", 1, 3_000.0, 0.75, 1536.0, 0.9),
        ("be-log-compact", 0, 2_000.0, 0.50, 1024.0, 0.8),
        ("be-media-transcode", 1, 6_000.0, 1.50, 2048.0, 1.2),
    ]
    catalog: List[ServiceSpec] = []
    for name, tier, qos, base, cpu, mem, elas in lc:
        catalog.append(
            ServiceSpec(
                name=name,
                kind=ServiceKind.LC,
                latency_sensitivity=tier,
                qos_target_ms=qos,
                base_service_ms=base,
                min_resources=rv(cpu=cpu * 0.7, memory=mem * 0.7),
                reference_resources=rv(cpu=cpu, memory=mem),
                cpu_elasticity=elas,
                payload_kb=128.0,
            )
        )
    for name, tier, base, cpu, mem, elas in be:
        catalog.append(
            ServiceSpec(
                name=name,
                kind=ServiceKind.BE,
                latency_sensitivity=tier,
                qos_target_ms=float("inf"),
                base_service_ms=base,
                min_resources=rv(cpu=cpu * 0.5, memory=mem * 0.5),
                reference_resources=rv(cpu=cpu, memory=mem),
                cpu_elasticity=elas,
                payload_kb=512.0,
            )
        )
    return catalog


def catalog_by_name(catalog: List[ServiceSpec]) -> Dict[str, ServiceSpec]:
    return {spec.name: spec for spec in catalog}
