"""Adapter for the real 2019 Google cluster-data trace (§6.2).

The paper extracts ``<EventType, SCHEDULE>`` / ``<CollectionType, JOB>``
records from the 2019 Google trace and classifies services into 10 LC/BE
categories via the ``LatencySensitivity`` field (tiers 0-3).  The raw trace
is 8 GB and cannot ship with this repository, so experiments default to
:class:`repro.workloads.trace.SyntheticTrace`; this module lets anyone who
*has* the trace (or any CSV in the same shape) drive the simulator with it.

Expected CSV columns (header required, extra columns ignored)::

    time,collection_id,event_type,collection_type,latency_sensitivity,
    resource_request_cpu,resource_request_memory[,cluster]

* ``time`` — microseconds since trace start (Google convention);
* rows are kept when ``event_type == "SCHEDULE"`` and
  ``collection_type == "JOB"`` (string or numeric encodings accepted);
* ``latency_sensitivity`` 2-3 → LC, 0-1 → BE (the paper's split);
* CPU is in normalized Google units (fraction of a reference machine) and
  is rescaled by ``cpu_scale`` cores; memory likewise by ``memory_scale``;
* ``cluster`` (optional) assigns the origin cluster; otherwise requests are
  sharded over ``n_clusters`` by ``collection_id``.

Within each LC/BE class, records are mapped onto the catalog's service
types by binning their CPU request — preserving the resource-demand
heterogeneity that drives the experiments.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Union

from .spec import ServiceKind, ServiceSpec, default_catalog
from .trace import TraceRecord

__all__ = ["GoogleTraceConfig", "GoogleTraceLoader", "TraceFormatError"]

_SCHEDULE_CODES = {"SCHEDULE", "3", 3}
_JOB_CODES = {"JOB", "1", 1}

_REQUIRED_COLUMNS = (
    "time",
    "collection_id",
    "event_type",
    "collection_type",
    "latency_sensitivity",
    "resource_request_cpu",
    "resource_request_memory",
)


class TraceFormatError(ValueError):
    """Raised when the CSV is missing required columns or has bad values."""


@dataclass
class GoogleTraceConfig:
    n_clusters: int = 4
    #: cores represented by one normalized Google CPU unit.
    cpu_scale: float = 16.0
    #: MiB represented by one normalized Google memory unit.
    memory_scale: float = 32768.0
    #: trace timestamps are µs; experiments run in ms.  ``time_compression``
    #: additionally squeezes trace time (the paper compresses a day of trace
    #: into minutes of experiment).
    time_compression: float = 1000.0
    #: drop records beyond this experiment time (ms); None keeps everything.
    max_time_ms: Optional[float] = None


class GoogleTraceLoader:
    """Stream SCHEDULE/JOB records from a Google-format CSV."""

    def __init__(
        self,
        config: Optional[GoogleTraceConfig] = None,
        catalog: Optional[Sequence[ServiceSpec]] = None,
    ) -> None:
        self.config = config or GoogleTraceConfig()
        self.catalog = list(catalog or default_catalog())
        self._lc = sorted(
            (s for s in self.catalog if s.kind is ServiceKind.LC),
            key=lambda s: s.reference_resources.cpu,
        )
        self._be = sorted(
            (s for s in self.catalog if s.kind is ServiceKind.BE),
            key=lambda s: s.reference_resources.cpu,
        )
        self.skipped_rows = 0

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load(self, source: Union[str, Path, TextIO]) -> List[TraceRecord]:
        records = sorted(self.iter_records(source), key=lambda r: r.time_ms)
        return records

    def iter_records(
        self, source: Union[str, Path, TextIO]
    ) -> Iterator[TraceRecord]:
        if isinstance(source, (str, Path)):
            with open(source, newline="") as handle:
                yield from self._iter_reader(csv.DictReader(handle))
        else:
            yield from self._iter_reader(csv.DictReader(source))

    def _iter_reader(self, reader: csv.DictReader) -> Iterator[TraceRecord]:
        if reader.fieldnames is None:
            raise TraceFormatError("empty CSV (no header row)")
        missing = [c for c in _REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise TraceFormatError(f"missing required columns: {missing}")
        has_cluster = "cluster" in reader.fieldnames
        cfg = self.config
        for row in reader:
            if str(row["event_type"]).strip() not in _SCHEDULE_CODES:
                continue
            if str(row["collection_type"]).strip() not in _JOB_CODES:
                continue
            try:
                time_ms = float(row["time"]) / 1000.0 / cfg.time_compression
                tier = int(float(row["latency_sensitivity"]))
                cpu = float(row["resource_request_cpu"]) * cfg.cpu_scale
                memory = (
                    float(row["resource_request_memory"]) * cfg.memory_scale
                )
                collection = int(float(row["collection_id"]))
            except (TypeError, ValueError):
                self.skipped_rows += 1
                continue
            if cfg.max_time_ms is not None and time_ms > cfg.max_time_ms:
                continue
            if has_cluster and row.get("cluster", "") != "":
                cluster = int(float(row["cluster"])) % cfg.n_clusters
            else:
                cluster = collection % cfg.n_clusters
            spec = self._classify(tier, cpu)
            yield TraceRecord(
                time_ms=time_ms,
                cluster_id=cluster,
                service=spec.name,
                kind=spec.kind,
                cpu=max(cpu, 0.05),
                memory=max(memory, 16.0),
            )

    # ------------------------------------------------------------------ #
    # classification (the paper's 10-category split)
    # ------------------------------------------------------------------ #
    def _classify(self, tier: int, cpu: float) -> ServiceSpec:
        """Tier → LC/BE; CPU request → service bin within the class."""
        family = self._lc if tier >= 2 else self._be
        for spec in family:
            if cpu <= spec.reference_resources.cpu * 1.25:
                return spec
        return family[-1]
