"""Workloads: service catalog, synthetic traces, and request patterns."""

from .google import GoogleTraceConfig, GoogleTraceLoader, TraceFormatError
from .patterns import PatternConfig, PatternKind, PatternWorkload
from .spec import ServiceKind, ServiceSpec, default_catalog
from .stats import TraceSummary, arrival_series, summarize_trace
from .trace import SyntheticTrace, TraceConfig, TraceRecord, diurnal_rate

__all__ = [
    "ServiceSpec",
    "ServiceKind",
    "default_catalog",
    "SyntheticTrace",
    "TraceConfig",
    "TraceRecord",
    "diurnal_rate",
    "PatternWorkload",
    "PatternConfig",
    "PatternKind",
    "GoogleTraceLoader",
    "GoogleTraceConfig",
    "TraceFormatError",
    "TraceSummary",
    "summarize_trace",
    "arrival_series",
]
