"""Worker-node runtime: queues, running requests, and resource accounting.

A :class:`WorkerNode` executes service requests under the control of a
pluggable :class:`ResourceManager` — HRM (:mod:`repro.hrm`) for Tango, a
static partitioner for K8s-native, or the CERES manager for the §7.3
baseline.  The node advances in fixed ticks:

1. queued requests are offered to the manager in priority order (LC first,
   FIFO within a class; the manager may preempt BE work to admit LC);
2. running requests progress at a speed given by the pressure-test latency
   model (allocation vs reference, node contention);
3. finished requests release their allocation; evicted BE requests are
   returned to the caller for rescheduling.

All resource movement goes through the node so conservation can be asserted:
``allocated + free == capacity`` at every step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Protocol, Tuple

from repro.cluster.resources import ResourceVector, ZERO
from repro.sim.latency import LatencyModel
from repro.sim.request import RequestState, ServiceRequest
from repro.workloads.spec import ServiceKind

__all__ = ["WorkerNode", "RunningRequest", "ResourceManager", "AdmitDecision"]


@dataclass
class RunningRequest:
    """A request holding resources on a node."""

    request: ServiceRequest
    allocation: ResourceVector
    remaining_ms: float

    @property
    def is_lc(self) -> bool:
        return self.request.is_lc


@dataclass
class AdmitDecision:
    """Manager verdict for one queued request."""

    allocation: ResourceVector
    #: extra latency charged to the request before processing starts
    #: (e.g. a D-VPA resize, or a native-VPA delete-and-rebuild).
    overhead_ms: float = 0.0
    #: BE requests the manager evicted to make room (incompressible reclaim).
    evicted: List[RunningRequest] = field(default_factory=list)


class ResourceManager(Protocol):
    """Strategy deciding allocations on one node."""

    def admit(
        self, node: "WorkerNode", request: ServiceRequest, now_ms: float
    ) -> Optional[AdmitDecision]:
        """Try to start ``request`` now; None leaves it queued."""
        ...

    def on_complete(
        self, node: "WorkerNode", running: RunningRequest, now_ms: float
    ) -> None:
        """Called after a request finishes and its allocation is reclaimed."""
        ...

    def tick(self, node: "WorkerNode", now_ms: float) -> None:
        """Periodic housekeeping (e.g. grow BE allocations into idle room)."""
        ...


class WorkerNode:
    """One edge-cloud worker executing co-located LC and BE requests."""

    def __init__(
        self,
        name: str,
        cluster_id: int,
        capacity: ResourceVector,
        *,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        self.name = name
        self.cluster_id = cluster_id
        self.capacity = capacity
        self.latency_model = latency_model or LatencyModel()
        self.manager: Optional[ResourceManager] = None
        self._lc_queue: Deque[ServiceRequest] = deque()
        self._be_queue: Deque[ServiceRequest] = deque()
        self.running: Dict[int, RunningRequest] = {}
        self._allocated = ZERO
        #: set whenever queues, running set, or allocations change; the
        #: state storage clears it after re-snapshotting the node, so clean
        #: nodes reuse their cached snapshot across refreshes.
        self.snapshot_dirty = True
        # counters
        self.completed_count = 0
        self.evicted_count = 0
        self.busy_cpu_ms = 0.0

    # ------------------------------------------------------------------ #
    # resource accounting
    # ------------------------------------------------------------------ #
    @property
    def allocated(self) -> ResourceVector:
        return self._allocated

    def free(self) -> ResourceVector:
        # fused (capacity - allocated).clamp_min(0.0): one vector allocation
        # on a path hit several times per node per tick.
        cap, used = self.capacity, self._allocated
        return ResourceVector(
            max(cap.cpu - used.cpu, 0.0),
            max(cap.memory - used.memory, 0.0),
            max(cap.bandwidth - used.bandwidth, 0.0),
            max(cap.disk - used.disk, 0.0),
        )

    def utilization(self) -> float:
        """Mean of CPU and memory allocated fractions (the paper's metric)."""
        fractions = []
        for cap, used in (
            (self.capacity.cpu, self._allocated.cpu),
            (self.capacity.memory, self._allocated.memory),
        ):
            if cap > 0:
                fractions.append(min(1.0, used / cap))
        return sum(fractions) / len(fractions) if fractions else 0.0

    def cpu_utilization(self) -> float:
        if self.capacity.cpu <= 0:
            return 0.0
        return min(1.0, self._allocated.cpu / self.capacity.cpu)

    def utilization_by_kind(self) -> Dict[ServiceKind, float]:
        """Allocated fraction split into LC and BE shares (Fig. 9(b,c))."""
        shares = {ServiceKind.LC: 0.0, ServiceKind.BE: 0.0}
        for rr in self.running.values():
            frac = []
            if self.capacity.cpu > 0:
                frac.append(rr.allocation.cpu / self.capacity.cpu)
            if self.capacity.memory > 0:
                frac.append(rr.allocation.memory / self.capacity.memory)
            if frac:
                shares[rr.request.kind] += sum(frac) / len(frac)
        return shares

    def grant(self, amount: ResourceVector) -> None:
        """Reserve resources (manager helper); raises if over capacity."""
        new_total = self._allocated + amount
        if not new_total.fits_in(self.capacity):
            raise ValueError(
                f"{self.name}: allocation {new_total.as_tuple()} exceeds "
                f"capacity {self.capacity.as_tuple()}"
            )
        self._allocated = new_total
        self.snapshot_dirty = True

    def reclaim(self, amount: ResourceVector) -> None:
        self._allocated = (self._allocated - amount).clamp_min(0.0)
        self.snapshot_dirty = True

    def adjust_running_allocation(
        self, rr: RunningRequest, new_allocation: ResourceVector
    ) -> None:
        """Change a running request's allocation (compressible preemption)."""
        delta = new_allocation - rr.allocation
        if delta.is_zero():
            return
        new_total = self._allocated + delta
        if not new_total.fits_in(self.capacity):
            raise ValueError(f"{self.name}: adjustment exceeds capacity")
        self._allocated = new_total.clamp_min(0.0)
        rr.allocation = new_allocation
        self.snapshot_dirty = True

    # ------------------------------------------------------------------ #
    # queueing
    # ------------------------------------------------------------------ #
    def enqueue(self, request: ServiceRequest, now_ms: float) -> None:
        request.state = RequestState.QUEUED_NODE
        request.node_arrival_ms = now_ms
        request.target_node = self.name
        request.target_cluster = self.cluster_id
        (self._lc_queue if request.is_lc else self._be_queue).append(request)
        self.snapshot_dirty = True

    @property
    def is_active(self) -> bool:
        """True when the node holds any queued or running work."""
        return bool(self.running or self._lc_queue or self._be_queue)

    def queue_lengths(self) -> Tuple[int, int]:
        return len(self._lc_queue), len(self._be_queue)

    def queued_be_demand(self) -> Tuple[float, float]:
        """(cpu, mem) reference demand waiting in the BE queue (Q_{t,i})."""
        cpu = sum(r.spec.reference_resources.cpu for r in self._be_queue)
        mem = sum(r.spec.reference_resources.memory for r in self._be_queue)
        return float(cpu), float(mem)

    def pending_of_type(self, service_name: str) -> int:
        return sum(
            1
            for q in (self._lc_queue, self._be_queue)
            for r in q
            if r.spec.name == service_name
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(
        self, now_ms: float, dt_ms: float
    ) -> Tuple[List[ServiceRequest], List[ServiceRequest], List[ServiceRequest]]:
        """Advance one tick.

        Returns ``(completed, evicted, abandoned)``.  Evicted BE requests
        have lost progress and must be rescheduled by the caller; abandoned
        LC requests exceeded their patience bound while queued.
        """
        if self.manager is None:
            raise RuntimeError(f"{self.name}: no resource manager attached")

        evicted: List[ServiceRequest] = []
        abandoned = self._drop_impatient(now_ms) if self._lc_queue else []
        if self._lc_queue:
            self._admit_from_queue(self._lc_queue, now_ms, evicted)
        if self._be_queue:
            self._admit_from_queue(self._be_queue, now_ms, evicted)

        self.manager.tick(self, now_ms)

        completed: List[ServiceRequest] = []
        if not self.running:
            return completed, evicted, abandoned
        contention = self.cpu_utilization()
        for rid in list(self.running):
            rr = self.running[rid]
            req = rr.request
            if req.started_ms is not None and now_ms < req.started_ms:
                continue  # still paying allocation overhead
            speed = self.latency_model.speed(req.spec, rr.allocation, contention)
            progress = dt_ms * speed
            rr.remaining_ms -= progress
            self.busy_cpu_ms += dt_ms * rr.allocation.cpu
            if rr.remaining_ms <= 1e-9:
                del self.running[rid]
                self.reclaim(rr.allocation)
                req.completed_ms = now_ms + dt_ms
                req.state = RequestState.COMPLETED
                self.completed_count += 1
                self.manager.on_complete(self, rr, now_ms + dt_ms)
                completed.append(req)
        return completed, evicted, abandoned

    def _admit_from_queue(
        self,
        queue: Deque[ServiceRequest],
        now_ms: float,
        evicted_out: List[ServiceRequest],
    ) -> None:
        assert self.manager is not None
        stalled: List[ServiceRequest] = []
        while queue:
            request = queue.popleft()
            decision = self.manager.admit(self, request, now_ms)
            if decision is None:
                stalled.append(request)
                # head-of-line blocking within a class, as a FIFO queue
                break
            for victim in decision.evicted:
                self._evict(victim, now_ms)
                evicted_out.append(victim.request)
            self.grant(decision.allocation)
            request.state = RequestState.RUNNING
            request.started_ms = now_ms + decision.overhead_ms
            request.allocation_overhead_ms += decision.overhead_ms
            self.running[request.request_id] = RunningRequest(
                request=request,
                allocation=decision.allocation,
                remaining_ms=request.spec.base_service_ms,
            )
        for request in reversed(stalled):
            queue.appendleft(request)

    def _evict(self, rr: RunningRequest, now_ms: float) -> None:
        self.running.pop(rr.request.request_id, None)
        self.reclaim(rr.allocation)
        req = rr.request
        req.evictions += 1
        # back to the master queue: placement fields would otherwise point
        # at this node through the next dispatch round (the step stage
        # emits the eviction event with the node name explicitly).
        req.clear_assignment()
        req.state = RequestState.QUEUED_MASTER
        self.evicted_count += 1

    def _drop_impatient(self, now_ms: float) -> List[ServiceRequest]:
        # fast path: nothing expired (the common case every tick) — scan
        # without rebuilding the deque.
        for request in self._lc_queue:
            if now_ms > request.patience_deadline_ms():
                break
        else:
            return []
        dropped: List[ServiceRequest] = []
        kept: Deque[ServiceRequest] = deque()
        while self._lc_queue:
            request = self._lc_queue.popleft()
            if now_ms > request.patience_deadline_ms():
                request.mark_abandoned(now_ms)
                dropped.append(request)
            else:
                kept.append(request)
        self._lc_queue = kept
        self.snapshot_dirty = True
        return dropped

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """Live mutable state; capacity/latency-model/manager are wiring."""
        return {
            "lc_queue": self._lc_queue,
            "be_queue": self._be_queue,
            "running": self.running,
            "allocated": self._allocated,
            "snapshot_dirty": self.snapshot_dirty,
            "completed_count": self.completed_count,
            "evicted_count": self.evicted_count,
            "busy_cpu_ms": self.busy_cpu_ms,
        }

    def restore_state(self, state: Dict) -> None:
        self._lc_queue = state["lc_queue"]
        self._be_queue = state["be_queue"]
        self.running = state["running"]
        self._allocated = state["allocated"]
        self.snapshot_dirty = state["snapshot_dirty"]
        self.completed_count = state["completed_count"]
        self.evicted_count = state["evicted_count"]
        self.busy_cpu_ms = state["busy_cpu_ms"]

    # ------------------------------------------------------------------ #
    # views for schedulers (the X_i^k attributes of §5.2.1)
    # ------------------------------------------------------------------ #
    def running_be(self) -> List[RunningRequest]:
        return [rr for rr in self.running.values() if not rr.is_lc]

    def running_lc(self) -> List[RunningRequest]:
        return [rr for rr in self.running.values() if rr.is_lc]
