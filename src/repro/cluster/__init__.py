"""Edge-cloud substrate: resources, nodes, clusters, and WAN topology."""

from .cluster import EdgeCloudCluster, make_heterogeneous_workers
from .node import AdmitDecision, ResourceManager, RunningRequest, WorkerNode
from .resources import ResourceKind, ResourceVector
from .topology import EdgeCloudSystem, TopologyConfig

__all__ = [
    "ResourceKind",
    "ResourceVector",
    "WorkerNode",
    "RunningRequest",
    "AdmitDecision",
    "ResourceManager",
    "EdgeCloudCluster",
    "make_heterogeneous_workers",
    "EdgeCloudSystem",
    "TopologyConfig",
]
