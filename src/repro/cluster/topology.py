"""Edge-cloud system topology: clusters, geography, and WAN latency.

§5.1.1/§6: clusters are connected by WAN with geography-dependent RTTs (the
production dataset shows edge→central RTTs above 97 ms); LC requests may only
be dispatched to the local or *geo-nearby* clusters (footnote 4: within
500 km); BE requests are all forwarded to a *central* cluster that is
"(i) geographically central and (ii) more resource-rich" (footnote 2).

The topology replaces the paper's Linux Traffic Control shaping: one-way
delays are ``RTT/2`` with RTT = base + distance × per-km cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import LAN_DELAY_MS, EdgeCloudCluster, make_heterogeneous_workers
from repro.cluster.resources import ResourceVector

__all__ = ["EdgeCloudSystem", "TopologyConfig"]

#: RTT model parameters: base switching latency + per-km propagation+routing.
RTT_BASE_MS = 4.0
RTT_PER_KM_MS = 0.055  # 500 km neighbours ≈ 31 ms; 1700 km ≈ 97 ms

#: bandwidth model (the Linux `tc` shaping the paper applies): LAN links run
#: at NIC speed; WAN throughput degrades with distance down to a floor.
LAN_BANDWIDTH_MBPS = 1000.0
WAN_BANDWIDTH_BASE_MBPS = 600.0
WAN_BANDWIDTH_FLOOR_MBPS = 100.0
WAN_BANDWIDTH_PER_KM = 0.18  # Mbps lost per km


@dataclass
class TopologyConfig:
    n_clusters: int = 4
    #: workers per cluster; None draws 3-20 heterogeneously per cluster.
    workers_per_cluster: Optional[int] = 4
    #: side length of the square deployment region (km).
    region_km: float = 2400.0
    #: LC dispatch locality radius (footnote 4).
    nearby_radius_km: float = 500.0
    seed: int = 0


class EdgeCloudSystem:
    """All clusters plus the WAN connecting them."""

    def __init__(self, config: Optional[TopologyConfig] = None) -> None:
        self.config = config or TopologyConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.clusters: List[EdgeCloudCluster] = []
        positions = rng.uniform(0.0, cfg.region_km, size=(cfg.n_clusters, 2))
        for cid in range(cfg.n_clusters):
            workers = make_heterogeneous_workers(
                cid, rng, n_workers=cfg.workers_per_cluster
            )
            self.clusters.append(
                EdgeCloudCluster(
                    cluster_id=cid,
                    workers=workers,
                    position_km=(float(positions[cid, 0]), float(positions[cid, 1])),
                )
            )
        self._distance = self._distance_matrix()
        self.central_cluster_id = self._select_central()

    # ------------------------------------------------------------------ #
    # geometry / latency
    # ------------------------------------------------------------------ #
    def _distance_matrix(self) -> np.ndarray:
        pos = np.array([c.position_km for c in self.clusters])
        diff = pos[:, None, :] - pos[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))

    def distance_km(self, a: int, b: int) -> float:
        return float(self._distance[a, b])

    def rtt_ms(self, a: int, b: int) -> float:
        """WAN round-trip time between two clusters (0 for a==b)."""
        if a == b:
            return 2 * LAN_DELAY_MS
        return RTT_BASE_MS + self.distance_km(a, b) * RTT_PER_KM_MS

    def one_way_delay_ms(self, a: int, b: int) -> float:
        if a == b:
            return LAN_DELAY_MS
        return self.rtt_ms(a, b) / 2.0

    def bandwidth_mbps(self, a: int, b: int) -> float:
        """Link throughput between two clusters (LAN speed when a == b)."""
        if a == b:
            return LAN_BANDWIDTH_MBPS
        return max(
            WAN_BANDWIDTH_FLOOR_MBPS,
            WAN_BANDWIDTH_BASE_MBPS
            - self.distance_km(a, b) * WAN_BANDWIDTH_PER_KM,
        )

    def transfer_ms(self, a: int, b: int, payload_kb: float) -> float:
        """One-way delivery time: propagation plus payload serialisation."""
        serialisation = (payload_kb * 8.0) / (self.bandwidth_mbps(a, b) * 1000.0)
        return self.one_way_delay_ms(a, b) + serialisation * 1000.0

    def nearby_clusters(self, cluster_id: int) -> List[int]:
        """Local + geo-nearby clusters eligible for LC dispatch (fn. 4)."""
        radius = self.config.nearby_radius_km
        return [
            other.cluster_id
            for other in self.clusters
            if other.cluster_id == cluster_id
            or self.distance_km(cluster_id, other.cluster_id) <= radius
        ]

    # ------------------------------------------------------------------ #
    # central cluster selection (footnote 2)
    # ------------------------------------------------------------------ #
    def _select_central(self) -> int:
        """Most central by mean distance, tie-broken toward resource-rich."""
        mean_dist = self._distance.mean(axis=1)
        capacity = np.array(
            [c.total_capacity().cpu for c in self.clusters], dtype=float
        )
        # normalise both criteria and combine: low distance, high capacity
        dist_score = (mean_dist - mean_dist.min()) / max(
            1e-9, mean_dist.max() - mean_dist.min()
        )
        cap_score = (capacity - capacity.min()) / max(
            1e-9, capacity.max() - capacity.min()
        )
        combined = (1.0 - dist_score) * 0.6 + cap_score * 0.4
        return int(np.argmax(combined))

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster(self, cluster_id: int) -> EdgeCloudCluster:
        return self.clusters[cluster_id]

    def all_workers(self):
        for c in self.clusters:
            yield from c.workers

    def total_nodes(self) -> int:
        return sum(len(c.workers) for c in self.clusters)

    def system_utilization(self) -> float:
        utils = [w.utilization() for w in self.all_workers()]
        return float(np.mean(utils)) if utils else 0.0
