"""Edge-cloud cluster: one master (the eAP) plus worker nodes on a LAN.

§5.1.1: a cluster's master node receives user requests, holds the LC and BE
scheduling queues, and acts as controller and decision maker; workers execute
container instances.  Intra-cluster links are LAN (~1 ms), inter-cluster
links are WAN (geography-dependent RTT, :mod:`repro.cluster.topology`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.node import WorkerNode
from repro.cluster.resources import ResourceVector
from repro.sim.request import RequestState, ServiceRequest

__all__ = ["EdgeCloudCluster", "LAN_DELAY_MS", "make_heterogeneous_workers"]

#: one-way intra-cluster network delay.
LAN_DELAY_MS = 1.0


@dataclass
class EdgeCloudCluster:
    """Master queues + worker fleet for one edge-cloud."""

    cluster_id: int
    workers: List[WorkerNode]
    #: geographic position in km (used by the topology for WAN RTTs).
    position_km: tuple = (0.0, 0.0)
    lc_queue: Deque[ServiceRequest] = field(default_factory=deque)
    be_queue: Deque[ServiceRequest] = field(default_factory=deque)

    def __post_init__(self) -> None:
        for worker in self.workers:
            worker.cluster_id = self.cluster_id

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #
    def receive(self, request: ServiceRequest) -> None:
        request.state = RequestState.QUEUED_MASTER
        (self.lc_queue if request.is_lc else self.be_queue).append(request)

    def drain_lc(self) -> List[ServiceRequest]:
        items = list(self.lc_queue)
        self.lc_queue.clear()
        return items

    def drain_be(self) -> List[ServiceRequest]:
        items = list(self.be_queue)
        self.be_queue.clear()
        return items

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #
    def total_capacity(self) -> ResourceVector:
        total = ResourceVector()
        for w in self.workers:
            total = total + w.capacity
        return total

    def total_allocated(self) -> ResourceVector:
        total = ResourceVector()
        for w in self.workers:
            total = total + w.allocated
        return total

    def utilization(self) -> float:
        if not self.workers:
            return 0.0
        return float(np.mean([w.utilization() for w in self.workers]))

    def worker(self, name: str) -> WorkerNode:
        for w in self.workers:
            if w.name == name:
                return w
        raise KeyError(f"no worker {name!r} in cluster {self.cluster_id}")

    def queue_lengths(self) -> Dict[str, int]:
        return {"lc": len(self.lc_queue), "be": len(self.be_queue)}

    # ------------------------------------------------------------------ #
    # Checkpointable (master queues only; workers snapshot themselves)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        return {"lc_queue": self.lc_queue, "be_queue": self.be_queue}

    def restore_state(self, state: Dict) -> None:
        self.lc_queue = state["lc_queue"]
        self.be_queue = state["be_queue"]


def make_heterogeneous_workers(
    cluster_id: int,
    rng: np.random.Generator,
    *,
    n_workers: Optional[int] = None,
    min_workers: int = 3,
    max_workers: int = 20,
) -> List[WorkerNode]:
    """Build a heterogeneous worker fleet like the paper's twin space.

    §6.1: each virtual cluster has 3-20 workers; physical workers have 4
    CPUs / 8 GB.  We draw worker sizes from a small set of realistic edge
    SKUs so clusters differ both in count and in per-node capacity.
    """
    skus = [
        ResourceVector(cpu=4.0, memory=8 * 1024.0, bandwidth=1000.0, disk=64 * 1024.0),
        ResourceVector(cpu=8.0, memory=16 * 1024.0, bandwidth=1000.0, disk=128 * 1024.0),
        ResourceVector(cpu=2.0, memory=4 * 1024.0, bandwidth=500.0, disk=32 * 1024.0),
        ResourceVector(cpu=16.0, memory=32 * 1024.0, bandwidth=2000.0, disk=256 * 1024.0),
    ]
    sku_weights = np.array([0.45, 0.25, 0.20, 0.10])
    if n_workers is None:
        n_workers = int(rng.integers(min_workers, max_workers + 1))
    workers = []
    for i in range(n_workers):
        sku = skus[int(rng.choice(len(skus), p=sku_weights))]
        workers.append(
            WorkerNode(
                name=f"c{cluster_id}-w{i}",
                cluster_id=cluster_id,
                capacity=sku,
            )
        )
    return workers
