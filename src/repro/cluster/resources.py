"""Resource model for edge-cloud nodes, pods, and requests.

The paper distinguishes *compressible* resources (CPU, bandwidth), which can be
throttled and shared back to LC services instantly, from *incompressible*
resources (memory, disk), which can only be reclaimed by evicting the holder
(§4.1).  All resource arithmetic in the simulator goes through
:class:`ResourceVector`, a small immutable-by-convention wrapper over four
floats, so that every component (cgroups, schedulers, HRM) agrees on units:

* ``cpu`` — CPU cores (fractional cores allowed, like K8s millicores / 1000).
* ``memory`` — MiB.
* ``bandwidth`` — Mbps of NIC capacity.
* ``disk`` — MiB of scratch disk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Tuple

__all__ = [
    "ResourceKind",
    "ResourceVector",
    "ZERO",
    "COMPRESSIBLE_KINDS",
    "INCOMPRESSIBLE_KINDS",
]


class ResourceKind(str, Enum):
    """The four resource dimensions tracked by the simulator."""

    CPU = "cpu"
    MEMORY = "memory"
    BANDWIDTH = "bandwidth"
    DISK = "disk"

    @property
    def compressible(self) -> bool:
        """Whether the resource can be throttled without killing the holder."""
        return self in COMPRESSIBLE_KINDS


COMPRESSIBLE_KINDS = frozenset({ResourceKind.CPU, ResourceKind.BANDWIDTH})
INCOMPRESSIBLE_KINDS = frozenset({ResourceKind.MEMORY, ResourceKind.DISK})

_EPS = 1e-9


@dataclass(frozen=True)
class ResourceVector:
    """A point in (cpu, memory, bandwidth, disk) space.

    Instances are frozen; all operators return new vectors.  Comparison
    helpers follow K8s semantics: ``fits_in`` is a conjunction over all
    dimensions, while ``dominant_share`` returns the max utilisation ratio
    used by schedulers and by the short-term reward of DCG-BE (§5.3.1).
    """

    cpu: float = 0.0
    memory: float = 0.0
    bandwidth: float = 0.0
    disk: float = 0.0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def of(cls, **kwargs: float) -> "ResourceVector":
        """Build a vector from keyword dimensions, defaulting others to 0."""
        return cls(
            cpu=float(kwargs.get("cpu", 0.0)),
            memory=float(kwargs.get("memory", 0.0)),
            bandwidth=float(kwargs.get("bandwidth", 0.0)),
            disk=float(kwargs.get("disk", 0.0)),
        )

    @classmethod
    def full_like(cls, value: float) -> "ResourceVector":
        """A vector with every dimension set to ``value``."""
        return cls(value, value, value, value)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def get(self, kind: ResourceKind) -> float:
        return getattr(self, kind.value)

    def items(self) -> Iterator[Tuple[ResourceKind, float]]:
        for kind in ResourceKind:
            yield kind, self.get(kind)

    def replace(self, kind: ResourceKind, value: float) -> "ResourceVector":
        parts = {k.value: v for k, v in self.items()}
        parts[kind.value] = float(value)
        return ResourceVector(**parts)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.memory + other.memory,
            self.bandwidth + other.bandwidth,
            self.disk + other.disk,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu - other.cpu,
            self.memory - other.memory,
            self.bandwidth - other.bandwidth,
            self.disk - other.disk,
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(
            self.cpu * scalar,
            self.memory * scalar,
            self.bandwidth * scalar,
            self.disk * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ResourceVector":
        return self * -1.0

    def clamp_min(self, floor: float = 0.0) -> "ResourceVector":
        """Clamp every dimension to at least ``floor`` (used after reclaim)."""
        return ResourceVector(
            max(self.cpu, floor),
            max(self.memory, floor),
            max(self.bandwidth, floor),
            max(self.disk, floor),
        )

    def min_with(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            min(self.cpu, other.cpu),
            min(self.memory, other.memory),
            min(self.bandwidth, other.bandwidth),
            min(self.disk, other.disk),
        )

    def max_with(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            max(self.cpu, other.cpu),
            max(self.memory, other.memory),
            max(self.bandwidth, other.bandwidth),
            max(self.disk, other.disk),
        )

    # ------------------------------------------------------------------ #
    # predicates / scalar summaries
    # ------------------------------------------------------------------ #
    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True when this demand fits inside ``capacity`` on every dimension."""
        return (
            self.cpu <= capacity.cpu + _EPS
            and self.memory <= capacity.memory + _EPS
            and self.bandwidth <= capacity.bandwidth + _EPS
            and self.disk <= capacity.disk + _EPS
        )

    def is_nonnegative(self) -> bool:
        return (
            self.cpu >= -_EPS
            and self.memory >= -_EPS
            and self.bandwidth >= -_EPS
            and self.disk >= -_EPS
        )

    def is_zero(self) -> bool:
        return all(abs(v) <= _EPS for _, v in self.items())

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """Max utilisation ratio across dimensions with non-zero capacity.

        This is the quantity inside the exponent of DCG-BE's short-term
        reward and the score used by the load-greedy baseline.
        """
        best = 0.0
        for kind, demand in self.items():
            cap = capacity.get(kind)
            if cap > _EPS:
                best = max(best, demand / cap)
            elif demand > _EPS:
                return math.inf
        return best

    def units_within(self, capacity: "ResourceVector") -> int:
        """How many copies of this demand fit in ``capacity`` (Eq. 2 helper).

        Only CPU and memory participate, matching the paper's node capacity
        term ``min(r_ava^c / r^c, r_ava^m / r^m)``.
        """
        counts = []
        for kind in (ResourceKind.CPU, ResourceKind.MEMORY):
            demand = self.get(kind)
            if demand > _EPS:
                counts.append(int(capacity.get(kind) / demand + _EPS))
        if not counts:
            return 0
        return max(0, min(counts))

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.cpu, self.memory, self.bandwidth, self.disk)

    def approx_equal(self, other: "ResourceVector", tol: float = 1e-6) -> bool:
        return all(
            abs(a - b) <= tol for a, b in zip(self.as_tuple(), other.as_tuple())
        )


ZERO = ResourceVector()
