"""Pluggable ρ(·) sorting policies for DSS-LC's overload split (§5.2.2).

When pending LC requests exceed the absorbable capacity (case 2 of Alg. 2),
DSS-LC uses "the random sorting function ρ(·) to divide the requests into
two groups" — those placed immediately (R_k) and those queued (R'_k) — and
notes "the priority policy of ρ(·) can be changed as required (LC services
are of the same priority as each other in our scenario)".

This module provides that extension point:

* :class:`RandomPriority` — the paper's default: a uniformly random split;
* :class:`FIFOPriority` — oldest requests first (arrival-order fairness);
* :class:`DeadlinePriority` — earliest *remaining slack* first (EDF-style):
  requests closest to blowing their QoS target are placed immediately;
* :class:`TierPriority` — higher ``LatencySensitivity`` tiers first, FIFO
  within a tier.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

import numpy as np

from repro.sim.request import ServiceRequest

__all__ = [
    "PriorityPolicy",
    "RandomPriority",
    "FIFOPriority",
    "DeadlinePriority",
    "TierPriority",
    "make_priority",
]


class PriorityPolicy(Protocol):
    """Orders requests from most to least urgent for the case-2 split."""

    def order(
        self, requests: Sequence[ServiceRequest], now_ms: float
    ) -> List[ServiceRequest]:
        ...


class RandomPriority:
    """The paper's ρ(·): all LC requests share one priority.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts — DSS-LC
    passes ``(scheduler_seed, origin_cluster)`` tuples so every master owns
    an independent stream (each master runs Alg. 2 on its own hardware; a
    shared stream would couple masters through dispatch order).
    """

    def __init__(self, seed=0) -> None:
        self.rng = np.random.default_rng(seed)

    def order(
        self, requests: Sequence[ServiceRequest], now_ms: float
    ) -> List[ServiceRequest]:
        items = list(requests)
        perm = self.rng.permutation(len(items))
        return [items[i] for i in perm]


class FIFOPriority:
    """Oldest arrival first."""

    def order(
        self, requests: Sequence[ServiceRequest], now_ms: float
    ) -> List[ServiceRequest]:
        return sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))


class DeadlinePriority:
    """Least remaining QoS slack first (earliest effective deadline)."""

    def order(
        self, requests: Sequence[ServiceRequest], now_ms: float
    ) -> List[ServiceRequest]:
        def slack(r: ServiceRequest) -> float:
            if not np.isfinite(r.spec.qos_target_ms):
                return float("inf")
            return (r.arrival_ms + r.spec.qos_target_ms) - now_ms

        return sorted(requests, key=lambda r: (slack(r), r.request_id))


class TierPriority:
    """Higher LatencySensitivity tier first; FIFO within a tier."""

    def order(
        self, requests: Sequence[ServiceRequest], now_ms: float
    ) -> List[ServiceRequest]:
        return sorted(
            requests,
            key=lambda r: (
                -r.spec.latency_sensitivity,
                r.arrival_ms,
                r.request_id,
            ),
        )


_REGISTRY = {
    "random": RandomPriority,
    "fifo": FIFOPriority,
    "deadline": DeadlinePriority,
    "tier": TierPriority,
}


def make_priority(name: str, seed=0) -> PriorityPolicy:
    """Build a registered ρ(·) policy by name.

    ``seed`` may be an int or a sequence (e.g. ``(seed, cluster_id)`` for
    per-master streams); it is only consumed by :class:`RandomPriority`.
    """
    if name not in _REGISTRY:
        raise ValueError(f"unknown priority policy {name!r}; want {sorted(_REGISTRY)}")
    cls = _REGISTRY[name]
    if cls is RandomPriority:
        return cls(seed=seed)
    return cls()
