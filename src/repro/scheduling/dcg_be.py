"""DCG-BE: DRL + GNN centralized scheduling of BE requests (§5.3, Alg. 3).

The central cluster's BE traffic dispatcher runs this policy over the global
graph ``G' = (S', Z')``:

* **state** — per-node features (available/total CPU and memory, current
  slack score δ, the request's CPU/memory requirement, queue backlog) and
  per-edge transmission attributes, exactly the T of §5.3.1;
* **encoding** — a GraphSAGE network (mean aggregation, L=2 hops, ``p``
  sampled neighbours) turns the topology into node embeddings;
* **action** — the A2C actor picks the target node; the *policy context
  filter* masks nodes whose available resources cannot fit the request;
* **reward** — ``r_t = r_short + η · r_long`` with
  ``r_short = exp(−max(Σ cpu_q / cpu_node, Σ mem_q / mem_node))`` on the
  chosen node's backlog and
  ``r_long = 1 − exp(−Σ_i Σ_{q' completed} (cpu/cpu_i + mem/mem_i))`` over
  completions since the last training interval (η = 1);
* **training** — batched A2C updates every ``train_interval`` decisions
  ("if the required number of samples are collected: train and update").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.nn.a2c import A2CAgent, A2CConfig, Transition
from repro.nn.gnn import GraphEncoder, GraphSAGEEncoder
from repro.obs.emitter import NULL_EMITTER
from repro.sim.request import ServiceRequest

from .base import Assignment

__all__ = ["DCGBEConfig", "DCGBEScheduler", "N_NODE_FEATURES", "build_topology"]

#: per-node feature count (see _features).
N_NODE_FEATURES = 8

#: delay (one-way, ms) under which two clusters get a WAN gateway edge.
WAN_EDGE_DELAY_MS = 40.0


@dataclass
class DCGBEConfig:
    eta: float = 1.0  # weight of the long-term reward (paper: 1)
    sample_size: int = 3  # GraphSAGE neighbour sample p
    hops: int = 2  # aggregation depth L
    encoder_width: int = 64
    train_interval: int = 32
    #: discount over the decision stream.  The long-term objective is already
    #: carried by r_long (§5.3.1), so per-decision credit is immediate; a
    #: non-zero gamma couples unrelated placements within a batch and biases
    #: late-batch decisions after return normalisation.
    gamma: float = 0.0
    lr: float = 2e-3
    seed: int = 0
    #: cap per dispatch round so one burst cannot starve the tick budget.
    max_per_round: int = 256


def build_topology(nodes: Sequence[NodeSnapshot], snapshot: SystemSnapshot):
    """Adjacency list over worker nodes: LAN cliques + WAN gateway edges."""
    adj: List[List[int]] = [[] for _ in nodes]
    by_cluster: Dict[int, List[int]] = {}
    for idx, node in enumerate(nodes):
        by_cluster.setdefault(node.cluster_id, []).append(idx)
    # LAN: complete graph within a cluster
    for members in by_cluster.values():
        for i in members:
            for j in members:
                if i != j:
                    adj[i].append(j)
    # WAN: first worker of each cluster pair acts as gateway
    clusters = sorted(by_cluster)
    central = snapshot.central_cluster_id
    for ai, a in enumerate(clusters):
        for b in clusters[ai + 1 :]:
            delay = snapshot.delay_ms[a][b]
            if delay <= WAN_EDGE_DELAY_MS or central in (a, b):
                ga, gb = by_cluster[a][0], by_cluster[b][0]
                adj[ga].append(gb)
                adj[gb].append(ga)
    return adj


class DCGBEScheduler:
    """Centralised BE dispatcher with online GraphSAGE+A2C learning."""

    def __init__(
        self,
        config: Optional[DCGBEConfig] = None,
        *,
        encoder: Optional[GraphEncoder] = None,
        greedy: bool = False,
    ) -> None:
        self.config = config or DCGBEConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if encoder is None:
            encoder = GraphSAGEEncoder(
                N_NODE_FEATURES,
                [cfg.encoder_width] * cfg.hops,
                rng,
                sample_size=cfg.sample_size,
            )
        self.agent = A2CAgent(
            N_NODE_FEATURES,
            rng,
            encoder=encoder,
            config=A2CConfig(
                lr=cfg.lr,
                gamma=cfg.gamma,
                train_interval=cfg.train_interval,
            ),
        )
        self.greedy = greedy
        #: completions since the last decision, as the r_long accumulator.
        self._completion_mass = 0.0
        self.decisions = 0
        self.requeues = 0
        #: observability bus; assigned by the runner, None when disabled
        #: (kept for introspection — emissions go through the emitter).
        self.bus = None
        #: lifecycle emitter; rewired by the runner, null when standalone.
        self.emitter = NULL_EMITTER
        #: per-snapshot static state: (snapshot, adj, clamped totals, and
        #: the feature columns that cannot change within one snapshot).
        #: Pinning the snapshot reference keys the cache by identity.
        self._static_cache: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # runner feedback
    # ------------------------------------------------------------------ #
    def note_completion(
        self, request: ServiceRequest, node_cpu: float, node_mem: float
    ) -> None:
        """Accumulate the r_long mass for a completed BE request."""
        spec = request.spec
        mass = 0.0
        if node_cpu > 0:
            mass += spec.reference_resources.cpu / node_cpu
        if node_mem > 0:
            mass += spec.reference_resources.memory / node_mem
        self._completion_mass += mass

    def _long_term_reward(self) -> float:
        return 1.0 - math.exp(-self._completion_mass)

    # ------------------------------------------------------------------ #
    # dispatch (Alg. 3 main loop)
    # ------------------------------------------------------------------ #
    def dispatch_be(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        if not requests or not snapshot.nodes:
            return []
        nodes = snapshot.nodes
        adj, cpu_tot, mem_tot, static_cols = self._static_state(snapshot)
        # working copies updated as this round assigns requests
        cpu_ava = np.array([n.cpu_available for n in nodes])
        mem_ava = np.array([n.mem_available for n in nodes])
        backlog = np.array(
            [float(n.lc_queue + n.be_queue) for n in nodes]
        )
        # Q_{t,i}: the waiting-set demand per node (§5.3.1), seeded from the
        # snapshot and grown by this round's own placements.
        pending_cpu = np.array([n.be_queue_cpu for n in nodes])
        pending_mem = np.array([n.be_queue_mem for n in nodes])

        out: List[Assignment] = []
        for request in list(requests)[: self.config.max_per_round]:
            spec = request.spec
            need_cpu = spec.min_resources.cpu
            need_mem = spec.min_resources.memory
            mask = (cpu_ava >= need_cpu) & (mem_ava >= need_mem)
            features = self._features_fast(
                cpu_ava, mem_ava, pending_cpu, spec,
                cpu_tot, mem_tot, static_cols,
            )
            if not mask.any():
                # No node can process immediately: the request is still sent
                # to a target node and waits there (Alg. 3 requeues it from
                # the node if it stays unprocessable); the policy chooses
                # over all nodes so work keeps flowing under saturation.
                self.requeues += 1
                mask = None
            action = self.agent.act(features, adj, mask, greedy=self.greedy)
            node = nodes[action]
            out.append(
                Assignment(
                    request=request,
                    node_name=node.name,
                    cluster_id=node.cluster_id,
                    cost_ms=snapshot.delay_ms[snapshot.central_cluster_id][
                        node.cluster_id
                    ],
                )
            )
            self.decisions += 1

            # apply the decision to the working state
            cpu_ava[action] -= need_cpu
            mem_ava[action] -= need_mem
            backlog[action] += 1.0
            pending_cpu[action] += spec.reference_resources.cpu
            pending_mem[action] += spec.reference_resources.memory

            if not self.greedy:
                reward = self._reward(
                    action, nodes, pending_cpu, pending_mem
                )
                self.agent.record(
                    Transition(
                        features=features,
                        adj=adj,
                        mask=mask,
                        action=action,
                        reward=reward,
                    )
                )
        self.emitter.dispatch_round(
            now_ms,
            "dcg-be",
            snapshot.central_cluster_id,
            len(requests),
            len(out),
            float(sum(a.cost_ms for a in out)),
        )
        return out

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """The whole learning agent travels: encoder/actor/critic params,
        optimizer moments (aliasing to the params is preserved by the
        runner's single-memo deepcopy), replay buffer, and RNG."""
        return {
            "agent": self.agent,
            "completion_mass": self._completion_mass,
            "decisions": self.decisions,
            "requeues": self.requeues,
        }

    def restore_state(self, state: Dict) -> None:
        self.agent = state["agent"]
        self._completion_mass = state["completion_mass"]
        self.decisions = state["decisions"]
        self.requeues = state["requeues"]
        self._static_cache = None

    # ------------------------------------------------------------------ #
    # state + reward construction
    # ------------------------------------------------------------------ #
    def _static_state(self, snapshot: SystemSnapshot):
        """Topology + immutable feature columns, cached per snapshot.

        A snapshot is immutable once published, so its adjacency list,
        clamped totals, and the capacity/slack feature columns are computed
        once per refresh period instead of once per request.
        """
        cache = self._static_cache
        if cache is not None and cache[0] is snapshot:
            return cache[1], cache[2], cache[3], cache[4]
        nodes = snapshot.nodes
        adj = build_topology(nodes, snapshot)
        cpu_tot = np.array([max(n.cpu_total, 1e-9) for n in nodes])
        mem_tot = np.array([max(n.mem_total, 1e-9) for n in nodes])
        static_cols = (
            cpu_tot / 16.0,
            mem_tot / 32768.0,
            np.array([n.min_slack for n in nodes]),
        )
        self._static_cache = (snapshot, adj, cpu_tot, mem_tot, static_cols)
        return adj, cpu_tot, mem_tot, static_cols

    @staticmethod
    def _features_fast(
        cpu_ava: np.ndarray,
        mem_ava: np.ndarray,
        pending_cpu: np.ndarray,
        spec,
        cpu_tot: np.ndarray,
        mem_tot: np.ndarray,
        static_cols: tuple,
    ) -> np.ndarray:
        """Vectorised :meth:`_features` over precomputed clamped totals.

        Every column is an elementwise numpy op over the same operands the
        scalar loop uses, so the result is bit-identical (asserted by
        ``tests/test_dcg_be.py``).
        """
        n = cpu_ava.shape[0]
        feats = np.empty((n, N_NODE_FEATURES))
        feats[:, 0] = cpu_ava / cpu_tot
        feats[:, 1] = mem_ava / mem_tot
        feats[:, 2] = static_cols[0]
        feats[:, 3] = static_cols[1]
        feats[:, 4] = static_cols[2]
        feats[:, 5] = spec.reference_resources.cpu / cpu_tot
        feats[:, 6] = spec.reference_resources.memory / mem_tot
        feats[:, 7] = np.minimum(2.0, pending_cpu / cpu_tot)
        return feats

    @staticmethod
    def _features(
        nodes: Sequence[NodeSnapshot],
        cpu_ava: np.ndarray,
        mem_ava: np.ndarray,
        pending_cpu: np.ndarray,
        spec,
    ) -> np.ndarray:
        """Per-node state T of §5.3.1.

        ``pending_cpu`` is the *working* waiting-set demand — the snapshot's
        Q_{t,i} plus this round's own placements — so the queue-pressure
        feature moves as the round assigns requests and the policy spreads
        load instead of re-picking one node.
        """
        n = len(nodes)
        feats = np.zeros((n, N_NODE_FEATURES))
        for i, node in enumerate(nodes):
            cpu_total = max(node.cpu_total, 1e-9)
            mem_total = max(node.mem_total, 1e-9)
            feats[i, 0] = cpu_ava[i] / cpu_total
            feats[i, 1] = mem_ava[i] / mem_total
            feats[i, 2] = cpu_total / 16.0
            feats[i, 3] = mem_total / 32768.0
            feats[i, 4] = node.min_slack
            feats[i, 5] = spec.reference_resources.cpu / cpu_total
            feats[i, 6] = spec.reference_resources.memory / mem_total
            feats[i, 7] = min(2.0, pending_cpu[i] / cpu_total)
        return feats

    def _reward(
        self,
        action: int,
        nodes: Sequence[NodeSnapshot],
        pending_cpu: np.ndarray,
        pending_mem: np.ndarray,
    ) -> float:
        node = nodes[action]
        cpu_frac = pending_cpu[action] / max(node.cpu_total, 1e-9)
        mem_frac = pending_mem[action] / max(node.mem_total, 1e-9)
        r_short = math.exp(-max(cpu_frac, mem_frac))
        r_long = self._long_term_reward()
        self._completion_mass = 0.0
        return r_short + self.config.eta * r_long
