"""Scheduler interfaces shared by DSS-LC, DCG-BE, and all baselines.

Two scheduler roles exist (§3):

* an **LC scheduler** runs on *every* master node and dispatches that
  cluster's LC queue to workers in the local or geo-nearby clusters, using
  the state storage snapshot;
* a **BE scheduler** runs once, on the central cluster's master, and
  dispatches the globally forwarded BE queue to any worker in the system.

Both return :class:`Assignment` lists; requests left unassigned stay in the
master queue and are re-offered next tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from repro.core.state_storage import SystemSnapshot
from repro.sim.request import ServiceRequest

__all__ = ["Assignment", "LCScheduler", "BEScheduler", "group_by_type"]


@dataclass(frozen=True)
class Assignment:
    request: ServiceRequest
    node_name: str
    #: cluster hosting the node (denormalised for delay lookup).
    cluster_id: int
    #: flow-edge cost the decision paid (one-way delay, ms); carried so the
    #: observability layer can attach the MCMF cost to the schedule span.
    cost_ms: float = 0.0


class LCScheduler(Protocol):
    """Distributed per-master LC dispatch policy."""

    def dispatch(
        self,
        origin_cluster: int,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        eligible_clusters: Sequence[int],
        now_ms: float,
    ) -> List[Assignment]:
        ...


class BEScheduler(Protocol):
    """Centralised BE dispatch policy at the central cluster."""

    def dispatch(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        ...


def group_by_type(
    requests: Sequence[ServiceRequest],
) -> Dict[str, List[ServiceRequest]]:
    """Group a queue by service type (the per-k loop of Alg. 2)."""
    groups: Dict[str, List[ServiceRequest]] = {}
    for request in requests:
        groups.setdefault(request.spec.name, []).append(request)
    return groups
