"""GNN-SAC: the SAC-based learning baseline of Fig. 11(c).

Same state, action space, context filter, and reward as DCG-BE, but the
learner is discrete Soft Actor-Critic instead of advantage actor-critic.
The paper observes that "while GNN-SAC has strong exploration ability, it
struggles to calculate strategy differences" — DCG-BE's on-policy advantage
estimates track the fast-moving cluster state more closely than SAC's
replayed off-policy targets, which is the behaviour this reproduction shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.state_storage import SystemSnapshot
from repro.nn.gnn import GraphSAGEEncoder
from repro.nn.sac import SACAgent, SACConfig, SACTransition
from repro.sim.request import ServiceRequest

from .base import Assignment
from .dcg_be import DCGBEConfig, DCGBEScheduler, N_NODE_FEATURES, build_topology

__all__ = ["GNNSACScheduler"]


class GNNSACScheduler(DCGBEScheduler):
    """DCG-BE's interface with a SAC learner underneath."""

    def __init__(self, config: Optional[DCGBEConfig] = None, *, greedy: bool = False):
        self.config = config or DCGBEConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        encoder = GraphSAGEEncoder(
            N_NODE_FEATURES,
            [cfg.encoder_width] * cfg.hops,
            rng,
            sample_size=cfg.sample_size,
        )
        self.agent = SACAgent(
            N_NODE_FEATURES,
            rng,
            encoder=encoder,
            config=SACConfig(lr=cfg.lr, gamma=cfg.gamma),
        )
        self.greedy = greedy
        self._completion_mass = 0.0
        self.decisions = 0
        self.requeues = 0
        self._prev: Optional[tuple] = None  # (features, adj, mask, action, reward)

    # -- Checkpointable ------------------------------------------------ #
    def snapshot_state(self):
        state = super().snapshot_state()
        state["prev"] = self._prev
        return state

    def restore_state(self, state) -> None:
        super().restore_state(state)
        self._prev = state["prev"]

    def dispatch_be(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        if not requests or not snapshot.nodes:
            return []
        nodes = snapshot.nodes
        adj = build_topology(nodes, snapshot)
        cpu_ava = np.array([n.cpu_available for n in nodes])
        mem_ava = np.array([n.mem_available for n in nodes])
        backlog = np.array([float(n.lc_queue + n.be_queue) for n in nodes])
        pending_cpu = np.array([n.be_queue_cpu for n in nodes])
        pending_mem = np.array([n.be_queue_mem for n in nodes])

        out: List[Assignment] = []
        for request in list(requests)[: self.config.max_per_round]:
            spec = request.spec
            mask = (cpu_ava >= spec.min_resources.cpu) & (
                mem_ava >= spec.min_resources.memory
            )
            if not mask.any():
                self.requeues += 1
                mask = None  # queue at the chosen node (see DCG-BE notes)
            features = self._features(nodes, cpu_ava, mem_ava, pending_cpu, spec)
            action = self.agent.act(features, adj, mask, greedy=self.greedy)
            node = nodes[action]
            out.append(
                Assignment(
                    request=request, node_name=node.name, cluster_id=node.cluster_id
                )
            )
            self.decisions += 1
            cpu_ava[action] -= spec.min_resources.cpu
            mem_ava[action] -= spec.min_resources.memory
            backlog[action] += 1.0
            pending_cpu[action] += spec.reference_resources.cpu
            pending_mem[action] += spec.reference_resources.memory

            if not self.greedy:
                reward = self._reward(action, nodes, pending_cpu, pending_mem)
                # SAC needs (s, a, r, s'): close the previous transition with
                # the current state as its successor.
                if self._prev is not None:
                    pf, pa, pm, pact, prew = self._prev
                    self.agent.record(
                        SACTransition(
                            features=pf,
                            adj=pa,
                            mask=pm,
                            action=pact,
                            reward=prew,
                            next_features=features,
                            next_adj=adj,
                            next_mask=mask,
                        )
                    )
                self._prev = (features, adj, mask, action, reward)
        return out
