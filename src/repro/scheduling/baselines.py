"""Scheduling baselines from §7.2: load-greedy, K8s-native, scoring.

* **load-greedy** — send every request to the node with the lowest load in
  the latest snapshot.  Its known weakness (and the reason it loses to
  DSS-LC and DCG-BE) is *herding*: because snapshots refresh periodically, a
  whole burst lands on whichever node looked emptiest at the last refresh.
  It is an *inter-cluster* algorithm (global view), per §7.2.
* **K8s-native** — kube-proxy round-robin, blind to load, priority, and
  heterogeneity (§2.1).  Crucially it is NOT an inter-cluster scheduler:
  native K8s has no cross-cluster dispatcher, so in the BE role each
  request round-robins over its *origin cluster's* workers only — which is
  why §7.2 notes "all three inter-cluster scheduling algorithms outperform
  K8s-native by effectively utilizing system resources".
* **scoring** — the history-based weighted-score policy of [42]: combines
  free CPU/memory fractions, queue backlog, and transmission latency into a
  scalar score and picks the best node per request, decrementing a working
  copy of the snapshot as it goes.

All three implement both the LC and BE scheduler protocols (the paper uses
them on both sides of the pairing matrix in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.sim.request import ServiceRequest

from .base import Assignment

__all__ = ["LoadGreedyScheduler", "K8sNativeScheduler", "ScoringScheduler"]


def _eligible_nodes(
    snapshot: SystemSnapshot, clusters: Optional[Sequence[int]]
) -> List[NodeSnapshot]:
    return snapshot.nodes_of(list(clusters) if clusters is not None else None)


class LoadGreedyScheduler:
    """Lowest-load-first dispatch (both LC and BE roles)."""

    def __init__(self) -> None:
        self.dispatched = 0

    # -- Checkpointable ------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        return {"dispatched": self.dispatched}

    def restore_state(self, state: Dict) -> None:
        self.dispatched = state["dispatched"]

    @staticmethod
    def _load(node: NodeSnapshot, extra_queue: int) -> float:
        cpu_used = 1.0 - node.cpu_available / max(node.cpu_total, 1e-9)
        mem_used = 1.0 - node.mem_available / max(node.mem_total, 1e-9)
        backlog = (node.lc_queue + node.be_queue + extra_queue) * 0.05
        return max(cpu_used, mem_used) + backlog

    def _dispatch(
        self,
        requests: Sequence[ServiceRequest],
        nodes: List[NodeSnapshot],
    ) -> List[Assignment]:
        if not nodes:
            return []
        # Greedy on the (stale) snapshot.  A local queue counter damps
        # same-round herding, but the snapshot itself only refreshes
        # periodically — the residual herding is what loses to DSS-LC/DCG-BE.
        extra: Dict[str, int] = {n.name: 0 for n in nodes}
        out: List[Assignment] = []
        for request in requests:
            best = min(nodes, key=lambda n: self._load(n, extra[n.name]))
            extra[best.name] += 1
            out.append(
                Assignment(
                    request=request,
                    node_name=best.name,
                    cluster_id=best.cluster_id,
                )
            )
            self.dispatched += 1
        return out

    # LC role
    def dispatch(
        self,
        origin_cluster: int,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        eligible_clusters: Sequence[int],
        now_ms: float,
    ) -> List[Assignment]:
        return self._dispatch(requests, _eligible_nodes(snapshot, eligible_clusters))

    def dispatch_be(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        return self._dispatch(requests, snapshot.nodes)


class K8sNativeScheduler:
    """Round-robin over eligible nodes, one cursor per service."""

    def __init__(self) -> None:
        self._cursors: Dict[str, int] = {}

    # -- Checkpointable ------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        return {"cursors": self._cursors}

    def restore_state(self, state: Dict) -> None:
        self._cursors = state["cursors"]

    def _dispatch(
        self,
        requests: Sequence[ServiceRequest],
        nodes: List[NodeSnapshot],
    ) -> List[Assignment]:
        if not nodes:
            return []
        out: List[Assignment] = []
        for request in requests:
            cursor = self._cursors.get(request.spec.name, 0)
            node = nodes[cursor % len(nodes)]
            self._cursors[request.spec.name] = cursor + 1
            out.append(
                Assignment(
                    request=request,
                    node_name=node.name,
                    cluster_id=node.cluster_id,
                )
            )
        return out

    def dispatch(
        self,
        origin_cluster: int,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        eligible_clusters: Sequence[int],
        now_ms: float,
    ) -> List[Assignment]:
        return self._dispatch(requests, _eligible_nodes(snapshot, eligible_clusters))

    def dispatch_be(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        # K8s has no central BE dispatcher: each request is balanced over
        # its origin cluster's own workers (kube-proxy behaviour).
        out: List[Assignment] = []
        for request in requests:
            local = snapshot.nodes_of([request.origin_cluster])
            out.extend(self._dispatch([request], local))
        return out


@dataclass
class ScoringWeights:
    cpu: float = 0.35
    memory: float = 0.25
    queue: float = 0.20
    delay: float = 0.20


class ScoringScheduler:
    """History-based weighted scoring [42] with a working-copy snapshot."""

    def __init__(self, weights: Optional[ScoringWeights] = None) -> None:
        self.weights = weights or ScoringWeights()

    def _score(
        self,
        node: NodeSnapshot,
        request: ServiceRequest,
        delay_ms: float,
        extra_cpu: float,
        extra_queue: int,
        max_delay_ms: float,
    ) -> float:
        w = self.weights
        cpu_free = max(0.0, node.cpu_available - extra_cpu) / max(
            node.cpu_total, 1e-9
        )
        mem_free = node.mem_available / max(node.mem_total, 1e-9)
        backlog = min(1.0, (node.lc_queue + node.be_queue + extra_queue) / 32.0)
        delay_norm = delay_ms / max(max_delay_ms, 1e-9)
        return (
            w.cpu * cpu_free
            + w.memory * mem_free
            - w.queue * backlog
            - w.delay * delay_norm
        )

    def _dispatch(
        self,
        origin_cluster: Optional[int],
        requests: Sequence[ServiceRequest],
        nodes: List[NodeSnapshot],
        snapshot: SystemSnapshot,
    ) -> List[Assignment]:
        if not nodes:
            return []
        extra_cpu: Dict[str, float] = {n.name: 0.0 for n in nodes}
        extra_queue: Dict[str, int] = {n.name: 0 for n in nodes}
        max_delay = max(
            (max(row) for row in snapshot.delay_ms), default=1.0
        )
        out: List[Assignment] = []
        for request in requests:
            best, best_score = None, -np.inf
            for node in nodes:
                origin = (
                    origin_cluster if origin_cluster is not None else node.cluster_id
                )
                delay = snapshot.delay_ms[origin][node.cluster_id]
                score = self._score(
                    node,
                    request,
                    delay,
                    extra_cpu[node.name],
                    extra_queue[node.name],
                    max_delay,
                )
                if score > best_score:
                    best, best_score = node, score
            assert best is not None
            extra_cpu[best.name] += request.spec.min_resources.cpu
            extra_queue[best.name] += 1
            out.append(
                Assignment(
                    request=request,
                    node_name=best.name,
                    cluster_id=best.cluster_id,
                )
            )
        return out

    def dispatch(
        self,
        origin_cluster: int,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        eligible_clusters: Sequence[int],
        now_ms: float,
    ) -> List[Assignment]:
        return self._dispatch(
            origin_cluster,
            requests,
            _eligible_nodes(snapshot, eligible_clusters),
            snapshot,
        )

    def dispatch_be(
        self,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        now_ms: float,
    ) -> List[Assignment]:
        return self._dispatch(None, requests, snapshot.nodes, snapshot)
