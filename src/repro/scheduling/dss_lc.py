"""DSS-LC: Distributed Service request Scheduling for LC requests (§5.2).

Each master runs this algorithm on its own LC queue every tick, making
"one-time decisions for the dynamic number of requests":

1. requests are grouped by type ``k``;
2. node supply/demand terms are computed — the master supplies its pending
   count ``t_k``, every eligible worker absorbs
   ``|t_i^k| = min(cpu_ava / r^c_k, mem_ava / r^m_k)`` requests (Eq. 2),
   where the per-request minima ``r^{c,k}, r^{m,k}`` come from the QoS
   re-assurance mechanism when HRM is active;
3. **case 1** (demand ≤ capacity): a single graph ``G_k`` is built over
   available resources and solved as a min-cost max-flow (transmission delay
   as cost) — our solver stands in for the paper's OR-Tools call;
4. **case 2** (demand > capacity): the random sorting function ρ(·) splits
   the queue into ``R_k`` (placed immediately, as case 1) and ``R'_k``
   (queued), and a second graph ``Ĝ'_k`` distributes the queued remainder
   proportionally to *total* node resources scaled by the augmentation
   factor λ (Eqs. 7–8), respecting edge heterogeneity.

Decision latency is tracked per call so the §7.2 response-time claims
(1.99 ms @ 500 nodes, 3.98 ms @ 1000) can be benchmarked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.flow.graph import AssignmentResult, SupplyDemandGraph, solve_transport
from repro.flow.mcmf import MinCostMaxFlow
from repro.hrm.reassurance import ReassuranceMechanism
from repro.obs.emitter import NULL_EMITTER
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceSpec

from .base import Assignment, group_by_type
from .priority import PriorityPolicy, make_priority

__all__ = [
    "DSSLCConfig",
    "DSSLCScheduler",
    "DispatchAuditRecord",
    "augmented_capacities",
]


def augmented_capacities(
    total_units: Sequence[int], n_queued: int
) -> List[int]:
    """Eq. 7–8: scale total-resource units by λ so Σ capacities = |R'_k|.

    Uses largest-remainder rounding so the integral capacities still sum to
    exactly the queued count (the paper's λ guarantees this in the
    continuous formulation).  Module-level so the invariant checker can
    recompute the bound from audited raw inputs.
    """
    total = sum(total_units)
    if total <= 0:
        # degenerate topology: spread uniformly
        base = [n_queued // len(total_units)] * len(total_units)
        for i in range(n_queued - sum(base)):
            base[i % len(base)] += 1
        return base
    lam = n_queued / total
    raw = [u * lam for u in total_units]
    floors = [int(x) for x in raw]
    shortfall = n_queued - sum(floors)
    remainders = sorted(
        range(len(raw)), key=lambda i: raw[i] - floors[i], reverse=True
    )
    for i in remainders[:shortfall]:
        floors[i] += 1
    return floors


@dataclass
class DispatchAuditRecord:
    """Raw inputs + outcome of one per-type dispatch round.

    The invariant checker re-derives the Eq. 2 / Eq. 7–8 bounds from these
    *inputs* with the independent scalar path in :mod:`repro.flow.reference`
    and checks the recorded placement counts against them — auditing the
    decision, not trusting the scheduler's own arithmetic.
    """

    service: str
    node_names: List[str]
    cpu_available: List[float]
    mem_available: List[float]
    cpu_total: List[float]
    mem_total: List[float]
    lc_queue: List[int]
    r_cpu: List[float]
    r_mem: List[float]
    target_fill: float
    #: immediate (case-1 / R_k) placements per node this round.
    immediate_counts: List[int]
    #: queued-path (R'_k, Ĝ'_k) placements per node this round.
    queued_counts: List[int]
    #: size of the queued remainder handed to Ĝ'_k (post max_queue_push cap).
    n_queued: int


@dataclass
class DSSLCConfig:
    #: per-link transmission capacity (requests per decision round), the
    #: c_{i,j} bound of Eq. 4.
    link_capacity: int = 64
    #: cap on queued requests pushed per round in case 2 (keeps node queues
    #: from exploding under pathological overload).
    max_queue_push: int = 256
    #: utilisation the dispatcher is willing to fill a node to.  Packing to
    #: 100 % pushes nodes past the interference knee and every co-located
    #: request slows down; leaving headroom makes DSS-LC spill to geo-nearby
    #: clusters before a node becomes contended.
    target_fill: float = 0.85
    #: the ρ(·) case-2 priority policy: random (paper default), fifo,
    #: deadline, or tier (§5.2.2: "can be changed as required").
    priority: str = "random"
    #: warm-start each pooled solver's Johnson potentials from its previous
    #: solve.  Off by default: warm starts can change Dijkstra tie-breaks
    #: among equal-delay workers, so runs are no longer bit-identical to the
    #: cold-start schedule (flow cost is unchanged).
    reuse_potentials: bool = False
    #: solve all request types jointly over shared link capacities (the
    #: full multi-commodity formulation) instead of the paper's per-type
    #: "in parallel" graphs.  Costs one sequential MCMF pass per type but
    #: never oversubscribes a link across types.
    coordinate_types: bool = False
    seed: int = 0


class DSSLCScheduler:
    """The paper's LC dispatch algorithm (Alg. 2)."""

    def __init__(
        self,
        config: Optional[DSSLCConfig] = None,
        *,
        reassurance: Optional[ReassuranceMechanism] = None,
    ) -> None:
        self.config = config or DSSLCConfig()
        self.reassurance = reassurance
        self.rng = np.random.default_rng(self.config.seed)
        #: per-master ρ(·) policies, lazily built with seed
        #: ``(config.seed, origin_cluster)``.  Each master runs Alg. 2
        #: independently in the paper, so each owns an independent random
        #: stream — this is also what makes per-master dispatch rounds
        #: order-free, which the sharded execution backend relies on.
        self._priorities: Dict[int, PriorityPolicy] = {}
        #: when set, :meth:`_per_request_minima` serves these
        #: ``{service: (r_cpu, r_mem)}`` vectors instead of querying the
        #: re-assurance mechanism — shard workers receive pre-resolved
        #: minima because they do not hold the HRM objects.
        self._minima_override: Optional[Dict[str, tuple]] = None
        self.decision_latencies_ms: List[float] = []
        self.case2_rounds = 0
        #: observability bus; assigned by the runner, None when disabled
        #: (kept for introspection — emissions go through the emitter).
        self.bus = None
        #: lifecycle emitter; rewired by the runner, null when standalone.
        self.emitter = NULL_EMITTER
        #: MCMF objective accumulated across the current round's solves.
        self._flow_cost_round = 0.0
        #: one solver arena per (origin master, request type): graph shape
        #: is stable across ticks for a given pair, so the flat flow arrays
        #: are recycled instead of reallocated every dispatch round.
        self._arenas: Dict[Tuple[int, str], MinCostMaxFlow] = {}
        #: per-type minima cache: (service, id(nodes)) -> (nodes ref,
        #: reassurance version, r_cpu, r_mem).  Each master queries its own
        #: eligible-node list, so the list identity is part of the key; the
        #: pinned nodes reference inside the entry defeats ``id()`` reuse.
        self._minima_cache: Dict[Tuple[str, int], tuple] = {}
        #: per-node resource columns (cpu/mem available+total, lc queue)
        #: as arrays, keyed and pinned the same way as the minima cache.
        self._node_array_cache: Dict[int, tuple] = {}
        #: when set (by the runner with invariant checking on), every
        #: per-type dispatch round appends a :class:`DispatchAuditRecord`;
        #: the invariant stage drains it each tick.  None = no recording.
        self.audit_log: Optional[List[DispatchAuditRecord]] = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def priority_for(self, origin_cluster: int) -> PriorityPolicy:
        """The master's own ρ(·) policy (independent stream per master)."""
        policy = self._priorities.get(origin_cluster)
        if policy is None:
            policy = make_priority(
                self.config.priority, seed=(self.config.seed, origin_cluster)
            )
            self._priorities[origin_cluster] = policy
        return policy

    def minima_for(
        self, spec: ServiceSpec, nodes: List[NodeSnapshot]
    ) -> tuple:
        """Resolved per-node ``(r^c_k, r^m_k)`` vectors for ``spec``.

        Public so the sharded backend can pre-resolve minima in the parent
        (where the re-assurance mechanism lives) and ship plain arrays to
        workers via :attr:`_minima_override`.
        """
        return self._per_request_minima(spec, nodes)

    def dispatch(
        self,
        origin_cluster: int,
        requests: Sequence[ServiceRequest],
        snapshot: SystemSnapshot,
        eligible_clusters: Sequence[int],
        now_ms: float,
    ) -> List[Assignment]:
        if not requests:
            return []
        start = time.perf_counter()
        case2_before = self.case2_rounds
        self._flow_cost_round = 0.0
        assignments: List[Assignment] = []
        nodes = snapshot.nodes_of(list(eligible_clusters))
        if nodes:
            groups = group_by_type(requests)
            if self.config.coordinate_types and len(groups) > 1:
                assignments.extend(
                    self._dispatch_coordinated(
                        origin_cluster, groups, nodes, snapshot
                    )
                )
            else:
                for service, reqs in groups.items():
                    assignments.extend(
                        self._dispatch_type(
                            origin_cluster, reqs, nodes, snapshot
                        )
                    )
        decision_ms = (time.perf_counter() - start) * 1000.0
        self.decision_latencies_ms.append(decision_ms)
        self.emitter.dispatch_round(
            now_ms,
            "dss-lc",
            origin_cluster,
            len(requests),
            len(assignments),
            self._flow_cost_round,
            decision_ms=decision_ms,
            case2=self.case2_rounds > case2_before,
        )
        return assignments

    # ------------------------------------------------------------------ #
    # per-type scheduling (the body of Alg. 2)
    # ------------------------------------------------------------------ #
    def _dispatch_type(
        self,
        origin_cluster: int,
        requests: List[ServiceRequest],
        nodes: List[NodeSnapshot],
        snapshot: SystemSnapshot,
    ) -> List[Assignment]:
        spec = requests[0].spec
        r_cpu, r_mem = self._per_request_minima(spec, nodes)
        cpu_ava, mem_ava, cpu_tot, mem_tot, lc_q = self._node_arrays(nodes)

        # |t_i^k| of Eq. 2, with two practical corrections: the node is only
        # filled to ``target_fill`` of its total (past that every co-located
        # request pays interference), and requests already waiting at the
        # node consume capacity units this round.  Elementwise array ops are
        # IEEE-identical to the scalar per-node loop they replace.
        hold = 1.0 - self.config.target_fill
        cpu_eff = np.maximum(0.0, cpu_ava - hold * cpu_tot)
        mem_eff = np.maximum(0.0, mem_ava - hold * mem_tot)
        units = np.minimum(cpu_eff / r_cpu, mem_eff / r_mem).astype(np.int64)
        capacities = np.maximum(0, units - lc_q)
        pending = len(requests)
        total_capacity = int(capacities.sum())

        if pending <= total_capacity:
            placed = self._solve_and_assign(
                origin_cluster, requests, nodes, capacities, snapshot
            )
            if self.audit_log is not None:
                self._record_audit(
                    spec, nodes, r_cpu, r_mem, placed, [], 0
                )
            return placed

        # case 2: split via the configured ρ(·) policy (paper default:
        # random — all LC types share one priority in their scenario).
        self.case2_rounds += 1
        ordered = self.priority_for(origin_cluster).order(
            requests, snapshot.time_ms
        )
        immediate = ordered[:total_capacity]
        queued = ordered[total_capacity:]
        assignments = self._solve_and_assign(
            origin_cluster, immediate, nodes, capacities, snapshot
        )
        immediate_assignments = list(assignments)

        queued = queued[: self.config.max_queue_push]
        queued_assignments: List[Assignment] = []
        if queued:
            total_units = np.minimum(
                cpu_tot / r_cpu, mem_tot / r_mem
            ).astype(np.int64)
            # Ĝ'_k capacities come from *remaining* total resources: the
            # immediate placements of this very round and the requests
            # already queued at each node consume capacity units, so both
            # are deducted before the λ scaling of Eqs. 7-8 (counting the
            # raw totals twice over-assigned busy nodes).
            placed_now = np.zeros(len(nodes), dtype=np.int64)
            index_of = {n.name: i for i, n in enumerate(nodes)}
            for a in immediate_assignments:
                placed_now[index_of[a.node_name]] += 1
            adjusted = np.maximum(0, total_units - placed_now - lc_q)
            aug_caps = self._augmented_capacities(
                [int(u) for u in adjusted], len(queued)
            )
            queued_assignments = self._solve_and_assign(
                origin_cluster, queued, nodes, aug_caps, snapshot
            )
            assignments.extend(queued_assignments)
        if self.audit_log is not None:
            self._record_audit(
                spec,
                nodes,
                r_cpu,
                r_mem,
                immediate_assignments,
                queued_assignments,
                len(queued),
            )
        return assignments

    def _record_audit(
        self,
        spec: ServiceSpec,
        nodes: List[NodeSnapshot],
        r_cpu,
        r_mem,
        immediate: List[Assignment],
        queued: List[Assignment],
        n_queued: int,
    ) -> None:
        index_of = {n.name: i for i, n in enumerate(nodes)}
        immediate_counts = [0] * len(nodes)
        for a in immediate:
            immediate_counts[index_of[a.node_name]] += 1
        queued_counts = [0] * len(nodes)
        for a in queued:
            queued_counts[index_of[a.node_name]] += 1
        self.audit_log.append(
            DispatchAuditRecord(
                service=spec.name,
                node_names=[n.name for n in nodes],
                cpu_available=[n.cpu_available for n in nodes],
                mem_available=[n.mem_available for n in nodes],
                cpu_total=[n.cpu_total for n in nodes],
                mem_total=[n.mem_total for n in nodes],
                lc_queue=[n.lc_queue for n in nodes],
                r_cpu=[float(x) for x in r_cpu],
                r_mem=[float(x) for x in r_mem],
                target_fill=self.config.target_fill,
                immediate_counts=immediate_counts,
                queued_counts=queued_counts,
                n_queued=n_queued,
            )
        )

    # ------------------------------------------------------------------ #
    # coordinated (true multi-commodity) dispatch
    # ------------------------------------------------------------------ #
    def _dispatch_coordinated(
        self,
        origin_cluster: int,
        groups: Dict[str, List[ServiceRequest]],
        nodes: List[NodeSnapshot],
        snapshot: SystemSnapshot,
    ) -> List[Assignment]:
        """Solve every type jointly over shared master→worker links.

        Node absorption stays per-commodity (each type has its own resource
        footprint); the transmission capacities c_{i,j} of Eq. 4 are shared.
        Requests the joint solve cannot place stay queued at the master.
        """
        from repro.flow.multicommodity import Commodity, SharedLink, solve_sequential

        fill = self.config.target_fill
        commodities: List[Commodity] = []
        for service, reqs in groups.items():
            spec = reqs[0].spec
            r_cpu, r_mem = self._per_request_minima(spec, nodes)
            supplies = [len(reqs)]
            for i, n in enumerate(nodes):
                cpu_eff = max(0.0, n.cpu_available - (1.0 - fill) * n.cpu_total)
                mem_eff = max(0.0, n.mem_available - (1.0 - fill) * n.mem_total)
                units = self._node_units(cpu_eff, mem_eff, r_cpu[i], r_mem[i])
                supplies.append(-max(0, units - n.lc_queue))
            commodities.append(Commodity(service, supplies))

        links = [
            SharedLink(
                0,
                1 + i,
                snapshot.delay_ms[origin_cluster][n.cluster_id],
                self.config.link_capacity,
            )
            for i, n in enumerate(nodes)
        ]
        result = solve_sequential(1 + len(nodes), commodities, links)

        assignments: List[Assignment] = []
        for service, reqs in groups.items():
            cursor = 0
            for (src, dst), flow in sorted(result.flows[service].items()):
                node = nodes[dst - 1]
                delay = snapshot.delay_ms[origin_cluster][node.cluster_id]
                for _ in range(flow):
                    if cursor >= len(reqs):
                        break
                    assignments.append(
                        Assignment(
                            request=reqs[cursor],
                            node_name=node.name,
                            cluster_id=node.cluster_id,
                            cost_ms=delay,
                        )
                    )
                    self._flow_cost_round += delay
                    cursor += 1
            # overflow the joint solve could not place follows the case-2
            # queued path (Ĝ'_k over total resources, Eq. 7-8) — critically,
            # this ships LC to busy nodes where HRM preemption frees BE-held
            # resources; holding them at the master would starve them.
            leftover = reqs[cursor:][: self.config.max_queue_push]
            if leftover:
                self.case2_rounds += 1
                spec = leftover[0].spec
                r_cpu, r_mem = self._per_request_minima(spec, nodes)
                # remaining totals: deduct this round's joint-solve
                # placements and each node's existing backlog, mirroring
                # the per-type case-2 path.
                placed_now = [0] * len(nodes)
                index_of = {n.name: i for i, n in enumerate(nodes)}
                for a in assignments:
                    placed_now[index_of[a.node_name]] += 1
                total_units = [
                    max(
                        0,
                        self._node_units(
                            n.cpu_total, n.mem_total, r_cpu[i], r_mem[i]
                        )
                        - placed_now[i]
                        - n.lc_queue,
                    )
                    for i, n in enumerate(nodes)
                ]
                aug_caps = self._augmented_capacities(
                    total_units, len(leftover)
                )
                assignments.extend(
                    self._solve_and_assign(
                        origin_cluster, leftover, nodes, aug_caps, snapshot
                    )
                )
        return assignments

    def _per_request_minima(
        self, spec: ServiceSpec, nodes: List[NodeSnapshot]
    ) -> tuple:
        """Per-node (r^c_k, r^m_k), re-assurance-adjusted when available.

        Memoized per (node list, re-assurance version): the node list is a
        shared snapshot object, and re-assurance minima only move when its
        control loop fires, so successive dispatch rounds within a snapshot
        period reuse the same vectors.
        """
        if self._minima_override is not None:
            entry = self._minima_override.get(spec.name)
            if entry is not None:
                return entry
        version = self.reassurance.version if self.reassurance is not None else 0
        key = (spec.name, id(nodes))
        cached = self._minima_cache.get(key)
        if cached is not None and cached[0] is nodes and cached[1] == version:
            return cached[2], cached[3]
        r_cpu = np.empty(len(nodes))
        r_mem = np.empty(len(nodes))
        for i, n in enumerate(nodes):
            if self.reassurance is not None:
                r = self.reassurance.min_resources(n.name, spec)
            else:
                r = spec.min_resources
            r_cpu[i] = max(r.cpu, 1e-9)
            r_mem[i] = max(r.memory, 1e-9)
        if len(self._minima_cache) > 512:
            self._minima_cache.clear()
        self._minima_cache[key] = (nodes, version, r_cpu, r_mem)
        return r_cpu, r_mem

    def _node_arrays(self, nodes: List[NodeSnapshot]) -> tuple:
        """Resource columns for a snapshot's eligible-node list, as arrays.

        Valid for the lifetime of the list object (node views are frozen for
        a snapshot period); the entry pins the list so a recycled ``id()``
        can never serve stale columns.
        """
        key = id(nodes)
        cached = self._node_array_cache.get(key)
        if cached is not None and cached[0] is nodes:
            return cached[1]
        arrays = (
            np.array([n.cpu_available for n in nodes]),
            np.array([n.mem_available for n in nodes]),
            np.array([n.cpu_total for n in nodes]),
            np.array([n.mem_total for n in nodes]),
            np.array([n.lc_queue for n in nodes], dtype=np.int64),
        )
        if len(self._node_array_cache) > 64:
            self._node_array_cache.clear()
        self._node_array_cache[key] = (nodes, arrays)
        return arrays

    @staticmethod
    def _node_units(
        cpu_ava: float, mem_ava: float, r_cpu: float, r_mem: float
    ) -> int:
        """|t_i^k| of Eq. 2 (or its total-resource analogue for Eq. 7)."""
        return max(0, int(min(cpu_ava / r_cpu, mem_ava / r_mem)))

    def _augmented_capacities(
        self, total_units: List[int], n_queued: int
    ) -> List[int]:
        """Eq. 7–8 λ scaling; see :func:`augmented_capacities`."""
        return augmented_capacities(total_units, n_queued)

    # ------------------------------------------------------------------ #
    # graph construction + flow solve
    # ------------------------------------------------------------------ #
    def _solve_and_assign(
        self,
        origin_cluster: int,
        requests: List[ServiceRequest],
        nodes: List[NodeSnapshot],
        capacities: List[int],
        snapshot: SystemSnapshot,
    ) -> List[Assignment]:
        if not requests:
            return []
        arena_key = (origin_cluster, requests[0].spec.name)
        arena = self._arenas.get(arena_key)
        if arena is None:
            arena = self._arenas[arena_key] = MinCostMaxFlow(len(nodes) + 3)
        graph = SupplyDemandGraph()
        # node 0 is the origin master (supply); 1..N are workers (demand)
        graph.supplies = [len(requests)] + [-c for c in capacities]
        for i, node in enumerate(nodes):
            delay = snapshot.delay_ms[origin_cluster][node.cluster_id]
            cap = min(self.config.link_capacity, len(requests))
            # Convex load cost: each deeper slice of a node's capacity pays a
            # growing queueing-delay surcharge, so the min-cost flow spreads
            # across nodes instead of filling the closest one to the brim.
            # (§5.2.2 notes richer traffic-engineering terms slot in here.)
            remaining = min(cap, capacities[i])
            slice_size = max(1, (remaining + 2) // 3)
            for depth, surcharge in enumerate((0.0, 6.0, 18.0)):
                take = min(slice_size, remaining)
                if take <= 0:
                    break
                graph.edges.append((0, 1 + i, delay + surcharge, take))
                remaining -= take
        result: AssignmentResult = solve_transport(
            graph,
            arena=arena,
            reuse_potentials=self.config.reuse_potentials,
        )
        self._flow_cost_round += result.total_delay_ms

        assignments: List[Assignment] = []
        cursor = 0
        for j, count in sorted(result.absorbed.items()):
            node = nodes[j - 1]
            delay = snapshot.delay_ms[origin_cluster][node.cluster_id]
            for _ in range(count):
                if cursor >= len(requests):
                    break
                assignments.append(
                    Assignment(
                        request=requests[cursor],
                        node_name=node.name,
                        cluster_id=node.cluster_id,
                        cost_ms=delay,
                    )
                )
                cursor += 1
        return assignments

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def mean_decision_latency_ms(self) -> float:
        if not self.decision_latencies_ms:
            return 0.0
        return float(np.mean(self.decision_latencies_ms))

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """RNG positions and counters.  Solver arenas and the id()-keyed
        snapshot caches are pure accelerators (self-invalidating via ``is``
        checks) and are rebuilt, not restored."""
        return {
            "rng": self.rng.bit_generator.state,
            # one stream per master; stateless policies contribute nothing
            "priority_rngs": {
                cid: policy.rng.bit_generator.state
                for cid, policy in sorted(self._priorities.items())
                if hasattr(policy, "rng")
            },
            "decision_latencies_ms": self.decision_latencies_ms,
            "case2_rounds": self.case2_rounds,
            "flow_cost_round": self._flow_cost_round,
        }

    def restore_state(self, state: Dict) -> None:
        self.rng.bit_generator.state = state["rng"]
        self._priorities.clear()
        for cid, rng_state in state["priority_rngs"].items():
            policy = self.priority_for(cid)
            if hasattr(policy, "rng"):
                policy.rng.bit_generator.state = rng_state
        self.decision_latencies_ms = state["decision_latencies_ms"]
        self.case2_rounds = state["case2_rounds"]
        self._flow_cost_round = state["flow_cost_round"]
        self._minima_cache.clear()
        self._node_array_cache.clear()

    def solver_stats(self) -> Dict[str, float]:
        """Aggregate counters across all pooled solver arenas."""
        return {
            "arenas": len(self._arenas),
            "solves": sum(a.solves for a in self._arenas.values()),
            "augmentations": sum(
                a.augmentations for a in self._arenas.values()
            ),
            "warm_starts": sum(a.warm_starts for a in self._arenas.values()),
            "case2_rounds": self.case2_rounds,
            "mean_decision_latency_ms": round(
                self.mean_decision_latency_ms(), 4
            ),
        }
