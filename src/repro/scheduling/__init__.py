"""Traffic scheduling: DSS-LC, DCG-BE, and the §7.2 baselines."""

from .base import Assignment, group_by_type
from .baselines import K8sNativeScheduler, LoadGreedyScheduler, ScoringScheduler
from .dcg_be import DCGBEConfig, DCGBEScheduler
from .dss_lc import DSSLCConfig, DSSLCScheduler
from .gnn_sac import GNNSACScheduler

__all__ = [
    "Assignment",
    "group_by_type",
    "DSSLCScheduler",
    "DSSLCConfig",
    "DCGBEScheduler",
    "DCGBEConfig",
    "GNNSACScheduler",
    "LoadGreedyScheduler",
    "K8sNativeScheduler",
    "ScoringScheduler",
]
