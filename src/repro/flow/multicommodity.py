"""Multi-commodity coordination over shared link capacities.

§5.2.1 formulates LC dispatch as a *Multi-Commodity* Network Flow: every
request type ``k`` is a commodity with its own supply/demand pattern, but
Eq. 4's transmission capacities ``c_{i,j}`` are shared across commodities.
Integral MCNF is NP-hard in general; practical traffic-engineering systems
(and OR-Tools-based pipelines like the paper's) solve it with sequential
single-commodity passes over a shared residual network, which is what this
module implements:

1. commodities are ordered (most-constrained first by default: least
   capacity slack per unit of demand);
2. each commodity runs a min-cost max-flow on the network with the *current
   residual* link capacities;
3. its flow is subtracted from the shared links before the next commodity.

The result is feasible by construction (never exceeds shared capacity) and
optimal per commodity given the residuals — the standard sequential
heuristic.  A ``rounds`` parameter re-runs the sequence with rotated
ordering to reduce order bias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import COST_SCALE
from .mcmf import MinCostMaxFlow

__all__ = ["Commodity", "SharedLink", "MultiCommodityResult", "solve_sequential"]


@dataclass
class Commodity:
    """One request type's supply/demand over the shared node set.

    ``supplies[i] > 0``: node i must ship that many units of this commodity;
    ``supplies[i] < 0``: node i can absorb that many units.
    """

    name: str
    supplies: List[int]


@dataclass
class SharedLink:
    src: int
    dst: int
    delay_ms: float
    capacity: int


@dataclass
class MultiCommodityResult:
    #: commodity name → {(src, dst): flow}
    flows: Dict[str, Dict[Tuple[int, int], int]]
    #: commodity name → units successfully routed
    placed: Dict[str, int]
    #: total delay cost over all commodities (ms · units)
    total_delay_ms: float
    #: remaining capacity per link after all commodities
    residual: Dict[Tuple[int, int], int]

    def link_usage(self) -> Dict[Tuple[int, int], int]:
        usage: Dict[Tuple[int, int], int] = {}
        for flows in self.flows.values():
            for key, f in flows.items():
                usage[key] = usage.get(key, 0) + f
        return usage


def _constraint_score(commodity: Commodity) -> float:
    """Demand volume; larger = scheduled earlier (most constrained first)."""
    return float(sum(s for s in commodity.supplies if s > 0))


def solve_sequential(
    n_nodes: int,
    commodities: Sequence[Commodity],
    links: Sequence[SharedLink],
    *,
    rounds: int = 1,
) -> MultiCommodityResult:
    """Route every commodity over the shared links (sequential heuristic).

    With ``rounds > 1`` the commodity order rotates each round and only the
    best round (most total units placed, ties broken by lower delay) is
    returned.
    """
    if n_nodes <= 0:
        raise ValueError("need at least one node")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    ordered = sorted(commodities, key=_constraint_score, reverse=True)
    best: Optional[MultiCommodityResult] = None
    for round_idx in range(rounds):
        rotation = ordered[round_idx % max(1, len(ordered)):] + ordered[
            : round_idx % max(1, len(ordered))
        ]
        result = _one_pass(n_nodes, rotation, links)
        if best is None or _better(result, best):
            best = result
    assert best is not None
    return best


def _better(a: MultiCommodityResult, b: MultiCommodityResult) -> bool:
    pa, pb = sum(a.placed.values()), sum(b.placed.values())
    if pa != pb:
        return pa > pb
    return a.total_delay_ms < b.total_delay_ms


def _one_pass(
    n_nodes: int,
    commodities: Sequence[Commodity],
    links: Sequence[SharedLink],
) -> MultiCommodityResult:
    residual: Dict[Tuple[int, int], int] = {}
    for link in links:
        key = (link.src, link.dst)
        residual[key] = residual.get(key, 0) + link.capacity
    delay_of: Dict[Tuple[int, int], float] = {
        (l.src, l.dst): l.delay_ms for l in links
    }

    flows: Dict[str, Dict[Tuple[int, int], int]] = {}
    placed: Dict[str, int] = {}
    total_delay = 0.0

    for commodity in commodities:
        if len(commodity.supplies) != n_nodes:
            raise ValueError(
                f"commodity {commodity.name}: supplies length "
                f"{len(commodity.supplies)} != n_nodes {n_nodes}"
            )
        source, sink = n_nodes, n_nodes + 1
        net = MinCostMaxFlow(n_nodes + 2)
        for i, s in enumerate(commodity.supplies):
            if s > 0:
                net.add_edge(source, i, s, 0)
            elif s < 0:
                net.add_edge(i, sink, -s, 0)
        edge_keys: List[Tuple[int, Tuple[int, int]]] = []
        for key, cap in residual.items():
            if cap <= 0:
                continue
            cost = max(0, int(round(delay_of[key] * COST_SCALE)))
            idx = net.add_edge(key[0], key[1], cap, cost)
            edge_keys.append((idx, key))
        solved = net.solve(source, sink)

        commodity_flows: Dict[Tuple[int, int], int] = {}
        for idx, key in edge_keys:
            f = solved.edge_flows[idx]
            if f > 0:
                commodity_flows[key] = f
                residual[key] -= f
                total_delay += f * delay_of[key]
        flows[commodity.name] = commodity_flows
        placed[commodity.name] = solved.flow

    return MultiCommodityResult(
        flows=flows,
        placed=placed,
        total_delay_ms=total_delay,
        residual=residual,
    )
