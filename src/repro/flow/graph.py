"""Helpers for building flow networks from scheduling graphs.

DSS-LC (§5.2) models each LC request type ``k`` as a graph ``G_k`` whose nodes
carry a supply/demand term ``t_i^k`` (positive = pending requests at a master,
negative = processing capacity at a worker) and whose edges carry transmission
delay and capacity.  This module lowers such a graph to a single-commodity
min-cost max-flow instance with a super-source/super-sink, which is exactly
how multi-source multi-sink transportation problems are solved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .mcmf import MinCostMaxFlow, FlowResult

__all__ = ["SupplyDemandGraph", "AssignmentResult", "solve_transport"]

#: Multiplier converting float delays (ms) to integer costs (µs resolution).
COST_SCALE = 1000


@dataclass
class SupplyDemandGraph:
    """A supply/demand graph in the paper's ``G_k`` form.

    Attributes
    ----------
    supplies:
        ``supplies[i] > 0`` means node ``i`` has that many pending requests to
        place (a master); ``supplies[i] < 0`` means node ``i`` can absorb
        ``-supplies[i]`` requests (a worker).  Zero nodes are pure relays.
    edges:
        ``(src, dst, delay_ms, capacity)`` tuples.  Delay becomes the flow
        cost; capacity bounds the number of requests routed over the link.
    """

    supplies: List[int] = field(default_factory=list)
    edges: List[Tuple[int, int, float, int]] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return len(self.supplies)

    def total_demand(self) -> int:
        return sum(s for s in self.supplies if s > 0)

    def total_capacity(self) -> int:
        return sum(-s for s in self.supplies if s < 0)


@dataclass
class AssignmentResult:
    """Routing decision produced by :func:`solve_transport`.

    ``routed[(i, j)]`` is the number of requests moved over edge ``(i, j)``;
    ``absorbed[j]`` is how many requests node ``j`` ends up processing
    (including requests that originate locally when ``allow_local`` is set).
    """

    routed: Dict[Tuple[int, int], int]
    absorbed: Dict[int, int]
    placed: int
    total_delay_ms: float


def solve_transport(
    graph: SupplyDemandGraph,
    *,
    local_processing: bool = True,
    arena: Optional[MinCostMaxFlow] = None,
    reuse_potentials: bool = False,
) -> AssignmentResult:
    """Route supply to demand at minimum total transmission delay.

    A super-source connects to every positive-supply node and every
    negative-supply node connects to a super-sink.  When ``local_processing``
    is true, a node that both holds pending requests and has capacity may
    process its own requests at zero delay (the common case for a
    master+worker edge-cloud).

    ``arena`` reuses a caller-held :class:`MinCostMaxFlow` instance (its
    network is rebuilt in place), avoiding per-call solver allocation on the
    dispatch hot path.  ``reuse_potentials`` is forwarded to the solver; see
    :meth:`MinCostMaxFlow.solve` for why it defaults to off.
    """
    n = graph.n_nodes
    if n == 0:
        return AssignmentResult({}, {}, 0, 0.0)
    source = n
    sink = n + 1
    if arena is None:
        net = MinCostMaxFlow(n + 2)
    else:
        net = arena
        net.rebuild(n + 2)

    # Stage all arcs and hand them to the solver in one bulk call (same
    # order, hence bit-identical arrays, as per-arc add_edge calls).
    supply_edge: Dict[int, int] = {}
    demand_edge: Dict[int, int] = {}
    staged: List[Tuple[int, int, int, int]] = []
    idx = 0
    for i, s in enumerate(graph.supplies):
        if s > 0:
            supply_edge[i] = idx
            staged.append((source, i, s, 0))
            idx += 1
        elif s < 0:
            demand_edge[i] = idx
            staged.append((i, sink, -s, 0))
            idx += 1

    transit_edges: List[Tuple[int, Tuple[int, int]]] = []
    for src, dst, delay_ms, capacity in graph.edges:
        if capacity <= 0:
            continue
        cost = max(0, int(round(delay_ms * COST_SCALE)))
        transit_edges.append((idx, (src, dst)))
        staged.append((src, dst, int(capacity), cost))
        idx += 1
    net.add_edges(staged)

    result: FlowResult = net.solve(
        source, sink, reuse_potentials=reuse_potentials
    )

    routed: Dict[Tuple[int, int], int] = {}
    for idx, key in transit_edges:
        f = result.edge_flows[idx]
        if f > 0:
            routed[key] = routed.get(key, 0) + f

    absorbed: Dict[int, int] = {}
    for j, idx in demand_edge.items():
        f = result.edge_flows[idx]
        if f > 0:
            absorbed[j] = f

    return AssignmentResult(
        routed=routed,
        absorbed=absorbed,
        placed=result.flow,
        total_delay_ms=result.cost / COST_SCALE,
    )
