"""Min-cost max-flow substrate (stands in for OR-Tools in DSS-LC)."""

from .graph import AssignmentResult, SupplyDemandGraph, solve_transport
from .mcmf import FlowEdge, FlowResult, MinCostMaxFlow
from .multicommodity import (
    Commodity,
    MultiCommodityResult,
    SharedLink,
    solve_sequential,
)

__all__ = [
    "MinCostMaxFlow",
    "FlowEdge",
    "FlowResult",
    "SupplyDemandGraph",
    "AssignmentResult",
    "solve_transport",
    "Commodity",
    "SharedLink",
    "MultiCommodityResult",
    "solve_sequential",
]
