"""Min-cost max-flow solver — the substrate that replaces OR-Tools in DSS-LC.

The paper solves the Multi-Commodity Network Flow formulation of LC request
scheduling (§5.2) with Google OR-Tools.  OR-Tools is not available offline, so
we implement an integral min-cost max-flow solver from scratch using the
successive-shortest-path (SSP) algorithm with Johnson potentials: an initial
Bellman-Ford pass handles arbitrary (non-negative in our usage) costs, and all
subsequent augmentations run Dijkstra on reduced costs, which keeps the solver
fast enough for the 1000-node graphs in §7.2.

The solver operates on integer capacities and integer (scaled) costs.  DSS-LC
scales float transmission delays to integer microsecond costs before calling
into this module.

Storage is flat parallel arrays (src/dst/capacity/cost/flow per arc) rather
than per-arc objects: a dispatch round builds thousands of short-lived arcs,
and array slots are far cheaper to allocate and to walk in the Dijkstra inner
loop.  The arrays double as an arena — :meth:`MinCostMaxFlow.rebuild` clears
the network in place so DSS-LC can keep one solver per (master, request-type)
and refill capacities each tick instead of re-allocating the object graph.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["MinCostMaxFlow", "FlowEdge", "FlowResult"]

_INF = float("inf")


@dataclass
class FlowEdge:
    """One directed arc in the residual network (a read view of the arrays)."""

    src: int
    dst: int
    capacity: int
    cost: int
    flow: int = 0

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


@dataclass
class FlowResult:
    """Outcome of a max-flow computation."""

    flow: int
    cost: int
    #: flow carried by each *forward* edge, in the order edges were added.
    edge_flows: List[int] = field(default_factory=list)


class MinCostMaxFlow:
    """Successive-shortest-path min-cost max-flow on integer networks.

    Usage::

        net = MinCostMaxFlow(n_nodes)
        e0 = net.add_edge(src, dst, capacity, cost)
        result = net.solve(source, sink)
        result.edge_flows[e0]   # flow routed over the first edge

    Negative costs are accepted (a single Bellman-Ford pass initialises the
    potentials); negative *cycles* are not supported and will raise.

    The instance is reusable as an arena: :meth:`reset` zeroes flows while
    keeping the topology (re-solve the same network), and :meth:`rebuild`
    clears everything for a new network while keeping the allocated storage.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("flow network needs at least one node")
        self.n = n_nodes
        # flat parallel arrays; forward arcs at even indices, their residual
        # twins at odd indices (twin of arc i is i ^ 1).
        self._src: List[int] = []
        self._dst: List[int] = []
        self._cap: List[int] = []
        self._cost: List[int] = []
        self._flow: List[int] = []
        self._adj: List[List[int]] = [[] for _ in range(n_nodes)]
        self._has_negative_cost = False
        #: feasible potentials from the last solve (warm-start candidate).
        self._last_potential: Optional[List[float]] = None
        # cumulative counters (survive rebuild; read by solver_stats)
        self.solves = 0
        self.augmentations = 0
        self.warm_starts = 0

    # ------------------------------------------------------------------ #
    # construction / arena reuse
    # ------------------------------------------------------------------ #
    def add_edge(self, src: int, dst: int, capacity: int, cost: int) -> int:
        """Add a forward arc and its residual twin; return the forward index.

        The returned index identifies the edge in ``FlowResult.edge_flows``
        (forward edges occupy even slots internally; the public index is the
        count of forward edges added so far).
        """
        self._check_node(src)
        self._check_node(dst)
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        if cost < 0:
            self._has_negative_cost = True
        cost = int(cost)
        base = len(self._src)
        self._src.extend((src, dst))
        self._dst.extend((dst, src))
        self._cap.extend((int(capacity), 0))
        self._cost.extend((cost, -cost))
        self._flow.extend((0, 0))
        self._adj[src].append(base)
        self._adj[dst].append(base + 1)
        return base // 2

    def add_edges(self, edges) -> int:
        """Bulk :meth:`add_edge`; returns the first forward index added.

        Semantically identical to calling ``add_edge`` per tuple in order —
        the hot dispatch path uses it to amortise per-call overhead when a
        transport graph contributes dozens of arcs at once.
        """
        src_l, dst_l = self._src, self._dst
        cap_l, cost_l, flow_l = self._cap, self._cost, self._flow
        adj, n = self._adj, self.n
        first = len(src_l) // 2
        base = len(src_l)
        for src, dst, capacity, cost in edges:
            if not 0 <= src < n:
                raise ValueError(f"node {src} outside [0, {n})")
            if not 0 <= dst < n:
                raise ValueError(f"node {dst} outside [0, {n})")
            if capacity < 0:
                raise ValueError(f"negative capacity {capacity}")
            cost = int(cost)
            if cost < 0:
                self._has_negative_cost = True
            src_l.extend((src, dst))
            dst_l.extend((dst, src))
            cap_l.extend((int(capacity), 0))
            cost_l.extend((cost, -cost))
            flow_l.extend((0, 0))
            adj[src].append(base)
            adj[dst].append(base + 1)
            base += 2
        return first

    def reset(self) -> None:
        """Zero all flows, keeping the network; the next solve starts fresh.

        The last solve's potentials are kept as a warm-start candidate —
        they are feasibility-checked against the restored residual arcs
        before any reuse, so stale potentials only cost a cold start.
        """
        self._flow = [0] * len(self._flow)

    def rebuild(self, n_nodes: int) -> None:
        """Clear the network for a new topology, reusing allocated storage."""
        if n_nodes <= 0:
            raise ValueError("flow network needs at least one node")
        self._src.clear()
        self._dst.clear()
        self._cap.clear()
        self._cost.clear()
        self._flow.clear()
        if n_nodes == self.n:
            for bucket in self._adj:
                bucket.clear()
        else:
            self.n = n_nodes
            self._adj = [[] for _ in range(n_nodes)]
            self._last_potential = None
        self._has_negative_cost = False

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} outside [0, {self.n})")

    @property
    def n_edges(self) -> int:
        return len(self._src) // 2

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        source: int,
        sink: int,
        max_flow: Optional[int] = None,
        *,
        reuse_potentials: bool = False,
    ) -> FlowResult:
        """Push up to ``max_flow`` units (default: maximum) at minimum cost.

        ``reuse_potentials`` warm-starts the Johnson potentials from the
        previous solve on this instance when they are still feasible for the
        current costs (checked in O(E); infeasible potentials fall back to a
        cold start).  Warm starts preserve the optimal flow value and cost
        but may tie-break equal-cost paths differently, so the option is
        **off by default** — the simulation keeps bit-identical dispatch
        decisions unless a caller explicitly opts in.
        """
        self._check_node(source)
        self._check_node(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        limit = _INF if max_flow is None else int(max_flow)
        self.solves += 1

        potential = None
        if reuse_potentials and self._potentials_feasible(self._last_potential):
            potential = list(self._last_potential)  # type: ignore[arg-type]
            self.warm_starts += 1
        if potential is None:
            potential = self._initial_potentials(source)
        total_flow = 0
        total_cost = 0

        cap, cost, flow, src = self._cap, self._cost, self._flow, self._src
        while total_flow < limit:
            dist, parent_edge = self._dijkstra(source, potential)
            if dist[sink] == _INF:
                break
            self.augmentations += 1
            for v in range(self.n):
                if dist[v] < _INF:
                    potential[v] += dist[v]
            # find bottleneck along the path
            push = limit - total_flow
            v = sink
            while v != source:
                idx = parent_edge[v]
                residual = cap[idx] - flow[idx]
                if residual < push:
                    push = residual
                v = src[idx]
            # apply
            v = sink
            while v != source:
                idx = parent_edge[v]
                flow[idx] += push
                flow[idx ^ 1] -= push
                total_cost += push * cost[idx]
                v = src[idx]
            total_flow += push

        self._last_potential = potential
        edge_flows = [
            f if f > 0 else 0 for f in flow[::2]
        ]
        return FlowResult(flow=total_flow, cost=total_cost, edge_flows=edge_flows)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _potentials_feasible(self, potential: Optional[List[float]]) -> bool:
        """True if every residual arc has non-negative reduced cost."""
        if potential is None or len(potential) != self.n:
            return False
        cap, cost, flow = self._cap, self._cost, self._flow
        src, dst = self._src, self._dst
        for idx in range(len(src)):
            if cap[idx] - flow[idx] <= 0:
                continue
            if cost[idx] + potential[src[idx]] - potential[dst[idx]] < -1e-9:
                return False
        return True

    def _initial_potentials(self, source: int) -> List[float]:
        if not self._has_negative_cost:
            return [0.0] * self.n
        # Bellman-Ford over residual arcs with positive capacity.
        dist = [_INF] * self.n
        dist[source] = 0.0
        cap, cost, flow = self._cap, self._cost, self._flow
        src, dst = self._src, self._dst
        n_arcs = len(src)
        for iteration in range(self.n):
            changed = False
            for idx in range(n_arcs):
                if (
                    cap[idx] - flow[idx] > 0
                    and dist[src[idx]] + cost[idx] < dist[dst[idx]]
                ):
                    dist[dst[idx]] = dist[src[idx]] + cost[idx]
                    changed = True
            if not changed:
                break
        else:
            raise ValueError("negative-cost cycle detected")
        return [d if d < _INF else 0.0 for d in dist]

    def _dijkstra(
        self, source: int, potential: List[float]
    ) -> Tuple[List[float], List[int]]:
        dist = [_INF] * self.n
        parent_edge = [-1] * self.n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        cap, cost, flow = self._cap, self._cost, self._flow
        dst, adj = self._dst, self._adj
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            pot_u = potential[u]
            for idx in adj[u]:
                if cap[idx] - flow[idx] <= 0:
                    continue
                v = dst[idx]
                reduced = cost[idx] + pot_u - potential[v]
                nd = d + reduced
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    parent_edge[v] = idx
                    push(heap, (nd, v))
        return dist, parent_edge

    # ------------------------------------------------------------------ #
    # introspection (used by tests and by DSS-LC result extraction)
    # ------------------------------------------------------------------ #
    def edge(self, public_index: int) -> FlowEdge:
        """Return the forward edge for a public index from :meth:`add_edge`."""
        internal = public_index * 2
        if not 0 <= internal < len(self._src):
            raise IndexError(public_index)
        return FlowEdge(
            src=self._src[internal],
            dst=self._dst[internal],
            capacity=self._cap[internal],
            cost=self._cost[internal],
            flow=self._flow[internal],
        )

    def flow_conservation_violations(self, source: int, sink: int) -> Dict[int, int]:
        """Net flow imbalance per node, excluding source/sink (should be {})."""
        balance = [0] * self.n
        src, dst, flow = self._src, self._dst, self._flow
        for i in range(0, len(src), 2):
            f = flow[i]
            if f > 0:
                balance[src[i]] -= f
                balance[dst[i]] += f
        return {
            v: b
            for v, b in enumerate(balance)
            if b != 0 and v not in (source, sink)
        }
