"""Min-cost max-flow solver — the substrate that replaces OR-Tools in DSS-LC.

The paper solves the Multi-Commodity Network Flow formulation of LC request
scheduling (§5.2) with Google OR-Tools.  OR-Tools is not available offline, so
we implement an integral min-cost max-flow solver from scratch using the
successive-shortest-path (SSP) algorithm with Johnson potentials: an initial
Bellman-Ford pass handles arbitrary (non-negative in our usage) costs, and all
subsequent augmentations run Dijkstra on reduced costs, which keeps the solver
fast enough for the 1000-node graphs in §7.2.

The solver operates on integer capacities and integer (scaled) costs.  DSS-LC
scales float transmission delays to integer microsecond costs before calling
into this module.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["MinCostMaxFlow", "FlowEdge", "FlowResult"]

_INF = float("inf")


@dataclass
class FlowEdge:
    """One directed arc in the residual network."""

    src: int
    dst: int
    capacity: int
    cost: int
    flow: int = 0

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


@dataclass
class FlowResult:
    """Outcome of a max-flow computation."""

    flow: int
    cost: int
    #: flow carried by each *forward* edge, in the order edges were added.
    edge_flows: List[int] = field(default_factory=list)


class MinCostMaxFlow:
    """Successive-shortest-path min-cost max-flow on integer networks.

    Usage::

        net = MinCostMaxFlow(n_nodes)
        e0 = net.add_edge(src, dst, capacity, cost)
        result = net.solve(source, sink)
        result.edge_flows[e0]   # flow routed over the first edge

    Negative costs are accepted (a single Bellman-Ford pass initialises the
    potentials); negative *cycles* are not supported and will raise.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("flow network needs at least one node")
        self.n = n_nodes
        self._edges: List[FlowEdge] = []
        self._adj: List[List[int]] = [[] for _ in range(n_nodes)]
        self._has_negative_cost = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_edge(self, src: int, dst: int, capacity: int, cost: int) -> int:
        """Add a forward arc and its residual twin; return the forward index.

        The returned index identifies the edge in ``FlowResult.edge_flows``
        (forward edges occupy even slots internally; the public index is the
        count of forward edges added so far).
        """
        self._check_node(src)
        self._check_node(dst)
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        if cost < 0:
            self._has_negative_cost = True
        forward = FlowEdge(src, dst, int(capacity), int(cost))
        backward = FlowEdge(dst, src, 0, -int(cost))
        self._edges.append(forward)
        self._edges.append(backward)
        self._adj[src].append(len(self._edges) - 2)
        self._adj[dst].append(len(self._edges) - 1)
        return (len(self._edges) - 2) // 2

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} outside [0, {self.n})")

    @property
    def n_edges(self) -> int:
        return len(self._edges) // 2

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        source: int,
        sink: int,
        max_flow: Optional[int] = None,
    ) -> FlowResult:
        """Push up to ``max_flow`` units (default: maximum) at minimum cost."""
        self._check_node(source)
        self._check_node(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        limit = _INF if max_flow is None else int(max_flow)

        potential = self._initial_potentials(source)
        total_flow = 0
        total_cost = 0

        while total_flow < limit:
            dist, parent_edge = self._dijkstra(source, potential)
            if dist[sink] == _INF:
                break
            for v in range(self.n):
                if dist[v] < _INF:
                    potential[v] += dist[v]
            # find bottleneck along the path
            push = limit - total_flow
            v = sink
            while v != source:
                edge = self._edges[parent_edge[v]]
                push = min(push, edge.residual)
                v = edge.src
            # apply
            v = sink
            while v != source:
                idx = parent_edge[v]
                self._edges[idx].flow += push
                self._edges[idx ^ 1].flow -= push
                total_cost += push * self._edges[idx].cost
                v = self._edges[idx].src
            total_flow += push

        edge_flows = [
            max(0, self._edges[i].flow) for i in range(0, len(self._edges), 2)
        ]
        return FlowResult(flow=total_flow, cost=total_cost, edge_flows=edge_flows)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _initial_potentials(self, source: int) -> List[float]:
        if not self._has_negative_cost:
            return [0.0] * self.n
        # Bellman-Ford over residual arcs with positive capacity.
        dist = [_INF] * self.n
        dist[source] = 0.0
        for iteration in range(self.n):
            changed = False
            for edge in self._edges:
                if edge.residual > 0 and dist[edge.src] + edge.cost < dist[edge.dst]:
                    dist[edge.dst] = dist[edge.src] + edge.cost
                    changed = True
            if not changed:
                break
        else:
            raise ValueError("negative-cost cycle detected")
        return [d if d < _INF else 0.0 for d in dist]

    def _dijkstra(
        self, source: int, potential: List[float]
    ) -> Tuple[List[float], List[int]]:
        dist = [_INF] * self.n
        parent_edge = [-1] * self.n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for idx in self._adj[u]:
                edge = self._edges[idx]
                if edge.residual <= 0:
                    continue
                reduced = edge.cost + potential[u] - potential[edge.dst]
                nd = d + reduced
                if nd < dist[edge.dst] - 1e-12:
                    dist[edge.dst] = nd
                    parent_edge[edge.dst] = idx
                    heapq.heappush(heap, (nd, edge.dst))
        return dist, parent_edge

    # ------------------------------------------------------------------ #
    # introspection (used by tests and by DSS-LC result extraction)
    # ------------------------------------------------------------------ #
    def edge(self, public_index: int) -> FlowEdge:
        """Return the forward edge for a public index from :meth:`add_edge`."""
        internal = public_index * 2
        if not 0 <= internal < len(self._edges):
            raise IndexError(public_index)
        return self._edges[internal]

    def flow_conservation_violations(self, source: int, sink: int) -> Dict[int, int]:
        """Net flow imbalance per node, excluding source/sink (should be {})."""
        balance = [0] * self.n
        for i in range(0, len(self._edges), 2):
            e = self._edges[i]
            if e.flow > 0:
                balance[e.src] -= e.flow
                balance[e.dst] += e.flow
        return {
            v: b
            for v, b in enumerate(balance)
            if b != 0 and v not in (source, sink)
        }
