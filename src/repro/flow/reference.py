"""Obviously-correct reference implementations used as differential oracles.

Two independent re-implementations live here, deliberately written for
clarity over speed:

* :class:`ReferenceMCMF` — a textbook Bellman-Ford successive-shortest-paths
  min-cost max-flow.  No potentials, no arena reuse, no warm starts: every
  augmentation re-runs Bellman-Ford on the residual network.  It is the
  oracle the property tests (and the runtime invariant checker's dispatch
  audit) compare the pooled flat-array solver in :mod:`repro.flow.mcmf`
  against — equal max-flow value and equal minimum cost on any graph the
  production path can produce.

* :func:`eq2_capacities_scalar` / :func:`node_units_scalar` — plain-Python
  re-statements of the vectorized Eq. 2 capacity math in
  :mod:`repro.scheduling.dss_lc`.  The scalar path mirrors the numpy
  operations step for step (including ``int()`` truncation matching
  ``.astype(int64)`` on non-negative values) so any divergence points at a
  real semantic drift in the hot path, not float noise.

Nothing here is performance-sensitive; keep it boring.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .mcmf import FlowResult

__all__ = [
    "ReferenceMCMF",
    "node_units_scalar",
    "eq2_capacities_scalar",
]

_INF = float("inf")


class ReferenceMCMF:
    """Bellman-Ford successive-shortest-paths MCMF, kept deliberately simple.

    API mirrors the subset of :class:`repro.flow.mcmf.MinCostMaxFlow` the
    tests exercise: ``add_edge`` returns a public forward-edge index, and
    ``solve`` returns a :class:`FlowResult` whose ``edge_flows`` line up with
    those indices.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("flow network needs at least one node")
        self.n = n_nodes
        # twin-arc storage: forward arc 2k, residual twin 2k+1
        self._src: List[int] = []
        self._dst: List[int] = []
        self._cap: List[int] = []
        self._cost: List[int] = []
        self._flow: List[int] = []

    def add_edge(self, src: int, dst: int, capacity: int, cost: int) -> int:
        for node in (src, dst):
            if not 0 <= node < self.n:
                raise ValueError(f"node {node} outside [0, {self.n})")
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        base = len(self._src)
        self._src.extend((src, dst))
        self._dst.extend((dst, src))
        self._cap.extend((int(capacity), 0))
        self._cost.extend((int(cost), -int(cost)))
        self._flow.extend((0, 0))
        return base // 2

    def _bellman_ford(
        self, source: int
    ) -> Tuple[List[float], List[int]]:
        dist = [_INF] * self.n
        parent_edge = [-1] * self.n
        dist[source] = 0.0
        n_arcs = len(self._src)
        for _ in range(self.n):
            changed = False
            for idx in range(n_arcs):
                if self._cap[idx] - self._flow[idx] <= 0:
                    continue
                u, v = self._src[idx], self._dst[idx]
                nd = dist[u] + self._cost[idx]
                if nd < dist[v] - 1e-12:
                    dist[v] = nd
                    parent_edge[v] = idx
                    changed = True
            if not changed:
                break
        else:
            raise ValueError("negative-cost cycle detected")
        return dist, parent_edge

    def solve(
        self, source: int, sink: int, max_flow: Optional[int] = None
    ) -> FlowResult:
        if source == sink:
            raise ValueError("source and sink must differ")
        limit = _INF if max_flow is None else int(max_flow)
        total_flow = 0
        total_cost = 0
        while total_flow < limit:
            dist, parent_edge = self._bellman_ford(source)
            if dist[sink] == _INF:
                break
            push = limit - total_flow
            v = sink
            while v != source:
                idx = parent_edge[v]
                push = min(push, self._cap[idx] - self._flow[idx])
                v = self._src[idx]
            v = sink
            while v != source:
                idx = parent_edge[v]
                self._flow[idx] += push
                self._flow[idx ^ 1] -= push
                total_cost += push * self._cost[idx]
                v = self._src[idx]
            total_flow += push
        edge_flows = [f if f > 0 else 0 for f in self._flow[::2]]
        return FlowResult(
            flow=total_flow, cost=total_cost, edge_flows=edge_flows
        )

    def flow_conservation_violations(self, source: int, sink: int):
        balance = [0] * self.n
        for i in range(0, len(self._src), 2):
            f = self._flow[i]
            if f > 0:
                balance[self._src[i]] -= f
                balance[self._dst[i]] += f
        return {
            v: b
            for v, b in enumerate(balance)
            if b != 0 and v not in (source, sink)
        }


# ---------------------------------------------------------------------- #
# scalar Eq. 2 capacity math
# ---------------------------------------------------------------------- #
def node_units_scalar(
    cpu: float, mem: float, r_cpu: float, r_mem: float
) -> int:
    """How many requests of a type fit in (cpu, mem) — scalar Eq. 2 core.

    Mirrors ``min(cpu/r_cpu, mem/r_mem).astype(int64)`` in the vectorized
    path: plain truncation toward zero, identical for the non-negative
    inputs both paths operate on.
    """
    if r_cpu <= 0.0 or r_mem <= 0.0:
        return 0
    return int(min(cpu / r_cpu, mem / r_mem))


def eq2_capacities_scalar(
    cpu_available: Sequence[float],
    mem_available: Sequence[float],
    cpu_total: Sequence[float],
    mem_total: Sequence[float],
    lc_queue: Sequence[int],
    r_cpu: Sequence[float],
    r_mem: Sequence[float],
    target_fill: float,
) -> List[int]:
    """Per-node immediate dispatch capacity (Eq. 2 with target-fill holdback).

    One node at a time, no numpy: effective headroom is available resources
    minus the (1 - target_fill) holdback fraction of the node's totals,
    floored at zero; unit count is the binding min over CPU and memory (with
    the node's per-request minima ``r_cpu[i]``/``r_mem[i]``, which the
    re-assurance mechanism adjusts per node); the node's own LC queue backlog
    is deducted last.
    """
    hold = 1.0 - target_fill
    caps: List[int] = []
    for i in range(len(cpu_available)):
        cpu_eff = max(0.0, cpu_available[i] - hold * cpu_total[i])
        mem_eff = max(0.0, mem_available[i] - hold * mem_total[i])
        units = node_units_scalar(cpu_eff, mem_eff, r_cpu[i], r_mem[i])
        caps.append(max(0, units - int(lc_queue[i])))
    return caps
