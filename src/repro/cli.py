"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run one system configuration against a synthetic trace and print (or
    save) the metrics::

        python -m repro run --stack tango --clusters 6 --duration 20
        python -m repro run --stack ceres --out results/ceres.json

``compare``
    Run several stacks on the *same* trace and print a comparison table::

        python -m repro compare --stacks tango,k8s-native,ceres

``experiment``
    Regenerate one paper figure/table by name::

        python -m repro experiment fig9
        python -m repro experiment dvpa

``bench``
    Run the standard 10-cluster benchmark workload with per-stage
    profiling and print ticks/sec plus the stage breakdown::

        python -m repro bench
        python -m repro bench --out BENCH_PR1.json
        python -m repro bench --json          # machine-readable output

``trace``
    Run one stack with the observability subsystem enabled and dump the
    request-lifecycle span traces as JSONL (one trace per line)::

        python -m repro trace --stack tango --duration 10
        python -m repro trace --status completed --limit 50 --out traces.jsonl
        python -m repro trace --metrics-out metrics.prom   # Prometheus text

``checkpoint``
    Run one stack up to ``--at`` seconds, then freeze the full simulation
    state (every stateful layer) into a pickle that also records how to
    rebuild the system and trace::

        python -m repro checkpoint --stack tango --at 5 --out tango.ckpt

``resume``
    Rebuild the system and trace recorded in a checkpoint, restore the
    frozen state, and run to the configured duration.  The resumed run's
    metrics are bit-identical to an uninterrupted run::

        python -m repro resume tango.ckpt
        python -m repro resume tango.ckpt --out resumed.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.metrics.report import comparison_table, save_metrics
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

__all__ = ["main", "build_parser"]

_STACKS = {
    "tango": TangoConfig.tango,
    "k8s-native": TangoConfig.k8s_native,
    "ceres": TangoConfig.ceres,
    "dsaco": TangoConfig.dsaco,
}

_EXPERIMENTS = {
    "fig1": "repro.experiments.fig1",
    "fig9": "repro.experiments.fig9",
    "fig10": "repro.experiments.fig10",
    "fig11": "repro.experiments.fig11",
    "fig12": "repro.experiments.fig12",
    "fig13": "repro.experiments.fig13",
    "dvpa": "repro.experiments.dvpa_latency",
    "dss-latency": "repro.experiments.dss_latency",
    "elasticity": "repro.experiments.elasticity",
    "scale-expansion": "repro.experiments.scale_expansion",
    "learning-curve": "repro.experiments.learning_curve",
    "ablations": "repro.experiments.ablations",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tango (ICPP 2023) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one stack on a synthetic trace")
    _common_run_args(run)
    run.add_argument(
        "--stack", choices=sorted(_STACKS), default="tango",
        help="which system to assemble",
    )
    run.add_argument("--out", help="write metrics JSON here")
    run.add_argument(
        "--check-invariants", action="store_true",
        help="run the runtime conservation-law checker every tick",
    )
    run.add_argument(
        "--invariant-mode", choices=["strict", "soft"], default="strict",
        help="strict raises on the first violation; soft counts and "
        "keeps running",
    )
    run.add_argument(
        "--failures", action="store_true",
        help="enable the default failure injector (node crashes)",
    )

    compare = sub.add_parser("compare", help="run several stacks, same trace")
    _common_run_args(compare)
    compare.add_argument(
        "--stacks",
        default="tango,k8s-native",
        help="comma-separated stack names",
    )
    compare.add_argument("--out", help="write the metrics set JSON here")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper figure/table"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--scale", default="small", help="experiment scale preset"
    )

    bench = sub.add_parser(
        "bench", help="run the standard benchmark workload with profiling"
    )
    bench.add_argument(
        "--duration", type=float, default=None,
        help="override benchmark duration (seconds)",
    )
    bench.add_argument(
        "--clusters", type=int, default=None,
        help="override benchmark cluster count",
    )
    bench.add_argument("--out", help="write the benchmark JSON here")
    bench.add_argument(
        "--json", action="store_true",
        help="print the full benchmark result as JSON on stdout",
    )
    bench.add_argument(
        "--shards", type=int, default=0,
        help="run the multi-cluster scale benchmark serial AND sharded "
        "across N shards; reports fingerprint parity, measured wall "
        "speedup, and the critical-path modeled speedup",
    )
    bench.add_argument(
        "--backend", choices=["process", "thread", "serial"],
        default="process", help="pool flavor for the sharded run",
    )

    trace = sub.add_parser(
        "trace", help="run with observability on and dump span traces"
    )
    _common_run_args(trace)
    trace.add_argument(
        "--stack", choices=sorted(_STACKS), default="tango",
        help="which system to assemble",
    )
    trace.add_argument(
        "--out", help="write trace JSONL here (default: stdout)"
    )
    trace.add_argument(
        "--limit", type=int, default=None, help="max traces to dump"
    )
    trace.add_argument(
        "--service", default=None, help="only traces of this service"
    )
    trace.add_argument(
        "--status", default=None,
        choices=["open", "completed", "abandoned", "dropped"],
        help="only traces with this terminal status",
    )
    trace.add_argument(
        "--metrics-out",
        help="also write the metric registry here (.prom → Prometheus "
        "text exposition format, anything else → JSONL samples)",
    )

    ckpt = sub.add_parser(
        "checkpoint", help="run up to a point and freeze the full sim state"
    )
    _common_run_args(ckpt)
    ckpt.add_argument(
        "--stack", choices=sorted(_STACKS), default="tango",
        help="which system to assemble",
    )
    ckpt.add_argument(
        "--at", type=float, required=True,
        help="checkpoint time (seconds into the run)",
    )
    ckpt.add_argument(
        "--out", required=True, help="write the checkpoint pickle here"
    )

    resume = sub.add_parser(
        "resume", help="resume a checkpointed run to completion"
    )
    resume.add_argument("checkpoint", help="checkpoint file written by "
                        "`repro checkpoint`")
    resume.add_argument("--out", help="write metrics JSON here")
    resume.add_argument(
        "--shards", type=int, default=None,
        help="resume under this shard count (default: the checkpoint's); "
        "a checkpoint taken under N shards resumes under any M with "
        "bit-identical metrics",
    )
    resume.add_argument(
        "--parallel-backend", choices=["process", "thread", "serial"],
        default=None,
        help="resume under this pool flavor (default: the checkpoint's)",
    )
    return parser


def _common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="workers per cluster; 0 draws 3-20 heterogeneously",
    )
    parser.add_argument("--duration", type=float, default=15.0, help="seconds")
    parser.add_argument("--lc-rps", type=float, default=30.0)
    parser.add_argument("--be-rps", type=float, default=8.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--shards", type=int, default=0,
        help="partition clusters into N shards and run the per-cluster "
        "tick work on a worker pool (0 = serial); metrics are "
        "bit-identical either way",
    )
    parser.add_argument(
        "--parallel-backend", choices=["process", "thread", "serial"],
        default="process",
        help="worker-pool flavor used when --shards > 0",
    )


def _build_system(
    stack: str, args: argparse.Namespace, *, observe: bool = False
) -> TangoSystem:
    factory = _STACKS[stack]
    failures = None
    if getattr(args, "failures", False):
        from repro.sim.failures import FailureConfig

        failures = FailureConfig(seed=args.seed)
    config = factory(
        topology=TopologyConfig(
            n_clusters=args.clusters,
            workers_per_cluster=args.workers or None,
            seed=args.seed,
        ),
        runner=RunnerConfig(
            duration_ms=args.duration * 1000.0,
            observe=observe,
            failures=failures,
            check_invariants=getattr(args, "check_invariants", False),
            invariant_mode=getattr(args, "invariant_mode", "strict"),
            shards=getattr(args, "shards", 0),
            parallel_backend=getattr(args, "parallel_backend", "process"),
        ),
    )
    return TangoSystem(config)


def _build_trace(args: argparse.Namespace):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=args.clusters,
            duration_ms=args.duration * 1000.0,
            lc_peak_rps=args.lc_rps,
            be_peak_rps=args.be_rps,
            seed=args.seed,
        )
    ).generate()


def _cmd_run(args: argparse.Namespace) -> int:
    system = _build_system(args.stack, args)
    metrics = system.run(_build_trace(args))
    for key, value in metrics.summary().items():
        print(f"{key:24s} {value:.4f}")
    if args.check_invariants:
        print(f"{'invariant_violations':24s} {metrics.invariant_violations}")
        for law, count in sorted(
            metrics.invariant_violations_by_law.items()
        ):
            print(f"  {law:22s} {count}")
    if args.out:
        path = save_metrics(metrics, args.out)
        print(f"\nmetrics written to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    stacks = [s.strip() for s in args.stacks.split(",") if s.strip()]
    unknown = [s for s in stacks if s not in _STACKS]
    if unknown:
        print(f"unknown stacks: {unknown}", file=sys.stderr)
        return 2
    trace = _build_trace(args)
    runs = {}
    for stack in stacks:
        runs[stack] = _build_system(stack, args).run(trace)
    rows = comparison_table(runs)
    columns = sorted({k for row in rows for k in row})
    # keep "system" first for readability
    columns = ["system"] + [c for c in columns if c != "system"]
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    if args.out:
        path = save_metrics(runs, args.out)
        print(f"\nmetrics set written to {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(_EXPERIMENTS[args.name])
    module.main(args.scale)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.bench import run_bench, run_shard_bench, write_bench_json

    overrides = {}
    if args.duration is not None:
        overrides["duration_ms"] = args.duration * 1000.0
    if args.clusters is not None:
        overrides["clusters"] = args.clusters
    if args.shards > 0:
        result = run_shard_bench(
            args.shards, backend=args.backend, overrides=overrides or None
        )
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            wl = result["workload"]
            modeled = result["modeled"]
            print(
                f"scale bench: {wl['clusters']} clusters, "
                f"{result['shards']} shards ({result['backend']}), "
                f"{result['cores']} core(s) visible"
            )
            print(
                "fingerprints: "
                + ("MATCH (serial == sharded)"
                   if result["fingerprints_match"] else "MISMATCH")
            )
            print(
                f"serial  {result['serial']['wall_s']:8.2f}s wall "
                f"(lc stage {modeled['lc_serial_s']:.2f}s)"
            )
            print(
                f"sharded {result['sharded']['wall_s']:8.2f}s wall "
                f"-> measured wall speedup {result['wall_speedup']:.2f}x"
            )
            print(
                f"modeled {modeled['modeled_wall_s']:8.2f}s wall "
                f"(lc critical path {modeled['lc_critical_path_s']:.2f}s, "
                f"overhead {modeled['shard_overhead_s']:.2f}s) "
                f"-> parallel speedup {modeled['speedup']:.2f}x"
            )
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"\nshard benchmark written to {args.out}")
        return 0 if result["fingerprints_match"] else 1
    result = run_bench(overrides or None, profile=True)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        if args.out:
            write_bench_json(result, args.out)
        return 0
    wl = result["workload"]
    print(
        f"{wl['stack']} | {wl['clusters']} clusters / {wl['n_workers']} "
        f"workers | {result['ticks']} ticks in {result['wall_s']:.2f}s "
        f"({result['ticks_per_sec']:.1f} ticks/sec)"
    )
    total = sum(result.get("stage_ms", {}).values())
    for stage, ms in sorted(
        result.get("stage_ms", {}).items(), key=lambda kv: -kv[1]
    ):
        share = 100.0 * ms / total if total else 0.0
        print(f"  {stage:10s} {ms:10.1f} ms  {share:5.1f}%")
    if result.get("solver"):
        print(f"  solver: {result['solver']}")
    if args.out:
        write_bench_json(result, args.out)
        print(f"\nbenchmark written to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    system = _build_system(args.stack, args, observe=True)
    system.run(_build_trace(args))
    runner = system.last_runner
    hub = runner.hub
    assert hub is not None and hub.tracer is not None
    kwargs = dict(
        status=args.status, service=args.service, limit=args.limit
    )
    if args.out:
        written = hub.tracer.write_jsonl(args.out, **kwargs)
        print(f"{written} traces written to {args.out}", file=sys.stderr)
    else:
        hub.tracer.to_jsonl(sys.stdout, **kwargs)
    if args.metrics_out:
        if args.metrics_out.endswith(".prom"):
            with open(args.metrics_out, "w") as fh:
                fh.write(hub.registry.to_prometheus())
        else:
            hub.registry.write_jsonl(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.sim.checkpoint import save_checkpoint

    system = _build_system(args.stack, args)
    trace = _build_trace(args)
    system.run(trace, until_ms=args.at * 1000.0)
    checkpoint = system.last_runner.checkpoint()
    # record how to rebuild an identical system + trace on resume
    checkpoint.meta.update(
        stack=args.stack,
        clusters=args.clusters,
        workers=args.workers,
        duration=args.duration,
        lc_rps=args.lc_rps,
        be_rps=args.be_rps,
        seed=args.seed,
        shards=args.shards,
        parallel_backend=args.parallel_backend,
    )
    path = save_checkpoint(checkpoint, args.out)
    print(
        f"checkpoint at t={checkpoint.meta['now_ms']:.0f}ms "
        f"({args.stack}, seed {args.seed}) written to {path}"
    )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.sim.checkpoint import load_checkpoint

    checkpoint = load_checkpoint(args.checkpoint)
    meta = checkpoint.meta
    required = {"stack", "clusters", "workers", "duration",
                "lc_rps", "be_rps", "seed"}
    missing = sorted(required - set(meta))
    if missing:
        print(
            f"{args.checkpoint}: no rebuild metadata ({missing}); "
            "resume programmatically via SimulationRunner.from_checkpoint",
            file=sys.stderr,
        )
        return 2
    build = argparse.Namespace(
        clusters=meta["clusters"],
        workers=meta["workers"],
        duration=meta["duration"],
        lc_rps=meta["lc_rps"],
        be_rps=meta["be_rps"],
        seed=meta["seed"],
        # sharding restructures execution only, so a resume may use any
        # shard count/backend — default to what the checkpoint recorded.
        shards=(
            meta.get("shards", 0) if args.shards is None else args.shards
        ),
        parallel_backend=(
            meta.get("parallel_backend", "process")
            if args.parallel_backend is None
            else args.parallel_backend
        ),
    )
    system = _build_system(meta["stack"], build)
    trace = _build_trace(build)
    metrics = system.resume(trace, checkpoint)
    print(
        f"resumed {meta['stack']} from t={meta.get('now_ms', 0.0):.0f}ms "
        f"to t={build.duration * 1000.0:.0f}ms"
    )
    for key, value in metrics.summary().items():
        print(f"{key:24s} {value:.4f}")
    if args.out:
        path = save_metrics(metrics, args.out)
        print(f"\nmetrics written to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "resume":
        return _cmd_resume(args)
    raise AssertionError(args.command)


if __name__ == "__main__":
    raise SystemExit(main())
