"""Experiment metrics: utilization, QoS satisfaction, throughput.

§5.1.2 defines the two system objectives this pipeline measures:

* **QoS-guarantee satisfaction rate** φ — completed LC requests meeting
  their tail-latency target over all arrived LC requests;
* **long-term throughput** φ′ — total completed BE requests over time.

§6.2: "each period in figures represents 800 ms, which is the frequency at
which we collect data" — :class:`PeriodCollector` samples utilisation and
counts at that cadence so experiment outputs line up with the paper's
figures period-for-period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.topology import EdgeCloudSystem
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind

__all__ = ["PERIOD_MS", "PeriodCollector", "RunMetrics"]

#: data-collection period (§6.2).
PERIOD_MS = 800.0


@dataclass
class RunMetrics:
    """Aggregated outcome of one simulation run."""

    lc_arrived: int = 0
    lc_completed: int = 0
    lc_satisfied: int = 0
    lc_abandoned: int = 0
    be_arrived: int = 0
    be_completed: int = 0
    be_evictions: int = 0
    lc_latencies_ms: List[float] = field(default_factory=list)
    #: per-service outcome counts: service → [arrived, completed, satisfied]
    per_service: Dict[str, List[int]] = field(default_factory=dict)
    #: per-period series (index = period number)
    utilization: List[float] = field(default_factory=list)
    lc_utilization: List[float] = field(default_factory=list)
    be_utilization: List[float] = field(default_factory=list)
    lc_arrivals_per_period: List[int] = field(default_factory=list)
    be_arrivals_per_period: List[int] = field(default_factory=list)
    qos_rate_per_period: List[float] = field(default_factory=list)
    be_completed_per_period: List[int] = field(default_factory=list)
    #: trace records whose cluster id fell outside the topology and were
    #: folded back with ``cluster_id % n_clusters`` (bad trace rows are
    #: counted, not silently remapped).
    trace_remapped: int = 0
    #: runtime invariant violations observed (0 unless the invariant stage
    #: is enabled *and* a law fails; soft mode keeps counting, strict mode
    #: raises on the first one).
    invariant_violations: int = 0
    invariant_violations_by_law: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # headline numbers
    # ------------------------------------------------------------------ #
    @property
    def qos_satisfaction_rate(self) -> float:
        """φ: satisfied / arrived (abandoned requests count against it)."""
        if self.lc_arrived == 0:
            return 1.0
        return self.lc_satisfied / self.lc_arrived

    @property
    def be_throughput(self) -> int:
        """φ′: total completed BE requests."""
        return self.be_completed

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization)) if self.utilization else 0.0

    def lc_tail_latency_ms(self, q: float = 95.0) -> Optional[float]:
        if not self.lc_latencies_ms:
            return None
        return float(np.percentile(self.lc_latencies_ms, q))

    def service_qos_rates(self) -> Dict[str, float]:
        """Per-service satisfaction rate (satisfied / arrived), LC and BE."""
        return {
            name: (counts[2] / counts[0] if counts[0] else 1.0)
            for name, counts in sorted(self.per_service.items())
        }

    def _bump_service(self, name: str, slot: int) -> None:
        counts = self.per_service.setdefault(name, [0, 0, 0])
        counts[slot] += 1

    def summary(self) -> Dict[str, float]:
        return {
            "qos_satisfaction_rate": self.qos_satisfaction_rate,
            "be_throughput": float(self.be_throughput),
            "mean_utilization": self.mean_utilization,
            "lc_abandoned": float(self.lc_abandoned),
            "lc_tail_latency_ms": self.lc_tail_latency_ms() or 0.0,
            "be_evictions": float(self.be_evictions),
        }


class PeriodCollector:
    """Samples system state every period and folds request outcomes in."""

    def __init__(self, system: EdgeCloudSystem, period_ms: float = PERIOD_MS):
        self.system = system
        self.period_ms = period_ms
        self.metrics = RunMetrics()
        self._period_lc_arrivals = 0
        self._period_be_arrivals = 0
        self._period_lc_completed = 0
        self._period_lc_satisfied = 0
        self._period_be_completed = 0
        self._next_sample_ms = period_ms

    # ------------------------------------------------------------------ #
    # event hooks (called by the runner)
    # ------------------------------------------------------------------ #
    def on_arrival(self, request: ServiceRequest) -> None:
        self.metrics._bump_service(request.spec.name, 0)
        if request.is_lc:
            self.metrics.lc_arrived += 1
            self._period_lc_arrivals += 1
        else:
            self.metrics.be_arrived += 1
            self._period_be_arrivals += 1

    def on_completion(self, request: ServiceRequest) -> None:
        self.metrics._bump_service(request.spec.name, 1)
        if request.qos_met():
            self.metrics._bump_service(request.spec.name, 2)
        if request.is_lc:
            self.metrics.lc_completed += 1
            self._period_lc_completed += 1
            latency = request.total_latency_ms()
            if latency is not None:
                self.metrics.lc_latencies_ms.append(latency)
            if request.qos_met():
                self.metrics.lc_satisfied += 1
                self._period_lc_satisfied += 1
        else:
            self.metrics.be_completed += 1
            self._period_be_completed += 1

    def on_abandon(self, request: ServiceRequest) -> None:
        if request.is_lc:
            self.metrics.lc_abandoned += 1

    def on_eviction(self, request: ServiceRequest) -> None:
        self.metrics.be_evictions += 1

    # ------------------------------------------------------------------ #
    # periodic sampling
    # ------------------------------------------------------------------ #
    def maybe_sample(self, now_ms: float) -> bool:
        if now_ms + 1e-9 < self._next_sample_ms:
            return False
        self._next_sample_ms += self.period_ms
        m = self.metrics
        m.utilization.append(self.system.system_utilization())
        lc_u, be_u = self._utilization_by_kind()
        m.lc_utilization.append(lc_u)
        m.be_utilization.append(be_u)
        m.lc_arrivals_per_period.append(self._period_lc_arrivals)
        m.be_arrivals_per_period.append(self._period_be_arrivals)
        m.be_completed_per_period.append(self._period_be_completed)
        rate = (
            self._period_lc_satisfied / self._period_lc_completed
            if self._period_lc_completed
            else 1.0
        )
        m.qos_rate_per_period.append(rate)
        self._period_lc_arrivals = 0
        self._period_be_arrivals = 0
        self._period_lc_completed = 0
        self._period_lc_satisfied = 0
        self._period_be_completed = 0
        return True

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """Full metrics plus the open (partial) period's counters."""
        return {
            "metrics": self.metrics,
            "period_lc_arrivals": self._period_lc_arrivals,
            "period_be_arrivals": self._period_be_arrivals,
            "period_lc_completed": self._period_lc_completed,
            "period_lc_satisfied": self._period_lc_satisfied,
            "period_be_completed": self._period_be_completed,
            "next_sample_ms": self._next_sample_ms,
        }

    def restore_state(self, state: Dict) -> None:
        self.metrics = state["metrics"]
        self._period_lc_arrivals = state["period_lc_arrivals"]
        self._period_be_arrivals = state["period_be_arrivals"]
        self._period_lc_completed = state["period_lc_completed"]
        self._period_lc_satisfied = state["period_lc_satisfied"]
        self._period_be_completed = state["period_be_completed"]
        self._next_sample_ms = state["next_sample_ms"]

    def _utilization_by_kind(self) -> tuple:
        lc_parts, be_parts = [], []
        for worker in self.system.all_workers():
            shares = worker.utilization_by_kind()
            lc_parts.append(shares[ServiceKind.LC])
            be_parts.append(shares[ServiceKind.BE])
        if not lc_parts:
            return 0.0, 0.0
        return float(np.mean(lc_parts)), float(np.mean(be_parts))
