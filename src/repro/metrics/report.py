"""Experiment result persistence and comparison reports.

Benchmarks and examples produce :class:`repro.metrics.collectors.RunMetrics`
objects; this module serialises them to JSON (so EXPERIMENTS.md numbers are
regenerable artifacts, not copy-paste), loads them back, and renders
side-by-side comparisons between systems.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Union

from .collectors import RunMetrics

__all__ = [
    "metrics_to_dict",
    "metrics_from_dict",
    "save_metrics",
    "load_metrics",
    "comparison_table",
]

_SCHEMA_VERSION = 1


def metrics_to_dict(metrics: RunMetrics) -> Dict:
    payload = asdict(metrics)
    payload["_schema"] = _SCHEMA_VERSION
    payload["_derived"] = {
        "qos_satisfaction_rate": metrics.qos_satisfaction_rate,
        "be_throughput": metrics.be_throughput,
        "mean_utilization": metrics.mean_utilization,
        "lc_tail_latency_ms": metrics.lc_tail_latency_ms(),
    }
    return payload


def metrics_from_dict(payload: Dict) -> RunMetrics:
    if payload.get("_schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported metrics schema {payload.get('_schema')!r}"
        )
    fields = {
        k: v for k, v in payload.items() if not k.startswith("_")
    }
    return RunMetrics(**fields)


def save_metrics(
    metrics: Union[RunMetrics, Dict[str, RunMetrics]],
    path: Union[str, Path],
) -> Path:
    """Write one RunMetrics, or a {label: RunMetrics} set, as JSON."""
    path = Path(path)
    if isinstance(metrics, RunMetrics):
        payload: Dict = metrics_to_dict(metrics)
    else:
        payload = {
            "_schema": _SCHEMA_VERSION,
            "_set": {k: metrics_to_dict(v) for k, v in metrics.items()},
        }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_metrics(
    path: Union[str, Path]
) -> Union[RunMetrics, Dict[str, RunMetrics]]:
    payload = json.loads(Path(path).read_text())
    if "_set" in payload:
        return {
            k: metrics_from_dict(v) for k, v in payload["_set"].items()
        }
    return metrics_from_dict(payload)


def comparison_table(
    runs: Dict[str, RunMetrics],
    baseline: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Rows comparing runs on the headline metrics, with deltas vs baseline.

    ``baseline`` defaults to the first key; deltas are relative percentages
    on throughput/utilisation and absolute points on the QoS rate.
    """
    if not runs:
        return []
    labels = list(runs)
    base_label = baseline or labels[0]
    if base_label not in runs:
        raise KeyError(base_label)
    base = runs[base_label]
    rows: List[Dict[str, object]] = []
    for label in labels:
        m = runs[label]
        row: Dict[str, object] = {
            "system": label,
            "qos_rate": round(m.qos_satisfaction_rate, 4),
            "throughput": m.be_throughput,
            "utilization": round(m.mean_utilization, 4),
        }
        if label != base_label:
            row["qos_vs_base"] = round(
                m.qos_satisfaction_rate - base.qos_satisfaction_rate, 4
            )
            if base.be_throughput:
                row["thr_vs_base_pct"] = round(
                    (m.be_throughput / base.be_throughput - 1.0) * 100.0, 1
                )
            if base.mean_utilization:
                row["util_vs_base_pct"] = round(
                    (m.mean_utilization / base.mean_utilization - 1.0) * 100.0,
                    1,
                )
        rows.append(row)
    return rows
