"""ASCII timeline rendering for terminal-friendly experiment output.

The paper's figures are time series (utilisation, QoS rate, throughput per
800 ms period).  The bench harness runs in terminals, so this module renders
those series as unicode sparklines and aligned multi-series charts — the
same primitives the examples use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["sparkline", "timeline_chart", "histogram"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    width: int = 60,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line unicode sparkline, resampled to at most ``width`` chars."""
    data = [float(v) for v in values]
    if not data:
        return ""
    if len(data) > width:
        step = len(data) / width
        data = [
            sum(data[int(i * step): max(int(i * step) + 1, int((i + 1) * step))])
            / max(1, len(data[int(i * step): max(int(i * step) + 1, int((i + 1) * step))]))
            for i in range(width)
        ]
    floor = min(data) if lo is None else lo
    ceil = max(data) if hi is None else hi
    span = ceil - floor
    if span <= 0:
        return _BLOCKS[4] * len(data)
    out = []
    for v in data:
        frac = (v - floor) / span
        out.append(_BLOCKS[round(frac * (len(_BLOCKS) - 1))])
    return "".join(out)


def timeline_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    normalize: bool = True,
) -> str:
    """Aligned multi-series sparkline block with a shared scale.

    With ``normalize`` the scale is shared across all series (comparable
    heights, the paper's normalized-figure style); otherwise each line is
    self-scaled.
    """
    if not series:
        return ""
    label_width = max(len(name) for name in series)
    lo = hi = None
    if normalize:
        all_values = [
            float(v) for s in series.values() for v in list(s)
        ]
        if all_values:
            lo, hi = min(all_values), max(all_values)
    lines = []
    for name, values in series.items():
        values = list(values)
        spark = sparkline(values, width=width, lo=lo, hi=hi)
        suffix = f"  (last {values[-1]:.3g})" if values else ""
        lines.append(f"{name.rjust(label_width)} {spark}{suffix}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
) -> str:
    """Horizontal ASCII histogram with bin edges."""
    data = sorted(float(v) for v in values)
    if not data:
        return "(no data)"
    lo, hi = data[0], data[-1]
    if hi <= lo:
        return f"{lo:.3g}: {'█' * width} ({len(data)})"
    edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for v in data:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "█" * max(1 if count else 0, round(count / peak * width))
        lines.append(
            f"{edges[i]:>10.3g} – {edges[i+1]:<10.3g} {bar} {count}"
        )
    return "\n".join(lines)
