"""Metrics: sliding windows, period collectors, run summaries."""

from .collectors import PERIOD_MS, PeriodCollector, RunMetrics
from .report import (
    comparison_table,
    load_metrics,
    metrics_from_dict,
    metrics_to_dict,
    save_metrics,
)
from .plotting import histogram, sparkline, timeline_chart
from .window import TimeWindow, percentile

__all__ = [
    "PERIOD_MS",
    "PeriodCollector",
    "RunMetrics",
    "TimeWindow",
    "percentile",
    "save_metrics",
    "load_metrics",
    "metrics_to_dict",
    "metrics_from_dict",
    "comparison_table",
    "sparkline",
    "timeline_chart",
    "histogram",
]
