"""Sliding-window statistics helpers shared by the metrics pipeline."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["percentile", "TimeWindow"]


def percentile(values: Iterable[float], q: float) -> Optional[float]:
    """q-th percentile, None for empty input (avoids numpy warnings)."""
    data = list(values)
    if not data:
        return None
    return float(np.percentile(data, q))


class TimeWindow:
    """Keeps (time, value) samples inside a moving horizon."""

    def __init__(self, horizon_ms: float) -> None:
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        self.horizon_ms = horizon_ms
        self._samples: Deque[Tuple[float, float]] = deque()

    def add(self, time_ms: float, value: float) -> None:
        self._samples.append((time_ms, value))
        self._expire(time_ms)

    def _expire(self, now_ms: float) -> None:
        cutoff = now_ms - self.horizon_ms
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    def mean(self) -> Optional[float]:
        vals = self.values()
        return float(np.mean(vals)) if vals else None

    def p95(self) -> Optional[float]:
        return percentile(self.values(), 95.0)

    def count(self) -> int:
        return len(self._samples)

    def sum(self) -> float:
        return float(sum(v for _, v in self._samples))
