"""The canonical RunMetrics fingerprint + readable diffing.

One fingerprint shape is used everywhere determinism is asserted — the
seed-metrics goldens, the checkpoint/resume suite, the serial↔sharded
equivalence matrix, and the ``bench_smoke`` gate — so a drift in any
gate points at the same fields.  Floats are rounded exactly as the
goldens were recorded (latency sums to 6 places, rates to 12), making
"bit-identical" well-defined across JSON round-trips.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["metrics_fingerprint", "fingerprint_diff", "format_fingerprint_diff"]


def metrics_fingerprint(metrics) -> Dict[str, Any]:
    """The seed fingerprint shape over a :class:`RunMetrics`."""
    return {
        "lc_arrived": metrics.lc_arrived,
        "lc_completed": metrics.lc_completed,
        "lc_satisfied": metrics.lc_satisfied,
        "lc_abandoned": metrics.lc_abandoned,
        "be_arrived": metrics.be_arrived,
        "be_completed": metrics.be_completed,
        "be_evictions": metrics.be_evictions,
        "lc_latency_sum": round(sum(metrics.lc_latencies_ms), 6),
        "utilization": [round(u, 12) for u in metrics.utilization],
        "qos_rate_per_period": [
            round(r, 12) for r in metrics.qos_rate_per_period
        ],
        "per_service": {
            k: list(v) for k, v in sorted(metrics.per_service.items())
        },
    }


def _describe(value: Any) -> str:
    if isinstance(value, list) and len(value) > 6:
        head = ", ".join(repr(v) for v in value[:3])
        return f"[{head}, … {len(value)} items]"
    return repr(value)


def fingerprint_diff(
    expected: Dict[str, Any], actual: Dict[str, Any]
) -> List[Tuple[str, str, str]]:
    """Per-field differences as ``(field, expected, actual)`` rows.

    List fields report the first differing index; dict fields (per-service
    counters) report each differing key as its own row.
    """
    rows: List[Tuple[str, str, str]] = []
    for key in sorted(set(expected) | set(actual)):
        a, b = expected.get(key), actual.get(key)
        if a == b:
            continue
        if isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                rows.append((key, f"len {len(a)}", f"len {len(b)}"))
                continue
            for i, (x, y) in enumerate(zip(a, b)):
                if x != y:
                    rows.append((f"{key}[{i}]", repr(x), repr(y)))
                    break
        elif isinstance(a, dict) and isinstance(b, dict):
            for sub in sorted(set(a) | set(b)):
                if a.get(sub) != b.get(sub):
                    rows.append(
                        (
                            f"{key}[{sub!r}]",
                            _describe(a.get(sub)),
                            _describe(b.get(sub)),
                        )
                    )
        else:
            rows.append((key, _describe(a), _describe(b)))
    return rows


def format_fingerprint_diff(
    expected: Dict[str, Any],
    actual: Dict[str, Any],
    labels: Tuple[str, str] = ("expected", "actual"),
) -> str:
    """A readable per-field table of fingerprint differences (empty string
    when the fingerprints match)."""
    rows = fingerprint_diff(expected, actual)
    if not rows:
        return ""
    header = ("field", labels[0], labels[1])
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(3)
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(3)),
        "  ".join("-" * widths[i] for i in range(3)),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(3)))
    return "\n".join(lines)
