"""Runtime invariant checker: the paper's conservation laws, enforced.

Tango's correctness rests on laws the paper states but a simulator can
silently drift away from — especially after three PRs of vectorisation,
arena pooling, and pipeline refactoring.  This module makes them executable.
Every tick (opt-in via ``RunnerConfig.check_invariants``) the
:class:`InvariantStage` runs five laws over the live system:

``request-conservation``
    Every arrived request is in exactly one place: a master queue, the
    in-flight delivery queues, the central BE buffer, a node queue, the
    running set, or it is completed/abandoned/dropped (Fig. 11(b)
    accounting).  Also checks per-location state tags and that requests in
    master queues carry no stale placement fields.
``node-resources``
    Per worker: no negative allocations, allocations within capacity, and
    the per-request allocations sum to the node's bookkept total.
``dvpa-limits``
    Per (node, service): the resources the service's containers actually
    hold never exceed the D-VPA pod limit (§4.2 cgroup flows).  Inequality,
    not equality — a crash legitimately leaves a pod limit high until the
    next resize.
``snapshot-coherence``
    A worker whose ``snapshot_dirty`` flag is clear must agree with its
    cached :class:`NodeSnapshot` — catching any mutation path that forgets
    to dirty the flag (``min_slack`` is excluded: the detector moves
    without touching the node).
``dispatch-capacity``
    Each DSS-LC round's placements, re-derived from the round's *raw
    inputs* (recorded in :class:`~repro.scheduling.dss_lc.DispatchAuditRecord`)
    with the independent scalar implementation in
    :mod:`repro.flow.reference`, respect the Eq. 2 immediate capacities and
    the Eq. 7–8 augmented capacities of each node.

Violations become typed obs-bus events (``invariant.violation``),
RunMetrics counters, and — in ``strict`` mode — an
:class:`InvariantViolationError` carrying tick/node/service context.
``soft`` mode logs each law's first violation and keeps running.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List

from repro.sim.pipeline import SimContext, Stage
from repro.sim.request import RequestState

__all__ = [
    "Violation",
    "InvariantViolationError",
    "RuntimeInvariantChecker",
    "InvariantStage",
    "LAWS",
]

logger = logging.getLogger(__name__)

LAWS = (
    "request-conservation",
    "node-resources",
    "dvpa-limits",
    "snapshot-coherence",
    "dispatch-capacity",
)

#: float tolerance for resource-sum comparisons (pure add/sub chains).
_RES_TOL = 1e-6
#: looser tolerance for D-VPA limits (long grow/release chains drift more).
_DVPA_TOL = 1e-3


@dataclass(frozen=True)
class Violation:
    """One failed law, with enough context to start a triage."""

    law: str
    time_ms: float
    message: str
    node: str = ""
    service: str = ""

    def __str__(self) -> str:
        where = f" node={self.node}" if self.node else ""
        svc = f" service={self.service}" if self.service else ""
        return f"[{self.law} @ t={self.time_ms:.1f}ms{where}{svc}] {self.message}"


class InvariantViolationError(AssertionError):
    """Strict-mode failure; ``violations`` holds every law broken this tick."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        head = "; ".join(str(v) for v in violations[:3])
        more = f" (+{len(violations) - 3} more)" if len(violations) > 3 else ""
        super().__init__(f"{len(violations)} invariant violation(s): {head}{more}")


class RuntimeInvariantChecker:
    """Evaluates the five laws against a live :class:`SimContext`."""

    def __init__(self, mode: str = "strict") -> None:
        if mode not in ("strict", "soft"):
            raise ValueError(f"invariant mode must be strict|soft, got {mode!r}")
        self.mode = mode
        #: every violation ever seen (soft mode keeps accumulating).
        self.violations: List[Violation] = []
        self._warned_laws: set = set()

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def check_tick(self, ctx: SimContext) -> List[Violation]:
        found: List[Violation] = []
        self._check_conservation(ctx, found)
        self._check_node_resources(ctx, found)
        self._check_dvpa_limits(ctx, found)
        self._check_snapshot_coherence(ctx, found)
        self._check_dispatch_capacity(ctx, found)
        if not found:
            return found
        metrics = ctx.collector.metrics
        for v in found:
            self.violations.append(v)
            metrics.invariant_violations += 1
            by_law = metrics.invariant_violations_by_law
            by_law[v.law] = by_law.get(v.law, 0) + 1
            ctx.emit.invariant_violation(
                v.time_ms, v.law, v.message, v.node, v.service
            )
        if self.mode == "strict":
            raise InvariantViolationError(found)
        for v in found:
            if v.law not in self._warned_laws:
                self._warned_laws.add(v.law)
                logger.warning(
                    "invariant violated (soft mode, first of this law): %s", v
                )
        return found

    # ------------------------------------------------------------------ #
    # law 1: request conservation
    # ------------------------------------------------------------------ #
    def _check_conservation(
        self, ctx: SimContext, out: List[Violation]
    ) -> None:
        now = ctx.now_ms

        def bad(message: str, node: str = "", service: str = "") -> None:
            out.append(
                Violation("request-conservation", now, message, node, service)
            )

        seen: Dict[int, str] = {}
        live_lc = 0
        live_be = 0

        def tally(request, location: str) -> None:
            nonlocal live_lc, live_be
            prior = seen.get(request.request_id)
            if prior is not None:
                bad(
                    f"request {request.request_id} ({request.spec.name}) in "
                    f"two places: {prior} and {location}",
                    service=request.spec.name,
                )
                return
            seen[request.request_id] = location
            if request.is_lc:
                live_lc += 1
            else:
                live_be += 1

        # master queues
        for cluster in ctx.system.clusters:
            for queue_name, queue in (
                ("lc_queue", cluster.lc_queue),
                ("be_queue", cluster.be_queue),
            ):
                for request in queue:
                    location = f"cluster-{cluster.cluster_id}.{queue_name}"
                    tally(request, location)
                    if request.state is not RequestState.QUEUED_MASTER:
                        bad(
                            f"request {request.request_id} in {location} has "
                            f"state {request.state.value}, expected "
                            f"{RequestState.QUEUED_MASTER.value}",
                            service=request.spec.name,
                        )
                    if (
                        request.target_node is not None
                        or request.started_ms is not None
                    ):
                        bad(
                            f"request {request.request_id} in {location} "
                            f"carries stale placement fields (target_node="
                            f"{request.target_node!r}, started_ms="
                            f"{request.started_ms!r}) — displaced requests "
                            "must clear_assignment() before requeueing",
                            service=request.spec.name,
                        )

        # in-flight toward workers
        for payload in ctx.deliveries.items():
            request = payload[0]
            tally(request, "deliveries")
            if request.state is not RequestState.IN_FLIGHT:
                bad(
                    f"request {request.request_id} in the delivery queue has "
                    f"state {request.state.value}, expected "
                    f"{RequestState.IN_FLIGHT.value}",
                    service=request.spec.name,
                )

        # in-flight toward / buffered at the central BE master
        for request in ctx.central_inflight.items():
            tally(request, "central-inflight")
        for request in ctx.central_be:
            tally(request, "central-be")

        # node queues and running sets
        for worker in ctx.worker_list:
            for queue_name, queue in (
                ("lc", worker._lc_queue),
                ("be", worker._be_queue),
            ):
                for request in queue:
                    tally(request, f"{worker.name}.{queue_name}-queue")
                    if request.state is not RequestState.QUEUED_NODE:
                        bad(
                            f"request {request.request_id} queued on "
                            f"{worker.name} has state {request.state.value}, "
                            f"expected {RequestState.QUEUED_NODE.value}",
                            node=worker.name,
                            service=request.spec.name,
                        )
            for rr in worker.running.values():
                request = rr.request
                tally(request, f"{worker.name}.running")
                if request.state is not RequestState.RUNNING:
                    bad(
                        f"request {request.request_id} running on "
                        f"{worker.name} has state {request.state.value}",
                        node=worker.name,
                        service=request.spec.name,
                    )

        m = ctx.collector.metrics
        lc_accounted = m.lc_completed + m.lc_abandoned + live_lc
        if m.lc_arrived != lc_accounted:
            bad(
                f"LC conservation broken: arrived={m.lc_arrived} != "
                f"completed={m.lc_completed} + abandoned={m.lc_abandoned} "
                f"(crash share {ctx.crash_abandoned}) + live={live_lc} "
                f"= {lc_accounted}"
            )
        be_accounted = m.be_completed + ctx.dropped_be + live_be
        if m.be_arrived != be_accounted:
            bad(
                f"BE conservation broken: arrived={m.be_arrived} != "
                f"completed={m.be_completed} + dropped={ctx.dropped_be} "
                f"+ live={live_be} = {be_accounted}"
            )

    # ------------------------------------------------------------------ #
    # law 2: node resource accounting
    # ------------------------------------------------------------------ #
    def _check_node_resources(
        self, ctx: SimContext, out: List[Violation]
    ) -> None:
        now = ctx.now_ms
        for worker in ctx.worker_list:
            allocated = worker.allocated
            capacity = worker.capacity
            for dim in ("cpu", "memory", "bandwidth", "disk"):
                used = getattr(allocated, dim)
                cap = getattr(capacity, dim)
                if used < -_RES_TOL:
                    out.append(
                        Violation(
                            "node-resources",
                            now,
                            f"negative {dim} allocation {used:.9f}",
                            node=worker.name,
                        )
                    )
                if used > cap + _RES_TOL:
                    out.append(
                        Violation(
                            "node-resources",
                            now,
                            f"{dim} allocation {used:.6f} exceeds capacity "
                            f"{cap:.6f}",
                            node=worker.name,
                        )
                    )
            total_cpu = sum(
                rr.allocation.cpu for rr in worker.running.values()
            )
            total_mem = sum(
                rr.allocation.memory for rr in worker.running.values()
            )
            for dim, total in (("cpu", total_cpu), ("memory", total_mem)):
                booked = getattr(allocated, dim)
                if abs(total - booked) > _RES_TOL * max(
                    1.0, abs(booked)
                ):
                    out.append(
                        Violation(
                            "node-resources",
                            now,
                            f"per-request {dim} allocations sum to "
                            f"{total:.9f} but the node books {booked:.9f}",
                            node=worker.name,
                        )
                    )

    # ------------------------------------------------------------------ #
    # law 3: D-VPA pod limits
    # ------------------------------------------------------------------ #
    def _check_dvpa_limits(
        self, ctx: SimContext, out: List[Violation]
    ) -> None:
        now = ctx.now_ms
        for worker in ctx.worker_list:
            manager = worker.manager
            pods = getattr(manager, "_dvpa", None)
            if pods is None:
                continue  # not an HRM-style manager
            dvpa = pods.get(worker.name)
            if dvpa is None:
                if worker.running:
                    out.append(
                        Violation(
                            "dvpa-limits",
                            now,
                            f"{len(worker.running)} request(s) running but "
                            "no D-VPA instance exists for the node",
                            node=worker.name,
                        )
                    )
                continue
            usage: Dict[str, List[float]] = {}
            for rr in worker.running.values():
                cpu_mem = usage.setdefault(rr.request.spec.name, [0.0, 0.0])
                cpu_mem[0] += rr.allocation.cpu
                cpu_mem[1] += rr.allocation.memory
            for service, (cpu_used, mem_used) in usage.items():
                limit = dvpa.current_limit(service)
                if limit is None:
                    out.append(
                        Violation(
                            "dvpa-limits",
                            now,
                            f"service holds cpu={cpu_used:.4f} "
                            f"mem={mem_used:.1f} but has no pod",
                            node=worker.name,
                            service=service,
                        )
                    )
                    continue
                if cpu_used > limit.cpu + _DVPA_TOL:
                    out.append(
                        Violation(
                            "dvpa-limits",
                            now,
                            f"container cpu usage {cpu_used:.6f} exceeds pod "
                            f"limit {limit.cpu:.6f}",
                            node=worker.name,
                            service=service,
                        )
                    )
                if mem_used > limit.memory + _DVPA_TOL:
                    out.append(
                        Violation(
                            "dvpa-limits",
                            now,
                            f"container memory usage {mem_used:.3f} exceeds "
                            f"pod limit {limit.memory:.3f}",
                            node=worker.name,
                            service=service,
                        )
                    )

    # ------------------------------------------------------------------ #
    # law 4: snapshot/ground-truth coherence
    # ------------------------------------------------------------------ #
    def _check_snapshot_coherence(
        self, ctx: SimContext, out: List[Violation]
    ) -> None:
        now = ctx.now_ms
        storage = ctx.storage
        getter = getattr(storage, "cached_node_snapshot", None)
        if getter is None:
            return
        for worker in ctx.worker_list:
            if getattr(worker, "snapshot_dirty", True):
                continue  # cache is allowed to be stale until re-marked
            snap = getter(worker.name)
            if snap is None:
                continue
            lc_q, be_q = worker.queue_lengths()
            free = worker.free()
            q_cpu, q_mem = worker.queued_be_demand()
            checks = (
                ("lc_queue", snap.lc_queue, lc_q, 0),
                ("be_queue", snap.be_queue, be_q, 0),
                ("running", snap.running, len(worker.running), 0),
                ("cpu_available", snap.cpu_available, free.cpu, _RES_TOL),
                ("mem_available", snap.mem_available, free.memory, _RES_TOL),
                ("be_queue_cpu", snap.be_queue_cpu, q_cpu, _RES_TOL),
                ("be_queue_mem", snap.be_queue_mem, q_mem, _RES_TOL),
            )
            for field_name, cached, truth, tol in checks:
                if abs(cached - truth) > tol:
                    out.append(
                        Violation(
                            "snapshot-coherence",
                            now,
                            f"clean node's cached {field_name}={cached} "
                            f"disagrees with ground truth {truth} — some "
                            "mutation path forgot to set snapshot_dirty",
                            node=worker.name,
                        )
                    )

    # ------------------------------------------------------------------ #
    # law 5: DSS-LC dispatch capacity (differential, via the audit log)
    # ------------------------------------------------------------------ #
    def _check_dispatch_capacity(
        self, ctx: SimContext, out: List[Violation]
    ) -> None:
        log = getattr(ctx.lc_scheduler, "audit_log", None)
        if not log:
            return
        # lazy imports keep sim → scheduling/flow edges out of module load
        from repro.flow.reference import (
            eq2_capacities_scalar,
            node_units_scalar,
        )
        from repro.scheduling.dss_lc import augmented_capacities

        now = ctx.now_ms
        records = list(log)
        log.clear()
        for rec in records:
            eq2 = eq2_capacities_scalar(
                rec.cpu_available,
                rec.mem_available,
                rec.cpu_total,
                rec.mem_total,
                rec.lc_queue,
                rec.r_cpu,
                rec.r_mem,
                rec.target_fill,
            )
            for i, placed in enumerate(rec.immediate_counts):
                if placed > eq2[i]:
                    out.append(
                        Violation(
                            "dispatch-capacity",
                            now,
                            f"immediate placements {placed} exceed the Eq. 2 "
                            f"capacity {eq2[i]} (re-derived from raw inputs)",
                            node=rec.node_names[i],
                            service=rec.service,
                        )
                    )
            if rec.n_queued <= 0:
                continue
            adjusted = [
                max(
                    0,
                    node_units_scalar(
                        rec.cpu_total[i],
                        rec.mem_total[i],
                        rec.r_cpu[i],
                        rec.r_mem[i],
                    )
                    - rec.immediate_counts[i]
                    - int(rec.lc_queue[i]),
                )
                for i in range(len(rec.node_names))
            ]
            aug = augmented_capacities(adjusted, rec.n_queued)
            for i, placed in enumerate(rec.queued_counts):
                if placed > aug[i]:
                    out.append(
                        Violation(
                            "dispatch-capacity",
                            now,
                            f"queued-path placements {placed} exceed the "
                            f"Eq. 7-8 augmented capacity {aug[i]} "
                            f"(remaining units {adjusted[i]}, "
                            f"|R'_k|={rec.n_queued})",
                            node=rec.node_names[i],
                            service=rec.service,
                        )
                    )


class InvariantStage(Stage):
    """Pipeline stage running the checker at the end of every tick."""

    name = "invariants"

    def run(self, ctx: SimContext) -> None:
        if ctx.invariants is not None:
            ctx.invariants.check_tick(ctx)
