"""Failure injection for robustness experiments.

Edge-clouds fail far more often than datacenters — nodes reboot, WAN links
flap.  The paper does not evaluate failures explicitly, but a management
framework claiming production readiness must degrade gracefully, so the
test suite injects:

* **node crashes** — a worker disappears: running requests are lost (BE
  requeued like evictions, LC abandoned), queued requests requeued, the
  node stops taking work until it recovers;
* **WAN partitions** — delays to a cluster become effectively infinite for
  a while; dispatchers keep working on the remaining topology.

The injector is deterministic for a given seed and driven by the runner's
tick loop via :meth:`apply`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from typing import TYPE_CHECKING

from repro.obs.emitter import NULL_EMITTER
from repro.sim.request import RequestState, ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - import avoided to keep the package
    # import graph acyclic (cluster.node uses sim.latency via sim/__init__)
    from repro.cluster.topology import EdgeCloudSystem

__all__ = ["FailureConfig", "FailureInjector", "FailureEvent"]


@dataclass(frozen=True)
class FailureEvent:
    time_ms: float
    kind: str  # "crash" | "recover" | "partition" | "heal"
    target: str


@dataclass
class FailureConfig:
    #: mean time between node crashes across the whole system (ms); None
    #: disables crash injection.
    node_mtbf_ms: Optional[float] = 30_000.0
    #: node downtime after a crash (ms).
    node_downtime_ms: float = 5_000.0
    #: mean time between WAN partitions (ms); None disables.
    partition_mtbf_ms: Optional[float] = None
    partition_duration_ms: float = 3_000.0
    seed: int = 0


class FailureInjector:
    """Schedules and applies crash/partition events against a system."""

    def __init__(
        self, system: "EdgeCloudSystem", config: Optional[FailureConfig] = None
    ) -> None:
        self.system = system
        self.config = config or FailureConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self._down_nodes: Dict[str, float] = {}  # name -> recover time
        self._partitioned: Dict[int, float] = {}  # cluster -> heal time
        self._next_crash_ms = self._draw(self.config.node_mtbf_ms, 0.0)
        self._next_partition_ms = self._draw(self.config.partition_mtbf_ms, 0.0)
        self.events: List[FailureEvent] = []
        #: node names crashed during the most recent :meth:`apply` call —
        #: read by the failures stage to purge per-node derived state
        #: (QoS windows, re-assurance minima) that outlives the crash.
        self.last_crashed: List[str] = []
        #: observability bus; assigned by the runner, None when disabled
        #: (kept for introspection — emissions go through the emitter).
        self.bus = None
        #: lifecycle emitter; rewired by the runner, null when standalone.
        self.emitter = NULL_EMITTER

    def _draw(self, mtbf: Optional[float], now_ms: float) -> float:
        if mtbf is None:
            return float("inf")
        return now_ms + float(self.rng.exponential(mtbf))

    # ------------------------------------------------------------------ #
    # queries used by the runner
    # ------------------------------------------------------------------ #
    def node_is_down(self, name: str) -> bool:
        return name in self._down_nodes

    def cluster_is_partitioned(self, cluster_id: int) -> bool:
        return cluster_id in self._partitioned

    @property
    def down_nodes(self) -> Set[str]:
        return set(self._down_nodes)

    # ------------------------------------------------------------------ #
    # tick hook
    # ------------------------------------------------------------------ #
    def apply(self, now_ms: float) -> List[ServiceRequest]:
        """Advance failure state; returns requests displaced this tick."""
        displaced: List[ServiceRequest] = []
        self.last_crashed = []

        # recoveries / heals
        for name in [n for n, t in self._down_nodes.items() if now_ms >= t]:
            del self._down_nodes[name]
            self.events.append(FailureEvent(now_ms, "recover", name))
            self.emitter.node_recovered(now_ms, name)
        for cid in [c for c, t in self._partitioned.items() if now_ms >= t]:
            del self._partitioned[cid]
            self.events.append(FailureEvent(now_ms, "heal", f"cluster-{cid}"))
            self.emitter.partition_healed(now_ms, cid)

        # new crash
        if now_ms >= self._next_crash_ms:
            self._next_crash_ms = self._draw(self.config.node_mtbf_ms, now_ms)
            victim = self._pick_up_node()
            if victim is not None:
                displaced.extend(self._crash(victim, now_ms))

        # new partition
        if now_ms >= self._next_partition_ms:
            self._next_partition_ms = self._draw(
                self.config.partition_mtbf_ms, now_ms
            )
            cid = int(self.rng.integers(self.system.n_clusters))
            if cid != self.system.central_cluster_id:
                self._partitioned[cid] = (
                    now_ms + self.config.partition_duration_ms
                )
                self.events.append(
                    FailureEvent(now_ms, "partition", f"cluster-{cid}")
                )
                self.emitter.partition_started(
                    now_ms, cid, self.config.partition_duration_ms
                )
        return displaced

    def _pick_up_node(self):
        candidates = [
            w for w in self.system.all_workers() if w.name not in self._down_nodes
        ]
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]

    def _crash(self, worker, now_ms: float) -> List[ServiceRequest]:
        self._down_nodes[worker.name] = now_ms + self.config.node_downtime_ms
        self.last_crashed.append(worker.name)
        self.events.append(FailureEvent(now_ms, "crash", worker.name))
        self.emitter.node_crashed(
            now_ms,
            worker.name,
            len(worker.running) + len(worker._lc_queue) + len(worker._be_queue),
        )
        displaced: List[ServiceRequest] = []
        # running requests lose all state
        for rr in list(worker.running.values()):
            worker.running.pop(rr.request.request_id, None)
            worker.reclaim(rr.allocation)
            request = rr.request
            if request.is_lc:
                request.mark_abandoned(now_ms)
            else:
                request.evictions += 1
                request.started_ms = None
                request.state = RequestState.QUEUED_MASTER
            displaced.append(request)
        # queued requests are displaced wholesale
        for queue in (worker._lc_queue, worker._be_queue):
            while queue:
                request = queue.popleft()
                request.state = RequestState.QUEUED_MASTER
                displaced.append(request)
        # queues/running were mutated directly, bypassing the node methods
        # that normally maintain the snapshot dirty flag.
        worker.snapshot_dirty = True
        return displaced

    # ------------------------------------------------------------------ #
    # Checkpointable
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict:
        """RNG position plus the full failure schedule (down/partitioned
        maps, next-event draws, event log)."""
        return {
            "rng": self.rng.bit_generator.state,
            "down_nodes": self._down_nodes,
            "partitioned": self._partitioned,
            "next_crash_ms": self._next_crash_ms,
            "next_partition_ms": self._next_partition_ms,
            "events": self.events,
        }

    def restore_state(self, state: Dict) -> None:
        self.rng.bit_generator.state = state["rng"]
        self._down_nodes = state["down_nodes"]
        self._partitioned = state["partitioned"]
        self._next_crash_ms = state["next_crash_ms"]
        self._next_partition_ms = state["next_partition_ms"]
        self.events = state["events"]
