"""Deterministic checkpoint/restore of a running simulation.

Long-horizon runs, warm-started experiments, and scenario branching all
need the same primitive: freeze *every* piece of mutable simulation state
at tick t, and later rebuild an identical system and continue such that the
resumed run is bit-identical to a straight run.  The contract:

* every stateful layer implements the :class:`Checkpointable` protocol —
  ``snapshot_state()`` returns a plain dict of its live mutable state and
  ``restore_state(state)`` installs one back.  Wiring (bus/emitter refs,
  back-pointers to the system) is *not* part of the state: it is re-created
  by constructing a fresh runner;
* the runner gathers each layer's state dict into one bundle and performs a
  **single deepcopy over the whole bundle**, so objects shared between
  layers (a request in flight *and* in a queue, numpy arrays aliased
  between an agent's encoder and its optimizer) keep their aliasing;
* restore deepcopies again before distributing the sub-states, so one
  checkpoint can be resumed — or *forked* — any number of times.

:class:`RunnerCheckpoint` is the deepcopied bundle plus a format version;
:func:`save_checkpoint` / :func:`load_checkpoint` pickle it (optionally
with rebuild metadata) for the ``python -m repro checkpoint|resume`` CLI.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Protocol, runtime_checkable

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointable",
    "RunnerCheckpoint",
    "component_state",
    "restore_component",
    "rng_state",
    "restore_rng",
    "save_checkpoint",
    "load_checkpoint",
]

#: bump on any incompatible change to the bundle layout.
CHECKPOINT_VERSION = 1


@runtime_checkable
class Checkpointable(Protocol):
    """A layer whose live mutable state can be snapshotted and restored."""

    def snapshot_state(self) -> Dict[str, Any]:
        """Return the layer's mutable state (no deepcopy; caller copies)."""
        ...

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install a previously snapshotted state dict."""
        ...


#: attributes the generic fallback must never capture: wiring re-created by
#: the runner, or configuration/topology shared with the rebuilt system.
_SKIP_ATTRS = frozenset(
    {"bus", "emitter", "system", "config", "detector", "reassurance"}
)


def component_state(obj: Any) -> Dict[str, Any]:
    """Snapshot one component, via the protocol or a filtered ``__dict__``.

    The fallback covers trivially stateful components (round-robin cursors,
    counters) without forcing every baseline to implement the protocol.
    """
    fn = getattr(obj, "snapshot_state", None)
    if fn is not None:
        return fn()
    return {
        "__dict__": {
            k: v for k, v in vars(obj).items() if k not in _SKIP_ATTRS
        }
    }


def restore_component(obj: Any, state: Dict[str, Any]) -> None:
    fn = getattr(obj, "restore_state", None)
    if fn is not None:
        fn(state)
        return
    for key, value in state["__dict__"].items():
        setattr(obj, key, value)


def rng_state(rng) -> Dict[str, Any]:
    """Portable state of a ``numpy.random.Generator``."""
    return rng.bit_generator.state


def restore_rng(rng, state: Dict[str, Any]) -> None:
    rng.bit_generator.state = state


@dataclass
class RunnerCheckpoint:
    """One frozen simulation state; ``state`` is owned (already deepcopied)."""

    state: Dict[str, Any]
    version: int = CHECKPOINT_VERSION
    #: optional rebuild metadata (CLI stack/topology/trace arguments).
    meta: Dict[str, Any] = field(default_factory=dict)

    def fork(self) -> "RunnerCheckpoint":
        """An independent copy (resuming never mutates a checkpoint, but a
        caller may want to annotate forks with diverging metadata)."""
        return RunnerCheckpoint(
            state=copy.deepcopy(self.state),
            version=self.version,
            meta=dict(self.meta),
        )


def save_checkpoint(checkpoint: RunnerCheckpoint, path: str) -> str:
    with open(path, "wb") as fh:
        pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_checkpoint(path: str) -> RunnerCheckpoint:
    with open(path, "rb") as fh:
        checkpoint = pickle.load(fh)
    if not isinstance(checkpoint, RunnerCheckpoint):
        raise TypeError(f"{path}: not a RunnerCheckpoint")
    if checkpoint.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: checkpoint version {checkpoint.version} "
            f"!= supported {CHECKPOINT_VERSION}"
        )
    return checkpoint
