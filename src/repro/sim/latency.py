"""Pressure-test latency model: processing time vs allocation and load.

The paper maps simulated request processing times from *pressure testing* on
the physical clusters: "we record the time taken for each type of service to
complete under different loads and resources" (§6.1).  We substitute a
parametric model with the qualitative properties such measurements always
show:

* with the reference allocation on an unloaded node, a request takes its
  ``base_service_ms``;
* CPU starvation stretches latency polynomially —
  ``(ref_cpu / alloc_cpu) ** cpu_elasticity``;
* memory below reference causes a gentler penalty (paging pressure) and
  below the service minimum the request cannot run at all;
* node-level contention (total utilisation beyond a knee) adds a convex
  penalty, reproducing interference between co-located services;
* giving more than the reference allocation yields mildly diminishing
  speed-ups, capped at 1.25×.

The model returns a *speed factor*: work progresses at ``speed × dt``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceVector
from repro.workloads.spec import ServiceSpec

__all__ = ["LatencyModel", "speed_factor"]

#: utilisation knee beyond which contention penalties kick in.
CONTENTION_KNEE = 0.85
#: how sharply latency degrades past the knee.
CONTENTION_SLOPE = 1.2
#: ceiling on super-reference speed-up.
MAX_SPEEDUP = 1.25

#: cache-miss sentinel (``None`` is a legitimate cached value).
_UNSET = object()


def speed_factor(
    spec: ServiceSpec,
    allocation: ResourceVector,
    node_utilization: float,
) -> float:
    """Progress multiplier for a request holding ``allocation``.

    Returns 0 when the allocation cannot support the service at all.
    """
    ref = spec.reference_resources
    if allocation.cpu <= 0 or (ref.memory > 0 and allocation.memory <= 0):
        return 0.0

    cpu_ratio = allocation.cpu / ref.cpu if ref.cpu > 0 else 1.0
    if cpu_ratio >= 1.0:
        cpu_speed = min(MAX_SPEEDUP, 1.0 + 0.5 * math.log1p(cpu_ratio - 1.0))
    else:
        cpu_speed = cpu_ratio**spec.cpu_elasticity

    if ref.memory > 0:
        mem_ratio = min(1.0, allocation.memory / ref.memory)
        # paging penalty: latency ~1/sqrt of the shortfall, gentler than CPU
        mem_speed = math.sqrt(mem_ratio)
    else:
        mem_speed = 1.0

    contention = 1.0
    if node_utilization > CONTENTION_KNEE:
        over = node_utilization - CONTENTION_KNEE
        contention = 1.0 / (1.0 + CONTENTION_SLOPE * over * over / (1 - CONTENTION_KNEE))

    return max(0.0, min(cpu_speed, mem_speed) * contention)


@dataclass
class LatencyModel:
    """Configurable wrapper so experiments can perturb the model."""

    contention_knee: float = CONTENTION_KNEE
    contention_slope: float = CONTENTION_SLOPE
    max_speedup: float = MAX_SPEEDUP
    #: (service, alloc cpu, alloc mem) -> min(cpu_speed, mem_speed), or None
    #: for unrunnable allocations.  The allocation-dependent part of the
    #: model is pure, and running requests keep the same allocation for many
    #: ticks, so it is memoized; only the contention factor varies per call.
    _base_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    def speed(
        self,
        spec: ServiceSpec,
        allocation: ResourceVector,
        node_utilization: float,
    ) -> float:
        cache = self._base_cache
        key = (spec.name, allocation.cpu, allocation.memory)
        base = cache.get(key, _UNSET)
        if base is _UNSET:
            ref = spec.reference_resources
            if allocation.cpu <= 0 or (
                ref.memory > 0 and allocation.memory <= 0
            ):
                base = None
            else:
                cpu_ratio = (
                    allocation.cpu / ref.cpu if ref.cpu > 0 else 1.0
                )
                if cpu_ratio >= 1.0:
                    cpu_speed = min(
                        self.max_speedup,
                        1.0 + 0.5 * math.log1p(cpu_ratio - 1.0),
                    )
                else:
                    cpu_speed = cpu_ratio**spec.cpu_elasticity
                if ref.memory > 0:
                    mem_speed = math.sqrt(
                        min(1.0, allocation.memory / ref.memory)
                    )
                else:
                    mem_speed = 1.0
                base = min(cpu_speed, mem_speed)
            if len(cache) >= 8192:
                cache.clear()
            cache[key] = base
        if base is None:
            return 0.0
        contention = 1.0
        if node_utilization > self.contention_knee:
            over = node_utilization - self.contention_knee
            contention = 1.0 / (
                1.0
                + self.contention_slope * over * over / (1 - self.contention_knee)
            )
        return max(0.0, base * contention)

    def expected_processing_ms(
        self,
        spec: ServiceSpec,
        allocation: ResourceVector,
        node_utilization: float,
    ) -> float:
        s = self.speed(spec, allocation, node_utilization)
        if s <= 0:
            return float("inf")
        return spec.base_service_ms / s
