"""Runtime invariant checking for the simulation (debug/CI mode).

With ``RunnerConfig(validate=True)`` the runner calls
:meth:`InvariantChecker.check` every tick; any violation raises
:class:`InvariantViolation` with enough context to debug.  The cost is a few
percent of runtime, so experiments leave it off and the test suite turns it
on.

Checked invariants:

* **resource conservation** — ``allocated + free == capacity`` per node, no
  negative components;
* **allocation backing** — the node's allocated total equals the sum over
  its running requests' allocations;
* **state sanity** — running requests are in RUNNING state; queued requests
  are in QUEUED_NODE; no request appears on two nodes;
* **metric consistency** — completed + abandoned never exceeds arrived.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.cluster.resources import ResourceVector
from repro.sim.request import RequestState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import EdgeCloudSystem
    from repro.metrics.collectors import RunMetrics

__all__ = ["InvariantViolation", "InvariantChecker"]

_TOL = 1e-6


class InvariantViolation(AssertionError):
    """A simulation invariant failed; the message names node and values."""


class InvariantChecker:
    """Stateless validator run against the live system each tick."""

    def __init__(self, system: "EdgeCloudSystem") -> None:
        self.system = system
        self.checks_run = 0

    def check(self, now_ms: float, metrics: "RunMetrics") -> None:
        self.checks_run += 1
        seen: Set[int] = set()
        for worker in self.system.all_workers():
            self._check_conservation(worker, now_ms)
            self._check_backing(worker, now_ms)
            self._check_states(worker, now_ms, seen)
        self._check_metrics(metrics, now_ms)

    # ------------------------------------------------------------------ #
    # individual invariants
    # ------------------------------------------------------------------ #
    def _check_conservation(self, worker, now_ms: float) -> None:
        total = worker.allocated + worker.free()
        if not total.approx_equal(worker.capacity, tol=_TOL):
            raise InvariantViolation(
                f"t={now_ms}: {worker.name} allocated+free "
                f"{total.as_tuple()} != capacity {worker.capacity.as_tuple()}"
            )
        if not worker.allocated.is_nonnegative():
            raise InvariantViolation(
                f"t={now_ms}: {worker.name} negative allocation "
                f"{worker.allocated.as_tuple()}"
            )

    def _check_backing(self, worker, now_ms: float) -> None:
        backing = ResourceVector()
        for rr in worker.running.values():
            backing = backing + rr.allocation
        if not backing.approx_equal(worker.allocated, tol=1e-4):
            raise InvariantViolation(
                f"t={now_ms}: {worker.name} allocated "
                f"{worker.allocated.as_tuple()} not backed by running "
                f"requests {backing.as_tuple()}"
            )

    def _check_states(self, worker, now_ms: float, seen: Set[int]) -> None:
        for rid, rr in worker.running.items():
            if rid in seen:
                raise InvariantViolation(
                    f"t={now_ms}: request {rid} running on two nodes"
                )
            seen.add(rid)
            if rr.request.state is not RequestState.RUNNING:
                raise InvariantViolation(
                    f"t={now_ms}: {worker.name} running request {rid} in "
                    f"state {rr.request.state.value}"
                )
        for queue in (worker._lc_queue, worker._be_queue):
            for request in queue:
                if request.request_id in seen:
                    raise InvariantViolation(
                        f"t={now_ms}: request {request.request_id} queued "
                        "while running elsewhere"
                    )
                if request.state is not RequestState.QUEUED_NODE:
                    raise InvariantViolation(
                        f"t={now_ms}: {worker.name} queued request "
                        f"{request.request_id} in state {request.state.value}"
                    )

    def _check_metrics(self, metrics, now_ms: float) -> None:
        if metrics.lc_completed + metrics.lc_abandoned > metrics.lc_arrived:
            raise InvariantViolation(
                f"t={now_ms}: LC completed({metrics.lc_completed}) + "
                f"abandoned({metrics.lc_abandoned}) > "
                f"arrived({metrics.lc_arrived})"
            )
        if metrics.lc_satisfied > metrics.lc_completed:
            raise InvariantViolation(
                f"t={now_ms}: LC satisfied({metrics.lc_satisfied}) > "
                f"completed({metrics.lc_completed})"
            )
