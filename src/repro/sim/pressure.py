"""Pressure testing: derive latency tables the way the paper does (§6.1).

"To map the time taken to process requests in the simulation environment,
we record the time taken for each type of service to complete under
different loads and resources through pressure testing in the physical
environment."

This module reproduces that methodology against the *physical-equivalent*
substrate (a real :class:`WorkerNode` executing requests tick by tick):

* :class:`PressureTester` sweeps (allocation fraction × background load)
  for a service and records measured completion times;
* :class:`TableLatencyModel` is a drop-in :class:`LatencyModel` replacement
  that bilinearly interpolates the recorded table — attach it to nodes via
  ``WorkerNode(latency_model=...)`` to run experiments on measured rather
  than parametric curves.

The derived table should (and the tests verify it does) reproduce the
parametric model it was measured from — the same closure the paper gets
between its physical clusters and twin space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.sim.latency import LatencyModel
from repro.workloads.spec import ServiceSpec

__all__ = ["PressureTester", "PressurePoint", "TableLatencyModel"]


@dataclass(frozen=True)
class PressurePoint:
    """One measured cell of the sweep."""

    allocation_fraction: float
    background_utilization: float
    processing_ms: float


class PressureTester:
    """Sweep a service's processing time over allocation × load."""

    def __init__(
        self,
        *,
        latency_model: Optional[LatencyModel] = None,
        tick_ms: float = 5.0,
    ) -> None:
        self.latency_model = latency_model or LatencyModel()
        self.tick_ms = tick_ms

    def measure_once(
        self,
        spec: ServiceSpec,
        allocation_fraction: float,
        background_utilization: float,
    ) -> float:
        """Run one request to completion under fixed conditions (ms).

        Executes the actual work loop (remaining -= dt × speed), i.e. the
        same mechanics a worker node applies, not a closed-form shortcut —
        so a change to the node execution path shows up here.
        """
        allocation = spec.reference_resources * allocation_fraction
        remaining = spec.base_service_ms
        elapsed = 0.0
        # hard bound: a request that makes no progress is "infinite"
        limit = spec.base_service_ms * 1_000.0
        while remaining > 1e-9:
            speed = self.latency_model.speed(
                spec, allocation, background_utilization
            )
            if speed <= 0.0:
                return float("inf")
            remaining -= self.tick_ms * speed
            elapsed += self.tick_ms
            if elapsed > limit:
                return float("inf")
        return elapsed

    def sweep(
        self,
        spec: ServiceSpec,
        allocation_fractions: Sequence[float] = (0.4, 0.6, 0.8, 1.0, 1.2),
        background_utilizations: Sequence[float] = (0.0, 0.5, 0.8, 0.95),
    ) -> List[PressurePoint]:
        points: List[PressurePoint] = []
        for frac in allocation_fractions:
            for util in background_utilizations:
                points.append(
                    PressurePoint(
                        allocation_fraction=frac,
                        background_utilization=util,
                        processing_ms=self.measure_once(spec, frac, util),
                    )
                )
        return points


class TableLatencyModel(LatencyModel):
    """Latency model backed by measured pressure tables.

    For services with a table, ``speed`` is derived from bilinear
    interpolation of the measured processing time; unknown services fall
    back to the parametric model.
    """

    def __init__(self) -> None:
        super().__init__()
        self._tables: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def fit(self, spec: ServiceSpec, points: Sequence[PressurePoint]) -> None:
        fracs = sorted({p.allocation_fraction for p in points})
        utils = sorted({p.background_utilization for p in points})
        grid = np.full((len(fracs), len(utils)), np.nan)
        for p in points:
            i = fracs.index(p.allocation_fraction)
            j = utils.index(p.background_utilization)
            grid[i, j] = p.processing_ms
        if np.isnan(grid).any():
            raise ValueError("pressure sweep grid is incomplete")
        self._tables[spec.name] = (
            np.asarray(fracs), np.asarray(utils), grid
        )

    def has_table(self, service: str) -> bool:
        return service in self._tables

    def speed(
        self,
        spec: ServiceSpec,
        allocation: ResourceVector,
        node_utilization: float,
    ) -> float:
        table = self._tables.get(spec.name)
        if table is None:
            return super().speed(spec, allocation, node_utilization)
        fracs, utils, grid = table
        ref_cpu = max(spec.reference_resources.cpu, 1e-9)
        frac = allocation.cpu / ref_cpu
        if allocation.cpu <= 0:
            return 0.0
        processing = self._interp2(fracs, utils, grid, frac, node_utilization)
        if not np.isfinite(processing) or processing <= 0:
            return 0.0
        return spec.base_service_ms / processing

    @staticmethod
    def _interp2(
        xs: np.ndarray, ys: np.ndarray, grid: np.ndarray, x: float, y: float
    ) -> float:
        """Bilinear interpolation with edge clamping."""
        x = float(np.clip(x, xs[0], xs[-1]))
        y = float(np.clip(y, ys[0], ys[-1]))
        i = int(np.clip(np.searchsorted(xs, x) - 1, 0, len(xs) - 2))
        j = int(np.clip(np.searchsorted(ys, y) - 1, 0, len(ys) - 2))
        tx = (x - xs[i]) / (xs[i + 1] - xs[i]) if xs[i + 1] > xs[i] else 0.0
        ty = (y - ys[j]) / (ys[j + 1] - ys[j]) if ys[j + 1] > ys[j] else 0.0
        # replace infs (unrunnable cells) with a huge finite number so the
        # interpolation degrades smoothly at the boundary
        cell = np.where(np.isfinite(grid), grid, 1e12)
        top = cell[i, j] * (1 - tx) + cell[i + 1, j] * tx
        bottom = cell[i, j + 1] * (1 - tx) + cell[i + 1, j + 1] * tx
        return float(top * (1 - ty) + bottom * ty)
