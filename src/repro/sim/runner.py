"""Simulation runner: the dispatch–allocate–adjust loop of §3, end to end.

Per tick the runner:

1. injects trace arrivals into the origin cluster's master queues;
2. refreshes the state storage (Prometheus/QoS-detector pushes);
3. runs the LC scheduler *on every master* (distributed dispatch) and ships
   assignments over the LAN/WAN with the topology's one-way delays;
4. forwards BE requests to the central cluster (unless the BE policy is
   distributed, as DSACO's is) and runs the central BE dispatcher;
5. delivers in-flight requests that arrived this tick into node queues;
6. steps every worker node (admission under the attached resource manager,
   processing, completion, eviction, abandonment);
7. runs the QoS re-assurance pass (Algorithm 1) when HRM is active;
8. samples period metrics (800 ms cadence).

The runner is deterministic for a fixed trace and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.topology import EdgeCloudSystem
from repro.core.state_storage import StateStorage
from repro.kube.events import EventRecorder
from repro.obs.events import (
    RequestAbandoned,
    RequestArrived,
    RequestCompleted,
    RequestDelivered,
    RequestDropped,
    RequestEvicted,
    RequestRequeued,
    RequestScheduled,
)
from repro.sim.failures import FailureConfig, FailureInjector
from repro.hrm.reassurance import ReassuranceMechanism
from repro.metrics.collectors import PERIOD_MS, PeriodCollector, RunMetrics
from repro.sim.engine import TICK_MS, Clock, DeliveryQueue
from repro.sim.request import RequestState, ServiceRequest
from repro.workloads.spec import ServiceSpec
from repro.workloads.trace import TraceRecord

__all__ = ["SimulationRunner", "RunnerConfig"]


@dataclass
class RunnerConfig:
    duration_ms: float = 60_000.0
    tick_ms: float = TICK_MS
    period_ms: float = PERIOD_MS
    state_refresh_ms: float = 100.0
    #: evicted BE requests re-enter scheduling at their origin cluster.
    requeue_evicted_be: bool = True
    #: hard cap on BE requeue cycles before a request is dropped (safety).
    max_be_reschedules: int = 20
    #: optional failure injection (node crashes / WAN partitions).
    failures: Optional[FailureConfig] = None
    #: record a kubectl-get-events-style audit stream (small overhead).
    record_events: bool = False
    #: kube event recorder bounds (only read when ``record_events``).
    event_capacity: int = 1000
    event_dedup_window_ms: float = 1_000.0
    #: enable the unified observability subsystem (:mod:`repro.obs`):
    #: lifecycle events on a bus, request span traces, metric registry.
    observe: bool = False
    #: event-bus ring size (retrospective queries; publishes never block).
    obs_ring_capacity: int = 4096
    #: max traces held in memory (oldest finished evicted first).
    trace_capacity: int = 100_000
    #: run the invariant checker every tick (a few % overhead; CI uses it).
    validate: bool = False
    #: time each pipeline stage with :class:`repro.perf.StageProfiler`
    #: (exposed as ``runner.profiler``; ~0.1 % overhead).
    profile: bool = False


class SimulationRunner:
    """Wires workload, system, schedulers, managers, and metrics together."""

    def __init__(
        self,
        system: EdgeCloudSystem,
        trace: Sequence[TraceRecord],
        catalog: Sequence[ServiceSpec],
        lc_scheduler,
        be_scheduler,
        *,
        config: Optional[RunnerConfig] = None,
        state_storage: Optional[StateStorage] = None,
        reassurance: Optional[ReassuranceMechanism] = None,
    ) -> None:
        self.system = system
        self.config = config or RunnerConfig()
        self.catalog = {s.name: s for s in catalog}
        self.lc_scheduler = lc_scheduler
        self.be_scheduler = be_scheduler
        self.reassurance = reassurance
        self.storage = state_storage or StateStorage(
            system, refresh_period_ms=self.config.state_refresh_ms
        )
        self.collector = PeriodCollector(system, period_ms=self.config.period_ms)
        self.clock = Clock(self.config.tick_ms)
        self._deliveries = DeliveryQueue()  # payload: (request, cluster, node)
        self._central_be: List[ServiceRequest] = []
        self._central_inflight = DeliveryQueue()  # payload: request
        self._trace = sorted(trace, key=lambda r: r.time_ms)
        self._trace_cursor = 0
        self._be_distributed = getattr(be_scheduler, "distributed", False)
        self.dropped_be = 0
        #: LC requests lost while running on a crashed node (abandoned).
        self.crash_abandoned = 0
        self.injector: Optional[FailureInjector] = None
        if self.config.failures is not None:
            self.injector = FailureInjector(system, self.config.failures)
            self.storage.node_filter = self._node_visible
        self.profiler: Optional["StageProfiler"] = None
        if self.config.profile:
            from repro.perf.profiler import StageProfiler

            self.profiler = StageProfiler()
        # active-set stepping state, initialised at run() start.
        self._worker_list: List = []
        self._active: set = set()
        self._idle_skip_ok = False
        # --- observability ------------------------------------------------
        # The hub exists when anything consumes events (tracing/metrics via
        # ``observe``, or the kube audit stream via ``record_events``).
        # When it does, the runner publishes typed events INSTEAD of calling
        # the sinks directly and bridges replay the identical call sequence,
        # so run fingerprints match the direct path bit for bit.
        self.hub = None
        self.bus = None
        self.events: Optional[EventRecorder] = None
        if self.config.observe or self.config.record_events:
            from repro.obs.hub import ObservabilityHub

            self.hub = ObservabilityHub(
                ring_capacity=self.config.obs_ring_capacity,
                trace=self.config.observe,
                metrics=self.config.observe,
                trace_capacity=self.config.trace_capacity,
            )
            self.bus = self.hub.bus
            self.hub.attach_collector(self.collector)
            if self.config.record_events:
                self.events = EventRecorder(
                    capacity=self.config.event_capacity,
                    dedup_window_ms=self.config.event_dedup_window_ms,
                )
                self.hub.attach_recorder(self.events)
        self._wire_publishers()
        self._lc_label = type(lc_scheduler).__name__
        self._be_label = type(be_scheduler).__name__
        self.checker = None
        if self.config.validate:
            from repro.sim.validation import InvariantChecker

            self.checker = InvariantChecker(system)

    def _wire_publishers(self) -> None:
        """Hand the bus to every publisher (or reset it to None).

        Schedulers, managers, and the re-assurance mechanism are owned by
        the system builder and reused across runs, so the bus reference is
        always (re)assigned — a disabled run must not inherit a previous
        run's bus.
        """
        bus = self.bus
        self.lc_scheduler.bus = bus
        self.be_scheduler.bus = bus
        if self.reassurance is not None:
            self.reassurance.bus = bus
        if self.injector is not None:
            self.injector.bus = bus
        seen = set()
        for node in self.system.all_workers():
            manager = node.manager
            if manager is not None and id(manager) not in seen:
                seen.add(id(manager))
                manager.bus = bus

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> RunMetrics:
        cfg = self.config
        n_ticks = int(cfg.duration_ms / cfg.tick_ms)
        self._init_active_set()
        sample_gauges = self.hub is not None and cfg.observe
        prof = self.profiler
        if prof is None:
            for _ in range(n_ticks):
                now = self.clock.now_ms
                self._inject_arrivals(now + cfg.tick_ms)
                self._apply_failures(now)
                snapshot = self.storage.refresh(now)
                self._dispatch_lc(snapshot, now)
                self._dispatch_be(snapshot, now)
                self._deliver(now)
                self._step_nodes(now)
                self._run_reassurance(now)
                if self.checker is not None:
                    self.checker.check(now, self.collector.metrics)
                if self.collector.maybe_sample(now + cfg.tick_ms) and sample_gauges:
                    self._sample_gauges(now + cfg.tick_ms)
                self.clock.advance()
        else:
            for _ in range(n_ticks):
                now = self.clock.now_ms
                t = prof.start()
                self._inject_arrivals(now + cfg.tick_ms)
                prof.stop("arrivals", t)
                if self.injector is not None:
                    t = prof.start()
                    self._apply_failures(now)
                    prof.stop("failures", t)
                t = prof.start()
                snapshot = self.storage.refresh(now)
                prof.stop("refresh", t)
                t = prof.start()
                self._dispatch_lc(snapshot, now)
                prof.stop("lc", t)
                t = prof.start()
                self._dispatch_be(snapshot, now)
                prof.stop("be", t)
                t = prof.start()
                self._deliver(now)
                prof.stop("deliver", t)
                t = prof.start()
                self._step_nodes(now)
                prof.stop("step", t)
                t = prof.start()
                self._run_reassurance(now)
                prof.stop("reassure", t)
                t = prof.start()
                if self.checker is not None:
                    self.checker.check(now, self.collector.metrics)
                if self.collector.maybe_sample(now + cfg.tick_ms) and sample_gauges:
                    self._sample_gauges(now + cfg.tick_ms)
                prof.stop("metrics", t)
                self.clock.advance()
        if self.hub is not None and prof is not None:
            self.hub.record_stage_totals(self.clock.now_ms, prof.stage_ms())
        return self.collector.metrics

    def _sample_gauges(self, now_ms: float) -> None:
        """Push per-period gauges right after the collector closed a period."""
        self.hub.sample_period(
            now_ms,
            self.system,
            self.collector,
            detector=self.storage.detector,
            specs=list(self.catalog.values()),
        )

    def _init_active_set(self) -> None:
        """Prepare active-set stepping for this run.

        ``_worker_list`` fixes the canonical step order (cluster-ascending,
        worker order within a cluster — identical to the seed's nested
        loops).  A node is skipped only when it is verifiably inert: no
        queued or running work, *and* its manager declares ``tick`` a no-op
        on idle nodes (HRM and the static partitioner do; CERES keeps a
        control-loop timestamp per tick, so CERES runs step every node).
        """
        self._worker_list = list(self.system.all_workers())
        self._active = set(self._worker_list)
        self._idle_skip_ok = all(
            getattr(node.manager, "idle_tick_noop", False)
            for node in self._worker_list
        )

    # ------------------------------------------------------------------ #
    # stage 1: arrivals
    # ------------------------------------------------------------------ #
    def _inject_arrivals(self, until_ms: float) -> None:
        while (
            self._trace_cursor < len(self._trace)
            and self._trace[self._trace_cursor].time_ms < until_ms
        ):
            record = self._trace[self._trace_cursor]
            self._trace_cursor += 1
            spec = self.catalog.get(record.service)
            if spec is None:
                continue
            cluster_id = record.cluster_id % self.system.n_clusters
            request = ServiceRequest(
                spec=spec,
                origin_cluster=cluster_id,
                arrival_ms=record.time_ms,
            )
            self.system.cluster(cluster_id).receive(request)
            if self.bus is None:
                self.collector.on_arrival(request)
            else:
                self.bus.publish(
                    RequestArrived(
                        time_ms=record.time_ms,
                        request_id=request.request_id,
                        service=spec.name,
                        lc=request.is_lc,
                        origin_cluster=cluster_id,
                        request=request,
                    )
                )

    # ------------------------------------------------------------------ #
    # failures
    # ------------------------------------------------------------------ #
    def _node_visible(self, name: str, cluster_id: int) -> bool:
        assert self.injector is not None
        return not (
            self.injector.node_is_down(name)
            or self.injector.cluster_is_partitioned(cluster_id)
        )

    def _apply_failures(self, now_ms: float) -> None:
        if self.injector is None:
            return
        # crash/recover/partition/heal events are published by the injector
        # itself (it holds the bus); the kube bridge renders them.
        displaced = self.injector.apply(now_ms)
        for request in displaced:
            if request.state is RequestState.ABANDONED:
                # LC running on the crashed node when it went down: the
                # injector marked it abandoned; fold it into the abandon
                # counters exactly like a queue-patience drop.
                self.crash_abandoned += 1
                if self.bus is None:
                    self.collector.on_abandon(request)
                else:
                    self.bus.publish(
                        RequestAbandoned(
                            time_ms=now_ms,
                            request_id=request.request_id,
                            service=request.spec.name,
                            where="crash",
                            request=request,
                        )
                    )
            elif request.is_lc:
                # queued LC survives the crash: back to its origin master.
                self.system.cluster(request.origin_cluster).receive(request)
                if self.bus is not None:
                    self.bus.publish(
                        RequestRequeued(
                            time_ms=now_ms,
                            request_id=request.request_id,
                            origin_cluster=request.origin_cluster,
                            reschedules=request.reschedules,
                            request=request,
                        )
                    )
            else:
                if self.bus is not None:
                    self.bus.publish(
                        RequestEvicted(
                            time_ms=now_ms,
                            request_id=request.request_id,
                            service=request.spec.name,
                            node=request.target_node or "",
                            cause="crash",
                            request=request,
                        )
                    )
                self._requeue_evicted(request, now_ms)

    # ------------------------------------------------------------------ #
    # stage 2: LC dispatch (distributed, per master)
    # ------------------------------------------------------------------ #
    def _dispatch_lc(self, snapshot, now_ms: float) -> None:
        for cluster in self.system.clusters:
            if not cluster.lc_queue:
                continue
            requests = cluster.drain_lc()
            eligible = self.system.nearby_clusters(cluster.cluster_id)
            assignments = self.lc_scheduler.dispatch(
                cluster.cluster_id, requests, snapshot, eligible, now_ms
            )
            assigned_ids = {a.request.request_id for a in assignments}
            for assignment in assignments:
                self._ship(assignment, cluster.cluster_id, now_ms)
            for request in requests:
                if request.request_id not in assigned_ids:
                    cluster.lc_queue.append(request)

    # ------------------------------------------------------------------ #
    # stage 3: BE forwarding + central dispatch
    # ------------------------------------------------------------------ #
    def _dispatch_be(self, snapshot, now_ms: float) -> None:
        central = self.system.central_cluster_id
        if self._be_distributed:
            # DSACO-style: each cluster dispatches its own BE queue locally.
            for cluster in self.system.clusters:
                if not cluster.be_queue:
                    continue
                requests = cluster.drain_be()
                eligible = self.system.nearby_clusters(cluster.cluster_id)
                assignments = self.lc_or_be_distributed_dispatch(
                    cluster.cluster_id, requests, snapshot, eligible, now_ms
                )
                assigned = {a.request.request_id for a in assignments}
                for a in assignments:
                    self._ship(a, cluster.cluster_id, now_ms)
                for r in requests:
                    if r.request_id not in assigned:
                        cluster.be_queue.append(r)
            return

        # forward to central (paying WAN delay once)
        for cluster in self.system.clusters:
            if not cluster.be_queue:
                continue
            for request in cluster.drain_be():
                delay = self.system.one_way_delay_ms(cluster.cluster_id, central)
                request.network_delay_ms += delay
                request.state = RequestState.IN_FLIGHT
                self._central_inflight.schedule(now_ms + delay, request)
        self._central_be.extend(self._central_inflight.pop_due(now_ms))

        if not self._central_be:
            return
        requests = self._central_be
        self._central_be = []
        assignments = self.be_scheduler.dispatch_be(requests, snapshot, now_ms)
        assigned = {a.request.request_id for a in assignments}
        for assignment in assignments:
            self._ship(assignment, central, now_ms)
        for request in requests:
            if request.request_id not in assigned:
                self._central_be.append(request)

    def lc_or_be_distributed_dispatch(
        self, origin, requests, snapshot, eligible, now_ms
    ):
        """Distributed BE dispatch path (scheduler exposes the LC protocol)."""
        return self.be_scheduler.dispatch(
            origin, requests, snapshot, eligible, now_ms
        )

    # ------------------------------------------------------------------ #
    # shipping + delivery
    # ------------------------------------------------------------------ #
    def _ship(self, assignment, from_cluster: int, now_ms: float) -> None:
        request = assignment.request
        # propagation + payload serialisation over the (tc-shaped) link
        delay = self.system.transfer_ms(
            from_cluster, assignment.cluster_id, request.spec.payload_kb
        )
        request.network_delay_ms += delay
        request.dispatched_ms = now_ms
        request.state = RequestState.IN_FLIGHT
        if self.bus is not None:
            self.bus.publish(
                RequestScheduled(
                    time_ms=now_ms,
                    request_id=request.request_id,
                    service=request.spec.name,
                    origin_cluster=request.origin_cluster,
                    node=assignment.node_name,
                    cluster_id=assignment.cluster_id,
                    cost_ms=assignment.cost_ms,
                    ship_delay_ms=delay,
                    scheduler=(
                        self._lc_label if request.is_lc else self._be_label
                    ),
                    request=request,
                )
            )
        self._deliveries.schedule(
            now_ms + delay, (request, assignment.cluster_id, assignment.node_name)
        )

    def _deliver(self, now_ms: float) -> None:
        for request, cluster_id, node_name in self._deliveries.pop_due(now_ms):
            node = self.system.cluster(cluster_id).worker(node_name)
            node.enqueue(request, now_ms)
            self._active.add(node)
            if self.bus is not None:
                self.bus.publish(
                    RequestDelivered(
                        time_ms=now_ms,
                        request_id=request.request_id,
                        node=node_name,
                        request=request,
                    )
                )

    # ------------------------------------------------------------------ #
    # node execution
    # ------------------------------------------------------------------ #
    def _step_nodes(self, now_ms: float) -> None:
        """Step nodes holding work, in the canonical (seed) node order.

        Membership in ``_active`` is maintained incrementally — added on
        delivery, removed when a step leaves the node idle — so an idle
        fleet costs one set lookup per node instead of a full step.  The
        canonical iteration order is kept (rather than iterating the set)
        because step order is observable: it decides eviction-requeue and
        completion-callback order.
        """
        dt = self.config.tick_ms
        active = self._active
        skip_idle = self._idle_skip_ok
        injector = self.injector
        for node in self._worker_list:
            if skip_idle and node not in active:
                continue
            if injector is not None and injector.node_is_down(node.name):
                continue
            completed, evicted, abandoned = node.step(now_ms, dt)
            if skip_idle and not node.is_active:
                active.discard(node)
            if not (completed or evicted or abandoned):
                continue
            bus = self.bus
            for request in completed:
                if bus is None:
                    self.collector.on_completion(request)
                else:
                    bus.publish(
                        RequestCompleted(
                            time_ms=now_ms,
                            request_id=request.request_id,
                            service=request.spec.name,
                            lc=request.is_lc,
                            node=node.name,
                            latency_ms=request.total_latency_ms() or 0.0,
                            qos_met=bool(request.qos_met()),
                            request=request,
                        )
                    )
                if not request.is_lc and hasattr(
                    self.be_scheduler, "note_completion"
                ):
                    self.be_scheduler.note_completion(
                        request, node.capacity.cpu, node.capacity.memory
                    )
            for request in evicted:
                if bus is None:
                    self.collector.on_eviction(request)
                else:
                    bus.publish(
                        RequestEvicted(
                            time_ms=now_ms,
                            request_id=request.request_id,
                            service=request.spec.name,
                            node=node.name,
                            cause="preemption",
                            request=request,
                        )
                    )
                self._requeue_evicted(request, now_ms)
            for request in abandoned:
                if bus is None:
                    self.collector.on_abandon(request)
                else:
                    bus.publish(
                        RequestAbandoned(
                            time_ms=now_ms,
                            request_id=request.request_id,
                            service=request.spec.name,
                            where="node-queue",
                            request=request,
                        )
                    )

    def _requeue_evicted(self, request: ServiceRequest, now_ms: float) -> None:
        if not self.config.requeue_evicted_be:
            self.dropped_be += 1
            self._publish_drop(request, now_ms)
            return
        request.reschedules += 1
        if request.reschedules > self.config.max_be_reschedules:
            self.dropped_be += 1
            self._publish_drop(request, now_ms)
            return
        self.system.cluster(request.origin_cluster).receive(request)
        if self.bus is not None:
            self.bus.publish(
                RequestRequeued(
                    time_ms=now_ms,
                    request_id=request.request_id,
                    origin_cluster=request.origin_cluster,
                    reschedules=request.reschedules,
                    request=request,
                )
            )

    def _publish_drop(self, request: ServiceRequest, now_ms: float) -> None:
        if self.bus is not None:
            self.bus.publish(
                RequestDropped(
                    time_ms=now_ms,
                    request_id=request.request_id,
                    service=request.spec.name,
                    reschedules=request.reschedules,
                    request=request,
                )
            )

    # ------------------------------------------------------------------ #
    # HRM adjustment pass
    # ------------------------------------------------------------------ #
    def _run_reassurance(self, now_ms: float) -> None:
        if self.reassurance is None:
            return
        # only nodes in the active set can hold running LC work, so the
        # active-services map is built from it (idle nodes contribute
        # nothing to Algorithm 1 either way).
        active: Dict[str, Dict[str, ServiceSpec]] = {}
        active_set = self._active if self._idle_skip_ok else None
        for node in self._worker_list:
            if active_set is not None and node not in active_set:
                continue
            if not node.running:
                continue
            services: Dict[str, ServiceSpec] = {}
            for rr in node.running.values():
                if rr.request.is_lc:
                    services[rr.request.spec.name] = rr.request.spec
            if services:
                active[node.name] = services
        if active:
            self.reassurance.run(now_ms, active)
