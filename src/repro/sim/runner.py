"""Simulation runner: the dispatch–allocate–adjust loop of §3, end to end.

Per tick the runner's :class:`~repro.sim.pipeline.TickPipeline`:

1. injects trace arrivals into the origin cluster's master queues;
2. advances the failure injector (when one is configured);
3. refreshes the state storage (Prometheus/QoS-detector pushes);
4. runs the LC scheduler *on every master* (distributed dispatch) and ships
   assignments over the LAN/WAN with the topology's one-way delays;
5. forwards BE requests to the central cluster (unless the BE policy is
   distributed, as DSACO's is) and runs the central BE dispatcher;
6. delivers in-flight requests that arrived this tick into node queues;
7. steps every worker node (admission under the attached resource manager,
   processing, completion, eviction, abandonment);
8. runs the QoS re-assurance pass (Algorithm 1) when HRM is active;
9. samples period metrics (800 ms cadence).

The runner is deterministic for a fixed trace and seeds, and every layer
is :class:`~repro.sim.checkpoint.Checkpointable`: :meth:`checkpoint`
freezes the full simulation state at the current tick and
:meth:`from_checkpoint` (or :meth:`restore`) resumes it such that a
resumed run is bit-identical to a straight run in every RunMetrics field.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.topology import EdgeCloudSystem
from repro.core.state_storage import StateStorage
from repro.kube.events import EventRecorder
from repro.obs.emitter import BusEmitter, DirectEmitter
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    RunnerCheckpoint,
    component_state,
    restore_component,
)
from repro.sim.failures import FailureConfig, FailureInjector
from repro.hrm.reassurance import ReassuranceMechanism
from repro.metrics.collectors import PERIOD_MS, PeriodCollector, RunMetrics
from repro.sim.engine import TICK_MS, Clock, DeliveryQueue
from repro.sim.pipeline import (
    ProfiledPipeline,
    SimContext,
    TickPipeline,
    build_stages,
)
from repro.sim.request import (
    ServiceRequest,
    request_id_state,
    restore_request_id_state,
)
from repro.workloads.spec import ServiceSpec
from repro.workloads.trace import TraceRecord

__all__ = ["SimulationRunner", "RunnerConfig"]


@dataclass
class RunnerConfig:
    duration_ms: float = 60_000.0
    tick_ms: float = TICK_MS
    period_ms: float = PERIOD_MS
    state_refresh_ms: float = 100.0
    #: evicted BE requests re-enter scheduling at their origin cluster.
    requeue_evicted_be: bool = True
    #: hard cap on BE requeue cycles before a request is dropped (safety).
    max_be_reschedules: int = 20
    #: optional failure injection (node crashes / WAN partitions).
    failures: Optional[FailureConfig] = None
    #: record a kubectl-get-events-style audit stream (small overhead).
    record_events: bool = False
    #: kube event recorder bounds (only read when ``record_events``).
    event_capacity: int = 1000
    event_dedup_window_ms: float = 1_000.0
    #: enable the unified observability subsystem (:mod:`repro.obs`):
    #: lifecycle events on a bus, request span traces, metric registry.
    observe: bool = False
    #: event-bus ring size (retrospective queries; publishes never block).
    obs_ring_capacity: int = 4096
    #: max traces held in memory (oldest finished evicted first).
    trace_capacity: int = 100_000
    #: run the invariant checker every tick (a few % overhead; CI uses it).
    validate: bool = False
    #: run the runtime conservation-law checker every tick
    #: (:mod:`repro.sim.invariants`): request conservation, node resource
    #: accounting, D-VPA limit sums, snapshot coherence, and DSS-LC
    #: dispatch-capacity audits against an independent scalar oracle.
    check_invariants: bool = False
    #: ``strict`` raises :class:`~repro.sim.invariants.InvariantViolationError`
    #: on the first violation; ``soft`` counts + emits and keeps running.
    invariant_mode: str = "strict"
    #: time each pipeline stage with :class:`repro.perf.StageProfiler`
    #: (exposed as ``runner.profiler``; ~0.1 % overhead).
    profile: bool = False
    #: partition clusters into this many shards and run the per-cluster
    #: tick work (refresh, per-master DSS-LC, node stepping, re-assurance
    #: collection) across a worker pool with a deterministic merge
    #: barrier (:mod:`repro.sim.sharding`).  0 disables sharding entirely;
    #: 1 runs the sharded code path with a single shard (useful to pin
    #: merge semantics).  RunMetrics are bit-identical either way.
    shards: int = 0
    #: worker-pool flavor for sharded execution: ``process`` (default),
    #: ``thread``, or ``serial`` (sharded code path, in-process).
    parallel_backend: str = "process"


class SimulationRunner:
    """Wires workload, system, schedulers, managers, and metrics together."""

    def __init__(
        self,
        system: EdgeCloudSystem,
        trace: Sequence[TraceRecord],
        catalog: Sequence[ServiceSpec],
        lc_scheduler,
        be_scheduler,
        *,
        config: Optional[RunnerConfig] = None,
        state_storage: Optional[StateStorage] = None,
        reassurance: Optional[ReassuranceMechanism] = None,
    ) -> None:
        self.system = system
        self.config = config or RunnerConfig()
        self.catalog = {s.name: s for s in catalog}
        self.lc_scheduler = lc_scheduler
        self.be_scheduler = be_scheduler
        self.reassurance = reassurance
        self.storage = state_storage or StateStorage(
            system, refresh_period_ms=self.config.state_refresh_ms
        )
        self.collector = PeriodCollector(system, period_ms=self.config.period_ms)
        self.clock = Clock(self.config.tick_ms)
        self.injector: Optional[FailureInjector] = None
        if self.config.failures is not None:
            self.injector = FailureInjector(system, self.config.failures)
            self.storage.node_filter = self._node_visible
        self.profiler: Optional["StageProfiler"] = None
        if self.config.profile:
            from repro.perf.profiler import StageProfiler

            self.profiler = StageProfiler()
        # --- observability ------------------------------------------------
        # The hub exists when anything consumes events (tracing/metrics via
        # ``observe``, or the kube audit stream via ``record_events``).
        # When it does, the emitter publishes typed events INSTEAD of
        # calling the sinks directly and bridges replay the identical call
        # sequence, so run fingerprints match the direct path bit for bit.
        self.hub = None
        self.bus = None
        self.events: Optional[EventRecorder] = None
        if self.config.observe or self.config.record_events:
            from repro.obs.hub import ObservabilityHub

            self.hub = ObservabilityHub(
                ring_capacity=self.config.obs_ring_capacity,
                trace=self.config.observe,
                metrics=self.config.observe,
                trace_capacity=self.config.trace_capacity,
            )
            self.bus = self.hub.bus
            self.hub.attach_collector(self.collector)
            if self.config.record_events:
                self.events = EventRecorder(
                    capacity=self.config.event_capacity,
                    dedup_window_ms=self.config.event_dedup_window_ms,
                )
                self.hub.attach_recorder(self.events)
        self.emitter = (
            BusEmitter(self.bus)
            if self.bus is not None
            else DirectEmitter(self.collector)
        )
        self._wire_publishers()
        self.checker = None
        if self.config.validate:
            from repro.sim.validation import InvariantChecker

            self.checker = InvariantChecker(system)
        self.invariants = None
        if self.config.check_invariants:
            from repro.sim.invariants import RuntimeInvariantChecker

            self.invariants = RuntimeInvariantChecker(
                mode=self.config.invariant_mode
            )
        # The audit feed is (re)assigned unconditionally: schedulers are
        # reused across runners by the system builders, so a checker-off
        # run must not inherit (or keep growing) a previous run's log.
        if hasattr(lc_scheduler, "audit_log"):
            lc_scheduler.audit_log = (
                [] if self.config.check_invariants else None
            )
        # --- tick pipeline ------------------------------------------------
        self.ctx = SimContext(
            system=system,
            config=self.config,
            catalog=self.catalog,
            clock=self.clock,
            collector=self.collector,
            storage=self.storage,
            lc_scheduler=lc_scheduler,
            be_scheduler=be_scheduler,
            emit=self.emitter,
            deliveries=DeliveryQueue(),  # payload: (request, cluster, node)
            central_inflight=DeliveryQueue(),  # payload: request
            trace=sorted(trace, key=lambda r: r.time_ms),
            lc_label=type(lc_scheduler).__name__,
            be_label=type(be_scheduler).__name__,
            be_distributed=getattr(be_scheduler, "distributed", False),
            reassurance=reassurance,
            injector=self.injector,
            checker=self.checker,
            invariants=self.invariants,
            hub=self.hub,
            sample_gauges=self.hub is not None and self.config.observe,
        )
        self.pipeline = TickPipeline(
            build_stages(
                include_failures=self.injector is not None,
                include_invariants=self.invariants is not None,
            )
        )
        # --- sharded execution (opt-in) -----------------------------------
        # The coordinator holds no simulation state; checkpoints move
        # freely between shard counts and the serial pipeline.
        self.coordinator = None
        if self.config.shards >= 1:
            from repro.sim.sharding import ShardCoordinator

            self.coordinator = ShardCoordinator(
                system, self.config.shards, self.config.parallel_backend
            )
            self.coordinator.install(self.pipeline)

    def _wire_publishers(self) -> None:
        """Hand the bus + emitter to every publisher exactly once.

        Schedulers, managers, and the re-assurance mechanism are owned by
        the system builder and reused across runs, so the references are
        always (re)assigned — a disabled run must not inherit a previous
        run's bus.  Publishers are deduplicated by identity (a dual-role
        scheduler like DSACO appears as both LC and BE; one manager object
        usually serves every worker), making the wiring idempotent.
        """
        publishers: List[Any] = [self.lc_scheduler, self.be_scheduler]
        if self.reassurance is not None:
            publishers.append(self.reassurance)
        if self.injector is not None:
            publishers.append(self.injector)
        for node in self.system.all_workers():
            if node.manager is not None:
                publishers.append(node.manager)
        seen = set()
        for publisher in publishers:
            if id(publisher) in seen:
                continue
            seen.add(id(publisher))
            publisher.bus = self.bus
            publisher.emitter = self.emitter

    # ------------------------------------------------------------------ #
    # delegates — the live run state lives on the SimContext
    # ------------------------------------------------------------------ #
    @property
    def _deliveries(self) -> DeliveryQueue:
        return self.ctx.deliveries

    @property
    def _central_inflight(self) -> DeliveryQueue:
        return self.ctx.central_inflight

    @property
    def _central_be(self) -> List[ServiceRequest]:
        return self.ctx.central_be

    @property
    def _trace(self) -> Sequence[TraceRecord]:
        return self.ctx.trace

    @property
    def _trace_cursor(self) -> int:
        return self.ctx.trace_cursor

    @property
    def _be_distributed(self) -> bool:
        return self.ctx.be_distributed

    @property
    def dropped_be(self) -> int:
        return self.ctx.dropped_be

    @property
    def crash_abandoned(self) -> int:
        """LC requests lost while running on a crashed node (abandoned)."""
        return self.ctx.crash_abandoned

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down shard worker pools (idempotent; pools are lazily
        re-created if the runner runs again)."""
        coordinator = getattr(self, "coordinator", None)
        if coordinator is not None:
            coordinator.close()

    def shard_stats(self) -> Optional[Dict[str, Any]]:
        """Per-shard timing/plan introspection (None when not sharded)."""
        coordinator = getattr(self, "coordinator", None)
        return None if coordinator is None else coordinator.stats()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, until_ms: Optional[float] = None) -> RunMetrics:
        """Run to ``until_ms`` (default: the configured duration).

        ``run`` may be called repeatedly — each call continues from the
        current clock, which is how ``checkpoint``-at-t works: run to t,
        freeze, keep running (or resume elsewhere).
        """
        cfg = self.config
        end_ms = cfg.duration_ms if until_ms is None else min(
            until_ms, cfg.duration_ms
        )
        n_ticks = int(end_ms / cfg.tick_ms) - self.clock.tick_count
        self._init_active_set()
        pipeline = self.pipeline
        if self.profiler is not None:
            pipeline = ProfiledPipeline(pipeline, self.profiler)
        ctx = self.ctx
        clock = self.clock
        for _ in range(max(0, n_ticks)):
            ctx.now_ms = clock.now_ms
            pipeline.run_tick(ctx)
            clock.advance()
        if self.hub is not None and self.profiler is not None:
            self.hub.record_stage_totals(clock.now_ms, self.profiler.stage_ms())
        return self.collector.metrics

    def _init_active_set(self) -> None:
        """Prepare active-set stepping for this run.

        ``worker_list`` fixes the canonical step order (cluster-ascending,
        worker order within a cluster — identical to the seed's nested
        loops).  A node is skipped only when it is verifiably inert: no
        queued or running work, *and* its manager declares ``tick`` a no-op
        on idle nodes (HRM and the static partitioner do; CERES keeps a
        control-loop timestamp per tick, so CERES runs step every node).
        Starting from the full set is always safe: idle nodes fall out of
        the set after their first no-op step.
        """
        ctx = self.ctx
        ctx.worker_list = list(self.system.all_workers())
        ctx.active = set(ctx.worker_list)
        ctx.idle_skip_ok = all(
            getattr(node.manager, "idle_tick_noop", False)
            for node in ctx.worker_list
        )

    # ------------------------------------------------------------------ #
    # failures
    # ------------------------------------------------------------------ #
    def _node_visible(self, name: str, cluster_id: int) -> bool:
        assert self.injector is not None
        return not (
            self.injector.node_is_down(name)
            or self.injector.cluster_is_partitioned(cluster_id)
        )

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    def _checkpoint_components(self) -> Dict[str, Any]:
        """Every stateful component, each exactly once.

        Shared objects (DSACO serving both roles, one manager across all
        workers, the detector referenced by storage/HRM/re-assurance) are
        snapshotted at one canonical slot; the single-deepcopy bundle keeps
        any remaining cross-references aliased.
        """
        components: Dict[str, Any] = {
            "collector": self.collector,
            "storage": self.storage,
        }
        if self.storage.detector is not None:
            components["detector"] = self.storage.detector
        components["lc_scheduler"] = self.lc_scheduler
        if self.be_scheduler is not self.lc_scheduler:
            components["be_scheduler"] = self.be_scheduler
        if self.reassurance is not None:
            components["reassurance"] = self.reassurance
        if self.injector is not None:
            components["injector"] = self.injector
        seen = set()
        index = 0
        for node in self.system.all_workers():
            manager = node.manager
            if manager is None or id(manager) in seen:
                continue
            seen.add(id(manager))
            components[f"manager_{index}"] = manager
            index += 1
        return components

    def checkpoint(self) -> RunnerCheckpoint:
        """Freeze the full simulation state at the current tick.

        Call between ticks (i.e. after :meth:`run` returned).  The bundle
        is deepcopied in one pass so aliasing between layers is preserved;
        the live run is never mutated.
        """
        ctx = self.ctx
        state: Dict[str, Any] = {
            "tick_ms": self.config.tick_ms,
            "trace_len": len(ctx.trace),
            "request_ids": request_id_state(),
            "clock": self.clock.snapshot_state(),
            "runner": {
                "trace_cursor": ctx.trace_cursor,
                "central_be": ctx.central_be,
                "dropped_be": ctx.dropped_be,
                "crash_abandoned": ctx.crash_abandoned,
                "warned_remap": ctx.warned_remap,
                "deliveries": ctx.deliveries.snapshot_state(),
                "central_inflight": ctx.central_inflight.snapshot_state(),
            },
            "components": {
                name: component_state(obj)
                for name, obj in self._checkpoint_components().items()
            },
            "clusters": [
                cluster.snapshot_state() for cluster in self.system.clusters
            ],
            "nodes": {
                worker.name: worker.snapshot_state()
                for worker in self.system.all_workers()
            },
        }
        return RunnerCheckpoint(
            state=copy.deepcopy(state),
            version=CHECKPOINT_VERSION,
            meta={"now_ms": self.clock.now_ms},
        )

    def restore(self, checkpoint: RunnerCheckpoint) -> None:
        """Install a checkpoint into this (freshly built) runner.

        The runner must have been constructed with the same topology,
        stack, and trace as the one that produced the checkpoint — the
        component layout is validated, semantic equivalence is the
        caller's contract.  The checkpoint itself is never consumed: the
        state is deepcopied on the way in, so one checkpoint can seed any
        number of forks.
        """
        if checkpoint.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {checkpoint.version} "
                f"!= supported {CHECKPOINT_VERSION}"
            )
        state = copy.deepcopy(checkpoint.state)
        if state["tick_ms"] != self.config.tick_ms:
            raise ValueError(
                f"checkpoint tick_ms {state['tick_ms']} != "
                f"runner tick_ms {self.config.tick_ms}"
            )
        ctx = self.ctx
        if state["trace_len"] != len(ctx.trace):
            raise ValueError(
                f"checkpoint was taken against a {state['trace_len']}-record "
                f"trace; this runner has {len(ctx.trace)} records"
            )
        components = self._checkpoint_components()
        saved = state["components"]
        if set(saved) != set(components):
            missing = sorted(set(saved) ^ set(components))
            raise ValueError(
                "checkpoint does not match this system configuration "
                f"(component mismatch: {missing})"
            )
        restore_request_id_state(state["request_ids"])
        self.clock.restore_state(state["clock"])
        runner_state = state["runner"]
        ctx.trace_cursor = runner_state["trace_cursor"]
        ctx.central_be = runner_state["central_be"]
        ctx.dropped_be = runner_state["dropped_be"]
        ctx.crash_abandoned = runner_state["crash_abandoned"]
        ctx.warned_remap = runner_state["warned_remap"]
        ctx.deliveries.restore_state(runner_state["deliveries"])
        ctx.central_inflight.restore_state(runner_state["central_inflight"])
        for name, obj in components.items():
            restore_component(obj, saved[name])
        clusters = state["clusters"]
        if len(clusters) != len(self.system.clusters):
            raise ValueError("checkpoint cluster count mismatch")
        for cluster, cluster_state in zip(self.system.clusters, clusters):
            cluster.restore_state(cluster_state)
        nodes = state["nodes"]
        for worker in self.system.all_workers():
            if worker.name not in nodes:
                raise ValueError(f"checkpoint missing node {worker.name!r}")
            worker.restore_state(nodes[worker.name])
        self._init_active_set()

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: RunnerCheckpoint,
        system: EdgeCloudSystem,
        trace: Sequence[TraceRecord],
        catalog: Sequence[ServiceSpec],
        lc_scheduler,
        be_scheduler,
        *,
        config: Optional[RunnerConfig] = None,
        state_storage: Optional[StateStorage] = None,
        reassurance: Optional[ReassuranceMechanism] = None,
    ) -> "SimulationRunner":
        """Build a fresh runner over an identically-built system and
        install ``checkpoint`` into it."""
        runner = cls(
            system,
            trace,
            catalog,
            lc_scheduler,
            be_scheduler,
            config=config,
            state_storage=state_storage,
            reassurance=reassurance,
        )
        runner.restore(checkpoint)
        return runner
