"""Sharded parallel multi-cluster execution.

Tango's per-cluster control loops are independent by construction: each
master runs DSS-LC on its own queue (§5.2, Alg. 2), each node's HRM
regulates locally (§4), and only DCG-BE is centralized.  This module
exploits that shape: clusters are partitioned into *shards* and the
embarrassingly-parallel per-cluster portion of each tick — snapshot
refresh, per-master LC dispatch, node stepping, and the re-assurance
active-set collection — runs across a worker pool, with a deterministic
merge barrier before anything centralized (DCG-BE, metrics, invariants).

The determinism contract, relied on throughout and pinned by the
equivalence suite:

* :func:`partition_clusters` is contiguous over the *sorted* cluster ids,
  so concatenating per-shard results in fixed shard order reproduces the
  canonical (cluster-ascending) order — merge order never depends on
  worker completion order;
* DSS-LC's ρ(·) random stream is **per master** (seeded
  ``(seed, cluster_id)``), so dispatch rounds commute across masters;
* all observable side effects produced inside a worker (assignments, RNG
  positions, counters, audit records, emitter calls) are shipped back as
  data and re-applied by the parent in canonical order — workers never
  touch the run's collector, bus, or queues directly.

Three pool flavors (``RunnerConfig.parallel_backend``): ``process``
(default; per-tick payloads are pickled to a ``multiprocessing`` pool),
``thread``, and ``serial`` (the sharded code path run in-process — what
the equivalence suite uses to pin merge semantics cheaply).  Because the
merge is deterministic, all three produce bit-identical RunMetrics.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.emitter import BufferingEmitter
from repro.scheduling.base import Assignment, group_by_type
from repro.scheduling.dss_lc import DSSLCConfig, DSSLCScheduler
from repro.sim.pipeline import (
    LCDispatchStage,
    ReassureStage,
    RefreshStage,
    SimContext,
    Stage,
    StepNodesStage,
    TickPipeline,
    requeue_evicted,
    ship,
)
from repro.workloads.spec import ServiceSpec

__all__ = [
    "partition_clusters",
    "ShardPlan",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
    "run_lc_shard",
    "ShardedLCDispatchStage",
    "ShardedRefreshStage",
    "ShardedStepStage",
    "ShardedReassureStage",
    "ShardCoordinator",
]

logger = logging.getLogger(__name__)

BACKENDS = ("process", "thread", "serial")


# ---------------------------------------------------------------------- #
# partitioner
# ---------------------------------------------------------------------- #
def partition_clusters(
    cluster_ids: Sequence[int], n_shards: int
) -> List[List[int]]:
    """Contiguous, balanced shards over the sorted cluster ids.

    Properties the equivalence proof rests on (property-tested in
    ``tests/test_shard_partitioner.py``):

    * every cluster appears in exactly one shard;
    * the result depends only on the *set* of ids (permutation-stable);
    * concatenating the shards in shard order reproduces the ascending id
      order, so a merge in fixed shard order IS the canonical order;
    * shard sizes differ by at most one.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    ids = sorted(set(cluster_ids))
    if not ids:
        return []
    n_shards = min(n_shards, len(ids))
    base, extra = divmod(len(ids), n_shards)
    shards: List[List[int]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(ids[start : start + size])
        start += size
    return shards


@dataclass
class ShardPlan:
    """A fixed cluster→shard assignment for one topology."""

    shards: List[List[int]]
    shard_of: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.shard_of:
            self.shard_of = {
                cid: i for i, members in enumerate(self.shards) for cid in members
            }

    @classmethod
    def build(cls, cluster_ids: Sequence[int], n_shards: int) -> "ShardPlan":
        return cls(shards=partition_clusters(cluster_ids, n_shards))

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def split_nodes(self, worker_list: Sequence[Any]) -> List[List[Any]]:
        """Group nodes by their cluster's shard, preserving node order.

        ``worker_list`` is cluster-ascending and shards are contiguous
        cluster ranges, so concatenating the slices in shard order
        reproduces ``worker_list`` exactly.
        """
        slices: List[List[Any]] = [[] for _ in self.shards]
        for node in worker_list:
            slices[self.shard_of[node.cluster_id]].append(node)
        return slices


# ---------------------------------------------------------------------- #
# executors
# ---------------------------------------------------------------------- #
class ShardExecutor:
    """Maps a function over payloads; results come back in payload order
    (never completion order), which is half the determinism contract."""

    backend = "serial"

    def run_tasks(self, fn: Callable, payloads: Sequence[Any]) -> List[Any]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class SerialShardExecutor(ShardExecutor):
    """Runs the sharded code path in-process, shard by shard."""

    def run_tasks(self, fn: Callable, payloads: Sequence[Any]) -> List[Any]:
        return [fn(p) for p in payloads]


class ThreadShardExecutor(ShardExecutor):
    """Thread pool; lazily created, re-creatable after :meth:`close`."""

    backend = "thread"

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def run_tasks(self, fn: Callable, payloads: Sequence[Any]) -> List[Any]:
        if len(payloads) <= 1:
            return [fn(p) for p in payloads]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-shard"
            )
        futures = [self._pool.submit(fn, p) for p in payloads]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessShardExecutor(ShardExecutor):
    """One single-process pool per shard slot (fork when available).

    Payload *i* always lands in process *i*, so each worker's cached
    scheduler keeps its solver arenas warm across ticks — a shared pool
    would scatter a shard's ticks over arbitrary processes and rebuild
    the arenas every time.  Payload functions must be module-level and
    payloads picklable.
    """

    backend = "process"

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, max_workers)
        self._pools: Optional[List[ProcessPoolExecutor]] = None

    def _ensure_pools(self) -> List[ProcessPoolExecutor]:
        if self._pools is None:
            import multiprocessing

            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                mp_context = multiprocessing.get_context()
            self._pools = [
                ProcessPoolExecutor(max_workers=1, mp_context=mp_context)
                for _ in range(self.max_workers)
            ]
        return self._pools

    def run_tasks(self, fn: Callable, payloads: Sequence[Any]) -> List[Any]:
        if len(payloads) <= 1:
            return [fn(p) for p in payloads]
        pools = self._ensure_pools()
        futures = [
            pools[getattr(p, "shard_index", i) % len(pools)].submit(fn, p)
            for i, p in enumerate(payloads)
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None


def make_executor(backend: str, max_workers: int) -> ShardExecutor:
    if backend == "serial":
        return SerialShardExecutor()
    if backend == "thread":
        return ThreadShardExecutor(max_workers)
    if backend == "process":
        return ProcessShardExecutor(max_workers)
    raise ValueError(f"unknown parallel backend {backend!r}; want {BACKENDS}")


# ---------------------------------------------------------------------- #
# LC dispatch payloads + worker entry point
# ---------------------------------------------------------------------- #
@dataclass
class _ReqLite:
    """Stand-in shipped to LC shard workers instead of the live request.

    Carries exactly what Alg. 2 reads: grouping key and solver sizing come
    from ``spec``, every ρ(·) policy orders on ``(request_id, arrival_ms,
    spec)``.  Workers return *indices* into the original queue, so the
    live objects never cross the process boundary.
    """

    request_id: int
    arrival_ms: float
    spec: ServiceSpec


@dataclass
class _SnapshotView:
    """Minimal SystemSnapshot stand-in for one master's dispatch: the
    eligible-node list is pre-resolved by the parent."""

    time_ms: float
    delay_ms: List[List[float]]
    nodes: List[Any]

    def nodes_of(self, cluster_ids: Optional[List[int]] = None) -> List[Any]:
        return self.nodes


@dataclass
class _MasterPayload:
    cluster_id: int
    requests: List[_ReqLite]
    nodes: List[Any]
    #: pre-resolved re-assurance minima, ``{service: (r_cpu, r_mem)}``.
    minima: Dict[str, tuple]
    #: the master's ρ(·) RNG position (None for stateless policies).
    rng_state: Optional[dict]


@dataclass
class _ShardPayload:
    shard_index: int
    now_ms: float
    snapshot_time_ms: float
    delay_ms: List[List[float]]
    config: DSSLCConfig
    audit: bool
    masters: List[_MasterPayload]


@dataclass
class _MasterResult:
    cluster_id: int
    #: (request index, node name, cluster id, cost ms) per assignment.
    assigned: List[Tuple[int, str, int, float]]
    rng_state: Optional[dict]
    case2_delta: int
    flow_cost_ms: float
    decision_ms: float
    audit: List[Any]
    #: worker CPU seconds spent on this master — feeds the parent's
    #: cost-balanced shard assignment (never the simulation itself).
    busy_s: float = 0.0


@dataclass
class _ShardResult:
    shard_index: int
    masters: List[_MasterResult]
    #: worker-side CPU seconds (``time.process_time`` delta) — the honest
    #: parallel-speedup signal on core-starved CI boxes, where wall time
    #: only measures contention.
    busy_s: float


#: per-thread (and therefore per-process, in a process pool) scheduler
#: clone, kept warm across ticks so solver arenas are recycled exactly as
#: the serial scheduler recycles them.  Thread-local because the thread
#: backend runs :func:`run_lc_shard` concurrently in one process.
_worker_state = threading.local()


def _worker_scheduler(config: DSSLCConfig) -> DSSLCScheduler:
    scheduler = getattr(_worker_state, "scheduler", None)
    if scheduler is None or scheduler.config != config:
        scheduler = DSSLCScheduler(config)
        _worker_state.scheduler = scheduler
    # Caches are keyed by node-list identity; under the process backend
    # every tick unpickles fresh node lists, so pinned entries can only
    # accumulate — drop them before they become a leak (pure accelerators,
    # rebuilding is always safe).
    if len(scheduler._minima_cache) > 4096:
        scheduler._minima_cache.clear()
        scheduler._node_array_cache.clear()
    scheduler.decision_latencies_ms.clear()
    return scheduler


def run_lc_shard(payload: _ShardPayload) -> _ShardResult:
    """Worker entry: run Alg. 2 for every master in the shard, in order.

    Runs on a per-worker scheduler clone built from the shipped config
    (solver arenas and caches are pure accelerators, kept warm across
    ticks; the only sequential state is the per-master ρ(·) stream, which
    is installed from and returned to the parent).  Module-level so a
    process pool can pickle it.
    """
    t0 = time.process_time()
    scheduler = _worker_scheduler(payload.config)
    results: List[_MasterResult] = []
    for master in payload.masters:
        m0 = time.process_time()
        policy = scheduler.priority_for(master.cluster_id)
        if master.rng_state is not None and hasattr(policy, "rng"):
            policy.rng.bit_generator.state = master.rng_state
        scheduler._minima_override = master.minima
        scheduler.audit_log = [] if payload.audit else None
        view = _SnapshotView(
            payload.snapshot_time_ms, payload.delay_ms, master.nodes
        )
        case2_before = scheduler.case2_rounds
        assignments = scheduler.dispatch(
            master.cluster_id, master.requests, view, (), payload.now_ms
        )
        index_of = {id(r): i for i, r in enumerate(master.requests)}
        results.append(
            _MasterResult(
                cluster_id=master.cluster_id,
                assigned=[
                    (index_of[id(a.request)], a.node_name, a.cluster_id, a.cost_ms)
                    for a in assignments
                ],
                rng_state=(
                    policy.rng.bit_generator.state
                    if hasattr(policy, "rng")
                    else None
                ),
                case2_delta=scheduler.case2_rounds - case2_before,
                flow_cost_ms=scheduler._flow_cost_round,
                decision_ms=scheduler.decision_latencies_ms[-1],
                audit=scheduler.audit_log or [],
                busy_s=time.process_time() - m0,
            )
        )
    return _ShardResult(
        payload.shard_index, results, time.process_time() - t0
    )


# ---------------------------------------------------------------------- #
# sharded stages
# ---------------------------------------------------------------------- #
class ShardedLCDispatchStage(Stage):
    """Per-master DSS-LC fanned out across shards, merged canonically.

    The parent drains every master queue, pre-resolves what only it holds
    (eligible-node snapshot slices, re-assurance minima, ρ(·) RNG
    positions), ships per-shard payloads, and at the barrier re-applies
    each master's results — RNG position, counters, audit records,
    ``dispatch_round`` emission, shipping, requeue — in canonical cluster
    order, reproducing the serial event stream byte for byte.

    Non-DSS-LC schedulers (the baseline stacks) fall back to the serial
    stage: their dispatch is not shard-isolated, and they are not the
    scale bottleneck.
    """

    name = "lc"

    def __init__(
        self,
        plan: ShardPlan,
        executor: ShardExecutor,
        fallback: LCDispatchStage,
    ) -> None:
        self.plan = plan
        self.executor = executor
        self.fallback = fallback
        # --- per-shard timing (perf introspection, not fingerprinted) ---
        self.ticks = 0
        #: Σ over ticks of max-over-shards worker CPU time: the stage's
        #: critical path under perfect parallelism.
        self.critical_busy_s = 0.0
        #: Σ worker CPU time across all shards (the serial-equivalent work).
        self.total_busy_s = 0.0
        #: parent-side payload build + merge time (the sharding tax).
        self.overhead_s = 0.0
        self.shard_busy_s: Dict[int, float] = {}
        #: sticky, cost-balanced shard assignment: masters keep their
        #: shard (preserving worker-side solver-arena affinity) until the
        #: predicted-cost skew under the current assignment exceeds
        #: ``rebalance_threshold`` × the mean shard cost, then a fresh LPT
        #: assignment is computed.  Cost per master is an EWMA of the
        #: worker-measured CPU seconds, so heterogeneous solve costs —
        #: which queue lengths alone cannot see — balance out too.  The
        #: merge keys results by cluster id, so which shard solves which
        #: master is free to vary without touching the determinism
        #: contract (timing feeds the *assignment* only, never the
        #: simulation).  Set to None to pin the static contiguous plan.
        self.rebalance_threshold: Optional[float] = 1.15
        self._sticky: Dict[int, int] = dict(plan.shard_of)
        #: EWMA of worker CPU cost per queued request, per master.
        self._cost: Dict[int, float] = {}
        self.rebalances = 0

    def _predicted(self, cluster_id: int, n_requests: int) -> float:
        return self._cost.get(cluster_id, 1.0) * n_requests

    def _assign_shards(self, work: List[tuple]) -> Dict[int, int]:
        """Master→shard assignment for this tick's drained queues.

        The sticky map starts from the static contiguous plan; the LPT
        recompute orders by (predicted cost desc, cluster id) with
        (load, shard index) tie-breaks, so given the same cost estimates
        the assignment is a pure function of the queue state.
        """
        threshold = self.rebalance_threshold
        if threshold is None:
            return self.plan.shard_of
        n = self.plan.n_shards
        weights = [
            self._predicted(cluster.cluster_id, len(requests))
            for cluster, requests in work
        ]
        loads = [0.0] * n
        for (cluster, _), weight in zip(work, weights):
            loads[self._sticky[cluster.cluster_id]] += weight
        total = sum(loads)
        if total <= 0 or max(loads) * n <= threshold * total:
            return self._sticky
        order = sorted(
            range(len(work)),
            key=lambda i: (-weights[i], work[i][0].cluster_id),
        )
        loads = [0.0] * n
        shard_of = dict(self._sticky)
        for i in order:
            target = min(range(n), key=lambda s: (loads[s], s))
            shard_of[work[i][0].cluster_id] = target
            loads[target] += weights[i]
        self._sticky = shard_of
        self.rebalances += 1
        return shard_of

    def _note_cost(self, cluster_id: int, n_requests: int, busy_s: float) -> None:
        if n_requests <= 0 or busy_s <= 0.0:
            return
        per_req = busy_s / n_requests
        prev = self._cost.get(cluster_id)
        self._cost[cluster_id] = (
            per_req if prev is None else 0.7 * prev + 0.3 * per_req
        )

    def run(self, ctx: SimContext) -> None:
        scheduler = ctx.lc_scheduler
        if not isinstance(scheduler, DSSLCScheduler):
            self.fallback.run(ctx)
            return
        now_ms = ctx.now_ms
        t_build = time.perf_counter()
        work: List[tuple] = []  # (cluster, drained requests), canonical order
        for cluster in ctx.system.clusters:
            if cluster.lc_queue:
                work.append((cluster, cluster.drain_lc()))
        if not work:
            return
        snapshot = ctx.snapshot
        audit = scheduler.audit_log is not None
        per_shard: List[List[_MasterPayload]] = [
            [] for _ in range(self.plan.n_shards)
        ]
        shard_of = self._assign_shards(work)
        for cluster, requests in work:
            eligible = ctx.system.nearby_clusters(cluster.cluster_id)
            nodes = snapshot.nodes_of(list(eligible))
            minima: Dict[str, tuple] = {}
            if nodes:
                for service, group in group_by_type(requests).items():
                    minima[service] = scheduler.minima_for(group[0].spec, nodes)
            policy = scheduler.priority_for(cluster.cluster_id)
            per_shard[shard_of[cluster.cluster_id]].append(
                _MasterPayload(
                    cluster_id=cluster.cluster_id,
                    requests=[
                        _ReqLite(r.request_id, r.arrival_ms, r.spec)
                        for r in requests
                    ],
                    nodes=nodes,
                    minima=minima,
                    rng_state=(
                        policy.rng.bit_generator.state
                        if hasattr(policy, "rng")
                        else None
                    ),
                )
            )
        payloads = [
            _ShardPayload(
                shard_index=i,
                now_ms=now_ms,
                snapshot_time_ms=snapshot.time_ms,
                delay_ms=snapshot.delay_ms,
                config=scheduler.config,
                audit=audit,
                masters=masters,
            )
            for i, masters in enumerate(per_shard)
            if masters
        ]
        build_s = time.perf_counter() - t_build

        results = self.executor.run_tasks(run_lc_shard, payloads)

        t_merge = time.perf_counter()
        self.ticks += 1
        tick_max_busy = 0.0
        by_cluster: Dict[int, _MasterResult] = {}
        for shard in results:
            self.shard_busy_s[shard.shard_index] = (
                self.shard_busy_s.get(shard.shard_index, 0.0) + shard.busy_s
            )
            self.total_busy_s += shard.busy_s
            tick_max_busy = max(tick_max_busy, shard.busy_s)
            for master in shard.masters:
                by_cluster[master.cluster_id] = master
        self.critical_busy_s += tick_max_busy

        for cluster, requests in work:
            result = by_cluster[cluster.cluster_id]
            self._note_cost(cluster.cluster_id, len(requests), result.busy_s)
            policy = scheduler.priority_for(cluster.cluster_id)
            if result.rng_state is not None and hasattr(policy, "rng"):
                policy.rng.bit_generator.state = result.rng_state
            scheduler.case2_rounds += result.case2_delta
            scheduler.decision_latencies_ms.append(result.decision_ms)
            if audit:
                scheduler.audit_log.extend(result.audit)
            scheduler.emitter.dispatch_round(
                now_ms,
                "dss-lc",
                cluster.cluster_id,
                len(requests),
                len(result.assigned),
                result.flow_cost_ms,
                decision_ms=result.decision_ms,
                case2=result.case2_delta > 0,
            )
            assigned_idx = set()
            for index, node_name, cluster_id, cost_ms in result.assigned:
                assigned_idx.add(index)
                ship(
                    ctx,
                    Assignment(
                        request=requests[index],
                        node_name=node_name,
                        cluster_id=cluster_id,
                        cost_ms=cost_ms,
                    ),
                    cluster.cluster_id,
                    now_ms,
                )
            for index, request in enumerate(requests):
                if index not in assigned_idx:
                    cluster.lc_queue.append(request)
        self.overhead_s += build_s + (time.perf_counter() - t_merge)

    def stats(self) -> Dict[str, Any]:
        return {
            "ticks": self.ticks,
            "rebalances": self.rebalances,
            "critical_busy_s": round(self.critical_busy_s, 6),
            "total_busy_s": round(self.total_busy_s, 6),
            "overhead_s": round(self.overhead_s, 6),
            "shard_busy_s": {
                k: round(v, 6) for k, v in sorted(self.shard_busy_s.items())
            },
        }


class ShardedRefreshStage(Stage):
    """Per-shard snapshot collection; concatenated in shard order."""

    name = "refresh"

    def __init__(self, plan: ShardPlan, executor: ShardExecutor) -> None:
        self.plan = plan
        self.executor = executor

    def run(self, ctx: SimContext) -> None:
        ctx.snapshot = ctx.storage.refresh_partitioned(
            ctx.now_ms, self.plan.split_nodes(ctx.worker_list), self.executor
        )


class ShardedStepStage(Stage):
    """Node stepping in per-shard slices, merged in canonical node order.

    Workers buffer each node's observable output — the manager's emissions
    during ``step`` (captured by swapping a
    :class:`~repro.obs.emitter.BufferingEmitter` in) plus the
    completed/evicted/abandoned lists — without touching the run's
    collector or queues.  The barrier replays per node, in ``worker_list``
    order, exactly the serial interleaving: manager events, completions
    (with BE ``note_completion``), evictions (with requeue), abandons.

    Slices run concurrently only when their managers are disjoint; the
    default topologies share one manager object across all workers (its
    counters and D-VPA maps are not synchronized), so shards then step
    sequentially in shard order — same result, by construction.
    """

    name = "step"

    def __init__(self, plan: ShardPlan, executor: ShardExecutor) -> None:
        self.plan = plan
        self.executor = executor
        #: manager disjointness is a topology property; computed once.
        self._disjoint: Optional[bool] = None

    @staticmethod
    def _managers_disjoint(slices: List[List[Any]]) -> bool:
        seen: set = set()
        for members in slices:
            mine = {
                id(node.manager)
                for node in members
                if node.manager is not None
            }
            if mine & seen:
                return False
            seen |= mine
        return True

    def run(self, ctx: SimContext) -> None:
        now_ms = ctx.now_ms
        dt = ctx.config.tick_ms
        active = ctx.active
        skip_idle = ctx.idle_skip_ok
        injector = ctx.injector
        enabled = ctx.emit.enabled

        def step_slice(nodes: List[Any]) -> List[tuple]:
            out: List[tuple] = []
            for node in nodes:
                if skip_idle and node not in active:
                    continue
                if injector is not None and injector.node_is_down(node.name):
                    continue
                manager = node.manager
                buffer = BufferingEmitter(enabled)
                original = None
                if manager is not None:
                    original = manager.emitter
                    manager.emitter = buffer
                try:
                    completed, evicted, abandoned = node.step(now_ms, dt)
                finally:
                    if manager is not None:
                        manager.emitter = original
                out.append((node, buffer, completed, evicted, abandoned))
            return out

        slices = [s for s in self.plan.split_nodes(ctx.worker_list) if s]
        if self._disjoint is None:
            self._disjoint = self._managers_disjoint(slices)
        if isinstance(self.executor, SerialShardExecutor) or self._disjoint:
            batches = self.executor.run_tasks(step_slice, slices)
        else:
            batches = [step_slice(s) for s in slices]

        emit = ctx.emit
        for batch in batches:
            for node, buffer, completed, evicted, abandoned in batch:
                if skip_idle and not node.is_active:
                    active.discard(node)
                buffer.replay(emit)
                for request in completed:
                    emit.completed(now_ms, request, node.name)
                    if not request.is_lc and hasattr(
                        ctx.be_scheduler, "note_completion"
                    ):
                        ctx.be_scheduler.note_completion(
                            request, node.capacity.cpu, node.capacity.memory
                        )
                for request in evicted:
                    emit.evicted(now_ms, request, node.name, "preemption")
                    requeue_evicted(ctx, request, now_ms)
                for request in abandoned:
                    emit.abandoned(now_ms, request, "node-queue")


class ShardedReassureStage(Stage):
    """Active-services map collected per shard; the re-assurance pass
    itself stays central (it is cheap and mutates shared HRM state)."""

    name = "reassure"

    def __init__(self, plan: ShardPlan, executor: ShardExecutor) -> None:
        self.plan = plan
        self.executor = executor

    def run(self, ctx: SimContext) -> None:
        if ctx.reassurance is None:
            return
        active_set = ctx.active if ctx.idle_skip_ok else None

        def collect(nodes: List[Any]) -> Dict[str, Dict[str, ServiceSpec]]:
            part: Dict[str, Dict[str, ServiceSpec]] = {}
            for node in nodes:
                if active_set is not None and node not in active_set:
                    continue
                if not node.running:
                    continue
                services: Dict[str, ServiceSpec] = {}
                for rr in node.running.values():
                    if rr.request.is_lc:
                        services[rr.request.spec.name] = rr.request.spec
                if services:
                    part[node.name] = services
            return part

        slices = [s for s in self.plan.split_nodes(ctx.worker_list) if s]
        parts = self.executor.run_tasks(collect, slices)
        active: Dict[str, Dict[str, ServiceSpec]] = {}
        for part in parts:  # shard order == canonical node order
            active.update(part)
        if active:
            ctx.reassurance.run(ctx.now_ms, active)


# ---------------------------------------------------------------------- #
# coordinator
# ---------------------------------------------------------------------- #
class ShardCoordinator:
    """Owns the shard plan and worker pools; swaps sharded stages into a
    runner's pipeline.

    Holds no simulation state — a checkpoint taken under N shards resumes
    under M shards (or serially) unchanged, because sharding only
    restructures *execution*, never semantics.
    """

    def __init__(self, system: Any, n_shards: int, backend: str) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; want {BACKENDS}"
            )
        cluster_ids = [c.cluster_id for c in system.clusters]
        self.plan = ShardPlan.build(cluster_ids, n_shards)
        self.backend = backend
        n = self.plan.n_shards
        #: pool for the CPU-heavy LC solves (process-capable).
        self.compute = make_executor(backend, n)
        #: pool for stages that must share the parent's live objects
        #: (refresh/step/reassure) — threads when the compute pool is
        #: process-based, otherwise the same executor.
        self.local: ShardExecutor = (
            ThreadShardExecutor(n) if backend == "process" else self.compute
        )
        self.lc_stage: Optional[ShardedLCDispatchStage] = None

    def install(self, pipeline: TickPipeline) -> TickPipeline:
        """Replace the parallelizable stages in place (profiled wrappers
        keep working: stage names are preserved)."""
        stages: List[Stage] = []
        for stage in pipeline.stages:
            if isinstance(stage, LCDispatchStage):
                self.lc_stage = ShardedLCDispatchStage(
                    self.plan, self.compute, fallback=stage
                )
                stage = self.lc_stage
            elif isinstance(stage, RefreshStage):
                stage = ShardedRefreshStage(self.plan, self.local)
            elif isinstance(stage, StepNodesStage):
                stage = ShardedStepStage(self.plan, self.local)
            elif isinstance(stage, ReassureStage):
                stage = ShardedReassureStage(self.plan, self.local)
            stages.append(stage)
        pipeline.stages[:] = stages
        return pipeline

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "n_shards": self.plan.n_shards,
            "backend": self.backend,
            "shards": [list(s) for s in self.plan.shards],
        }
        if self.lc_stage is not None:
            out["lc"] = self.lc_stage.stats()
        return out

    def close(self) -> None:
        self.compute.close()
        if self.local is not self.compute:
            self.local.close()
