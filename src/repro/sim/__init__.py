"""Simulation engine: clock, deliveries, requests, latency model, runner."""

from .engine import Clock, DeliveryQueue, TICK_MS
from .failures import FailureConfig, FailureEvent, FailureInjector
from .latency import LatencyModel, speed_factor
from .pressure import PressurePoint, PressureTester, TableLatencyModel
from .validation import InvariantChecker, InvariantViolation
from .request import RequestState, ServiceRequest

__all__ = [
    "Clock",
    "DeliveryQueue",
    "TICK_MS",
    "LatencyModel",
    "speed_factor",
    "ServiceRequest",
    "RequestState",
    "SimulationRunner",
    "RunnerConfig",
    "FailureInjector",
    "FailureConfig",
    "FailureEvent",
    "PressureTester",
    "PressurePoint",
    "TableLatencyModel",
    "InvariantChecker",
    "InvariantViolation",
]


def __getattr__(name):
    # SimulationRunner pulls in the cluster package, which itself uses the
    # latency model above — import it lazily to keep the import graph acyclic.
    if name in ("SimulationRunner", "RunnerConfig"):
        from .runner import RunnerConfig, SimulationRunner

        return {"SimulationRunner": SimulationRunner, "RunnerConfig": RunnerConfig}[
            name
        ]
    raise AttributeError(name)
