"""Time-stepped simulation engine primitives.

The experimental system advances in fixed 100 ms ticks (§6.1: virtual worker
update threads wake every 100 ms; §4.3: QoS windows are 100 ms) and samples
metrics every 800 ms period (§6.2).  :class:`DeliveryQueue` carries requests
across the network: a dispatch decision schedules a future delivery at
``now + one_way_delay`` and the runner collects due deliveries each tick.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TICK_MS", "Clock", "DeliveryQueue"]

#: simulation tick length (ms).  The paper's virtual nodes wake every
#: 100 ms; we default to a finer 25 ms tick so that queueing/delivery
#: quantisation stays small relative to LC QoS targets (~300 ms).
TICK_MS = 25.0


class Clock:
    """Monotonic simulated time in milliseconds."""

    def __init__(self, tick_ms: float = TICK_MS) -> None:
        if tick_ms <= 0:
            raise ValueError("tick must be positive")
        self.tick_ms = tick_ms
        self.now_ms = 0.0
        self.tick_count = 0

    def advance(self) -> float:
        self.now_ms += self.tick_ms
        self.tick_count += 1
        return self.now_ms

    # -- Checkpointable ------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, Any]:
        return {"now_ms": self.now_ms, "tick_count": self.tick_count}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.now_ms = state["now_ms"]
        self.tick_count = state["tick_count"]


class DeliveryQueue:
    """Priority queue of (due_time, payload) in-flight items.

    The FIFO tiebreak counter is a plain int (not ``itertools.count``) so
    the queue can be checkpointed: insertion order of same-due items is
    observable through delivery order.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = 0

    def schedule(self, due_ms: float, payload: Any) -> None:
        heapq.heappush(self._heap, (due_ms, self._counter, payload))
        self._counter += 1

    def pop_due(self, now_ms: float) -> List[Any]:
        due: List[Any] = []
        while self._heap and self._heap[0][0] <= now_ms + 1e-9:
            due.append(heapq.heappop(self._heap)[2])
        return due

    def __len__(self) -> int:
        return len(self._heap)

    def peek_next_ms(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def items(self) -> List[Any]:
        """All in-flight payloads, in arbitrary (heap) order — read-only
        inspection for conservation accounting."""
        return [entry[2] for entry in self._heap]

    # -- Checkpointable ------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, Any]:
        return {"heap": self._heap, "counter": self._counter}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._heap = state["heap"]
        self._counter = state["counter"]
