"""Service request lifecycle objects.

A request is born at a master node (its cluster's edge access point), waits
in the LC or BE scheduling queue, is dispatched to a worker (possibly in
another cluster, paying WAN latency), may queue again at the worker until
resources are allocated, is processed, and completes.  For LC requests the
QoS check compares end-to-end latency (queue + network + allocation +
processing) against the service's tail-latency target γ_k.

BE requests can be evicted under preemption (§4.1) — they lose progress and
return to the scheduling queue; LC requests that outstay a patience bound are
*abandoned*, the third metric in Fig. 11(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.workloads.spec import ServiceKind, ServiceSpec

__all__ = [
    "RequestState",
    "ServiceRequest",
    "request_id_state",
    "restore_request_id_state",
]


class _IdSource:
    """Monotonic request-id allocator with snapshotable position.

    Replaces ``itertools.count`` so checkpoint/restore can pin the exact
    id sequence: ids break FIFO/deadline priority ties, making them
    behaviorally observable.
    """

    __slots__ = ("next_id",)

    def __init__(self, start: int = 1) -> None:
        self.next_id = start

    def __next__(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


_request_ids = _IdSource()


def request_id_state() -> int:
    """Current allocator position (the next id to be handed out)."""
    return _request_ids.next_id


def restore_request_id_state(next_id: int) -> None:
    _request_ids.next_id = next_id


class RequestState(str, Enum):
    QUEUED_MASTER = "queued-master"
    IN_FLIGHT = "in-flight"
    QUEUED_NODE = "queued-node"
    RUNNING = "running"
    COMPLETED = "completed"
    ABANDONED = "abandoned"


@dataclass
class ServiceRequest:
    spec: ServiceSpec
    origin_cluster: int
    arrival_ms: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    state: RequestState = RequestState.QUEUED_MASTER

    # lifecycle timestamps (ms, simulation time)
    dispatched_ms: Optional[float] = None
    node_arrival_ms: Optional[float] = None
    started_ms: Optional[float] = None
    completed_ms: Optional[float] = None

    # placement
    target_cluster: Optional[int] = None
    target_node: Optional[str] = None

    # accounting
    network_delay_ms: float = 0.0
    allocation_overhead_ms: float = 0.0
    evictions: int = 0
    reschedules: int = 0

    @property
    def kind(self) -> ServiceKind:
        return self.spec.kind

    @property
    def is_lc(self) -> bool:
        return self.spec.is_lc

    # ------------------------------------------------------------------ #
    # derived latencies
    # ------------------------------------------------------------------ #
    def total_latency_ms(self) -> Optional[float]:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.arrival_ms

    def queueing_ms(self) -> Optional[float]:
        if self.started_ms is None:
            return None
        return (
            self.started_ms
            - self.arrival_ms
            - self.network_delay_ms
        )

    def qos_met(self) -> Optional[bool]:
        """None until completion; for BE always True (no strict target)."""
        latency = self.total_latency_ms()
        if latency is None:
            return None
        if not self.is_lc:
            return True
        return latency <= self.spec.qos_target_ms

    def patience_deadline_ms(self, factor: float = 4.0) -> float:
        """Time after which a still-unserved LC request is abandoned."""
        if not self.is_lc:
            return float("inf")
        return self.arrival_ms + factor * self.spec.qos_target_ms

    def mark_abandoned(self, now_ms: float) -> None:
        self.state = RequestState.ABANDONED
        self.completed_ms = None

    def clear_assignment(self) -> None:
        """Reset placement/progress fields when a request re-enters the
        master queue (eviction or node crash).  The patience deadline is
        intentionally *not* touched: it anchors to the original arrival, so
        requeueing cannot grant an LC request extra patience."""
        self.target_cluster = None
        self.target_node = None
        self.dispatched_ms = None
        self.node_arrival_ms = None
        self.started_ms = None

    def __repr__(self) -> str:  # keep debug output short
        return (
            f"<Req {self.request_id} {self.spec.name} "
            f"c{self.origin_cluster} {self.state.value}>"
        )
