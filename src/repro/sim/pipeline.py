"""Composable tick pipeline: the §3 control loop as stage objects.

Each simulation tick used to be a monolithic method sequence inside
``SimulationRunner.run()``, hand-rolled twice (profiled and unprofiled).
It is now a list of small stage objects sharing one :class:`SimContext`:

    arrivals → failures → refresh → lc → be → deliver → step → reassure
    → metrics

* :class:`TickPipeline` runs the stages in order, once per tick;
* :class:`ProfiledPipeline` wraps any pipeline and brackets every stage
  with :class:`~repro.perf.profiler.StageProfiler` start/stop pairs, so
  profiling is a wrapper instead of a duplicated loop;
* stages are individually testable and reorderable — a future baseline
  can insert, drop, or swap stages without touching the runner.

The ``failures`` stage is only present when a failure injector is
configured (matching the historical profiled loop, which timed the stage
only in that case), so profiled stage breakdowns keep the same keys.

All mutable per-run state lives on the :class:`SimContext`; the stages
themselves are stateless and shareable.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Sequence

from repro.sim.request import RequestState, ServiceRequest
from repro.workloads.spec import ServiceSpec

__all__ = [
    "SimContext",
    "Stage",
    "TickPipeline",
    "ProfiledPipeline",
    "build_stages",
    "STAGE_NAMES",
    "requeue_evicted",
]

logger = logging.getLogger(__name__)

#: canonical stage order (``failures`` present only with an injector,
#: ``invariants`` only with ``RunnerConfig.check_invariants``).
STAGE_NAMES = (
    "arrivals",
    "failures",
    "refresh",
    "lc",
    "be",
    "deliver",
    "step",
    "reassure",
    "metrics",
    "invariants",
)


@dataclass
class SimContext:
    """Everything the stages share for one run.

    Wiring (system, schedulers, emitter, …) is fixed at runner
    construction; the mutable scalars (cursor, counters, active set) are
    the run's live state and are what :meth:`SimulationRunner.checkpoint`
    snapshots at the runner level.
    """

    # wiring — fixed for the runner's lifetime
    system: Any
    config: Any
    catalog: Dict[str, ServiceSpec]
    clock: Any
    collector: Any
    storage: Any
    lc_scheduler: Any
    be_scheduler: Any
    emit: Any
    deliveries: Any
    central_inflight: Any
    trace: Sequence[Any]
    lc_label: str = ""
    be_label: str = ""
    be_distributed: bool = False
    reassurance: Any = None
    injector: Any = None
    checker: Any = None
    hub: Any = None
    sample_gauges: bool = False
    #: runtime invariant checker (None unless check_invariants is on).
    invariants: Any = None

    # live run state
    trace_cursor: int = 0
    central_be: List[ServiceRequest] = field(default_factory=list)
    worker_list: List[Any] = field(default_factory=list)
    active: set = field(default_factory=set)
    idle_skip_ok: bool = False
    dropped_be: int = 0
    crash_abandoned: int = 0
    warned_remap: bool = False

    # per-tick scratch
    now_ms: float = 0.0
    snapshot: Any = None


class Stage:
    """One step of the per-tick control loop; operates on the context."""

    name: ClassVar[str] = "stage"

    def run(self, ctx: SimContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# shared helpers (also used by the failure path)
# ---------------------------------------------------------------------- #
def requeue_evicted(ctx: SimContext, request: ServiceRequest, now_ms: float) -> None:
    """Return an evicted BE request to its origin master, or drop it.

    A request is dropped (exactly once, counted in ``dropped_be``) when
    requeueing is disabled or it exhausted ``max_be_reschedules``.
    """
    cfg = ctx.config
    if not cfg.requeue_evicted_be:
        ctx.dropped_be += 1
        ctx.emit.dropped(now_ms, request)
        return
    request.reschedules += 1
    if request.reschedules > cfg.max_be_reschedules:
        ctx.dropped_be += 1
        ctx.emit.dropped(now_ms, request)
        return
    ctx.system.cluster(request.origin_cluster).receive(request)
    ctx.emit.requeued(now_ms, request)


def ship(ctx: SimContext, assignment, from_cluster: int, now_ms: float) -> None:
    """Send one assignment over the LAN/WAN toward its target node."""
    request = assignment.request
    # propagation + payload serialisation over the (tc-shaped) link
    delay = ctx.system.transfer_ms(
        from_cluster, assignment.cluster_id, request.spec.payload_kb
    )
    request.network_delay_ms += delay
    request.dispatched_ms = now_ms
    request.state = RequestState.IN_FLIGHT
    ctx.emit.scheduled(
        now_ms,
        request,
        assignment.node_name,
        assignment.cluster_id,
        assignment.cost_ms,
        delay,
        ctx.lc_label if request.is_lc else ctx.be_label,
    )
    ctx.deliveries.schedule(
        now_ms + delay, (request, assignment.cluster_id, assignment.node_name)
    )


# ---------------------------------------------------------------------- #
# stages
# ---------------------------------------------------------------------- #
class ArrivalsStage(Stage):
    """Inject trace arrivals due before the end of this tick."""

    name = "arrivals"

    def run(self, ctx: SimContext) -> None:
        until_ms = ctx.now_ms + ctx.config.tick_ms
        trace = ctx.trace
        n_clusters = ctx.system.n_clusters
        while (
            ctx.trace_cursor < len(trace)
            and trace[ctx.trace_cursor].time_ms < until_ms
        ):
            record = trace[ctx.trace_cursor]
            ctx.trace_cursor += 1
            spec = ctx.catalog.get(record.service)
            if spec is None:
                continue
            cluster_id = record.cluster_id % n_clusters
            if cluster_id != record.cluster_id:
                # bad trace row: count the remap instead of folding silently
                ctx.collector.metrics.trace_remapped += 1
                if not ctx.warned_remap:
                    ctx.warned_remap = True
                    logger.warning(
                        "trace record at t=%.1fms names cluster %d outside "
                        "the %d-cluster topology; remapping with modulo "
                        "(reported once; total in RunMetrics.trace_remapped)",
                        record.time_ms,
                        record.cluster_id,
                        n_clusters,
                    )
            request = ServiceRequest(
                spec=spec,
                origin_cluster=cluster_id,
                arrival_ms=record.time_ms,
            )
            ctx.system.cluster(cluster_id).receive(request)
            ctx.emit.arrival(record.time_ms, request)


class FailuresStage(Stage):
    """Advance the failure injector and re-route displaced requests."""

    name = "failures"

    def run(self, ctx: SimContext) -> None:
        now_ms = ctx.now_ms
        # crash/recover/partition/heal events are emitted by the injector
        # itself (it holds the emitter); the kube bridge renders them.
        displaced = ctx.injector.apply(now_ms)
        for request in displaced:
            if request.state is RequestState.ABANDONED:
                # LC running on the crashed node when it went down: the
                # injector marked it abandoned; fold it into the abandon
                # counters exactly like a queue-patience drop.
                ctx.crash_abandoned += 1
                ctx.emit.abandoned(now_ms, request, "crash")
            elif request.is_lc:
                # queued LC survives the crash: back to its origin master.
                # Placement fields point at the dead node and must not leak
                # into the next dispatch round (the patience deadline keys
                # off arrival_ms and is deliberately left alone).
                request.clear_assignment()
                ctx.system.cluster(request.origin_cluster).receive(request)
                ctx.emit.requeued(now_ms, request)
            else:
                ctx.emit.evicted(
                    now_ms, request, request.target_node or "", "crash"
                )
                request.clear_assignment()
                requeue_evicted(ctx, request, now_ms)
        # a crashed node restarts cold: its QoS windows describe a process
        # tree that no longer exists, so stale tails must not keep feeding
        # δ into re-assurance and DCG-BE's node state.
        detector = getattr(ctx.storage, "detector", None)
        if detector is not None:
            for name in ctx.injector.last_crashed:
                detector.purge_node(name)


class RefreshStage(Stage):
    """Refresh the state storage (Prometheus/QoS-detector pushes)."""

    name = "refresh"

    def run(self, ctx: SimContext) -> None:
        ctx.snapshot = ctx.storage.refresh(ctx.now_ms)


class LCDispatchStage(Stage):
    """Distributed LC dispatch: the scheduler runs on every master."""

    name = "lc"

    def run(self, ctx: SimContext) -> None:
        now_ms = ctx.now_ms
        for cluster in ctx.system.clusters:
            if not cluster.lc_queue:
                continue
            requests = cluster.drain_lc()
            eligible = ctx.system.nearby_clusters(cluster.cluster_id)
            assignments = ctx.lc_scheduler.dispatch(
                cluster.cluster_id, requests, ctx.snapshot, eligible, now_ms
            )
            assigned_ids = {a.request.request_id for a in assignments}
            for assignment in assignments:
                ship(ctx, assignment, cluster.cluster_id, now_ms)
            for request in requests:
                if request.request_id not in assigned_ids:
                    cluster.lc_queue.append(request)


class BEDispatchStage(Stage):
    """BE forwarding to the central master + central dispatch (or the
    DSACO-style distributed path when the BE policy is distributed)."""

    name = "be"

    def run(self, ctx: SimContext) -> None:
        now_ms = ctx.now_ms
        central = ctx.system.central_cluster_id
        if ctx.be_distributed:
            # DSACO-style: each cluster dispatches its own BE queue locally.
            for cluster in ctx.system.clusters:
                if not cluster.be_queue:
                    continue
                requests = cluster.drain_be()
                eligible = ctx.system.nearby_clusters(cluster.cluster_id)
                assignments = ctx.be_scheduler.dispatch(
                    cluster.cluster_id, requests, ctx.snapshot, eligible, now_ms
                )
                assigned = {a.request.request_id for a in assignments}
                for a in assignments:
                    ship(ctx, a, cluster.cluster_id, now_ms)
                for r in requests:
                    if r.request_id not in assigned:
                        cluster.be_queue.append(r)
            return

        # forward to central (paying WAN delay once)
        for cluster in ctx.system.clusters:
            if not cluster.be_queue:
                continue
            for request in cluster.drain_be():
                delay = ctx.system.one_way_delay_ms(cluster.cluster_id, central)
                request.network_delay_ms += delay
                request.state = RequestState.IN_FLIGHT
                ctx.central_inflight.schedule(now_ms + delay, request)
        ctx.central_be.extend(ctx.central_inflight.pop_due(now_ms))

        if not ctx.central_be:
            return
        requests = ctx.central_be
        ctx.central_be = []
        assignments = ctx.be_scheduler.dispatch_be(requests, ctx.snapshot, now_ms)
        assigned = {a.request.request_id for a in assignments}
        for assignment in assignments:
            ship(ctx, assignment, central, now_ms)
        for request in requests:
            if request.request_id not in assigned:
                ctx.central_be.append(request)


class DeliverStage(Stage):
    """Move due in-flight requests into their target node's queues."""

    name = "deliver"

    def run(self, ctx: SimContext) -> None:
        now_ms = ctx.now_ms
        for request, cluster_id, node_name in ctx.deliveries.pop_due(now_ms):
            node = ctx.system.cluster(cluster_id).worker(node_name)
            node.enqueue(request, now_ms)
            ctx.active.add(node)
            ctx.emit.delivered(now_ms, request, node_name)


class StepNodesStage(Stage):
    """Step nodes holding work, in the canonical (seed) node order.

    Membership in ``ctx.active`` is maintained incrementally — added on
    delivery, removed when a step leaves the node idle — so an idle fleet
    costs one set lookup per node instead of a full step.  The canonical
    iteration order is kept (rather than iterating the set) because step
    order is observable: it decides eviction-requeue and completion-
    callback order.
    """

    name = "step"

    def run(self, ctx: SimContext) -> None:
        now_ms = ctx.now_ms
        dt = ctx.config.tick_ms
        active = ctx.active
        skip_idle = ctx.idle_skip_ok
        injector = ctx.injector
        emit = ctx.emit
        for node in ctx.worker_list:
            if skip_idle and node not in active:
                continue
            if injector is not None and injector.node_is_down(node.name):
                continue
            completed, evicted, abandoned = node.step(now_ms, dt)
            if skip_idle and not node.is_active:
                active.discard(node)
            if not (completed or evicted or abandoned):
                continue
            for request in completed:
                emit.completed(now_ms, request, node.name)
                if not request.is_lc and hasattr(
                    ctx.be_scheduler, "note_completion"
                ):
                    ctx.be_scheduler.note_completion(
                        request, node.capacity.cpu, node.capacity.memory
                    )
            for request in evicted:
                emit.evicted(now_ms, request, node.name, "preemption")
                requeue_evicted(ctx, request, now_ms)
            for request in abandoned:
                emit.abandoned(now_ms, request, "node-queue")


class ReassureStage(Stage):
    """QoS re-assurance pass (Algorithm 1) when HRM is active."""

    name = "reassure"

    def run(self, ctx: SimContext) -> None:
        if ctx.reassurance is None:
            return
        # only nodes in the active set can hold running LC work, so the
        # active-services map is built from it (idle nodes contribute
        # nothing to Algorithm 1 either way).
        active: Dict[str, Dict[str, ServiceSpec]] = {}
        active_set = ctx.active if ctx.idle_skip_ok else None
        for node in ctx.worker_list:
            if active_set is not None and node not in active_set:
                continue
            if not node.running:
                continue
            services: Dict[str, ServiceSpec] = {}
            for rr in node.running.values():
                if rr.request.is_lc:
                    services[rr.request.spec.name] = rr.request.spec
            if services:
                active[node.name] = services
        if active:
            ctx.reassurance.run(ctx.now_ms, active)


class MetricsStage(Stage):
    """Invariant checking + the 800 ms period sampler."""

    name = "metrics"

    def run(self, ctx: SimContext) -> None:
        if ctx.checker is not None:
            ctx.checker.check(ctx.now_ms, ctx.collector.metrics)
        period_end = ctx.now_ms + ctx.config.tick_ms
        if ctx.collector.maybe_sample(period_end) and ctx.sample_gauges:
            ctx.hub.sample_period(
                period_end,
                ctx.system,
                ctx.collector,
                detector=ctx.storage.detector,
                specs=list(ctx.catalog.values()),
            )


# ---------------------------------------------------------------------- #
# pipelines
# ---------------------------------------------------------------------- #
def build_stages(
    *, include_failures: bool, include_invariants: bool = False
) -> List[Stage]:
    """The canonical stage list; ``failures`` only with an injector,
    ``invariants`` only when the runner enables checking."""
    stages: List[Stage] = [ArrivalsStage()]
    if include_failures:
        stages.append(FailuresStage())
    stages.extend(
        [
            RefreshStage(),
            LCDispatchStage(),
            BEDispatchStage(),
            DeliverStage(),
            StepNodesStage(),
            ReassureStage(),
            MetricsStage(),
        ]
    )
    if include_invariants:
        # imported here: invariants imports Stage/SimContext from this
        # module, so the edge must stay one-directional at import time.
        from repro.sim.invariants import InvariantStage

        stages.append(InvariantStage())
    return stages


class TickPipeline:
    """Runs its stages in order, once per call."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages: List[Stage] = list(stages)

    def run_tick(self, ctx: SimContext) -> None:
        for stage in self.stages:
            stage.run(ctx)

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]


class ProfiledPipeline:
    """Same stages, each bracketed by the stage profiler."""

    def __init__(self, pipeline: TickPipeline, profiler) -> None:
        self.pipeline = pipeline
        self.profiler = profiler

    @property
    def stages(self) -> List[Stage]:
        return self.pipeline.stages

    def run_tick(self, ctx: SimContext) -> None:
        prof = self.profiler
        for stage in self.pipeline.stages:
            t0 = prof.start()
            stage.run(ctx)
            prof.stop(stage.name, t0)

    def stage_names(self) -> List[str]:
        return self.pipeline.stage_names()
