"""Figure 10 — QoS re-assurance mechanism ablation (§7.1).

For each workload pattern (P1/P2/P3), compare the normalized LC
QoS-guarantee satisfaction rate and BE throughput **with** and **without**
the re-assurance mechanism (Algorithm 1).  The paper's shape: re-assurance
improves the LC satisfaction rate under every pattern at a small (or no)
BE throughput cost — the mechanism "effectively optimizes the system
objective".
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.sim.runner import RunnerConfig
from repro.workloads.patterns import PatternConfig, PatternKind, PatternWorkload

from .common import normalize, print_table

__all__ = ["run_fig10", "main"]

_DURATION_MS = 20_000.0


def _arm(pattern: PatternKind, reassure: bool, seed: int) -> Dict[str, float]:
    records = PatternWorkload(
        PatternConfig(
            pattern=pattern,
            duration_ms=_DURATION_MS,
            lc_mean_rps=18.0,
            be_mean_rps=4.0,
            seed=seed,
        )
    ).generate(cluster_id=0)
    config = TangoConfig.tango(
        reassurance_enabled=reassure,
        topology=TopologyConfig(n_clusters=1, workers_per_cluster=4, seed=seed),
        runner=RunnerConfig(duration_ms=_DURATION_MS),
    )
    metrics = TangoSystem(config).run(records)
    return {
        "qos_rate": metrics.qos_satisfaction_rate,
        "throughput": float(metrics.be_throughput),
        "tail_ms": metrics.lc_tail_latency_ms() or 0.0,
    }


def run_fig10(scale_name: str = "small", seed: int = 1) -> Dict[str, object]:
    del scale_name
    result: Dict[str, object] = {}
    for pattern in (PatternKind.P1, PatternKind.P2, PatternKind.P3):
        result[pattern.value] = {
            "with": _arm(pattern, True, seed),
            "without": _arm(pattern, False, seed),
        }
    return result


def main(scale_name: str = "small") -> Dict[str, object]:
    result = run_fig10(scale_name)
    rows = []
    for pattern, arms in result.items():
        qos = normalize(
            {"with": arms["with"]["qos_rate"], "without": arms["without"]["qos_rate"]}
        )
        thr = normalize(
            {
                "with": arms["with"]["throughput"],
                "without": arms["without"]["throughput"],
            }
        )
        rows.append(
            {
                "pattern": pattern,
                "LC_qos_with": qos["with"],
                "LC_qos_without": qos["without"],
                "BE_thr_with": thr["with"],
                "BE_thr_without": thr["without"],
            }
        )
    print_table("Figure 10: QoS re-assurance on/off (normalized)", rows)
    return result


if __name__ == "__main__":
    main()
