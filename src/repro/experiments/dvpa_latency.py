"""§7.1 D-VPA microbenchmark — scaling-operation latency.

The paper measures a single D-VPA scaling operation at **23 ms**, "a
significant reduction ... compared to the delete-and-rebuild approach, by a
factor of approximately 100 times", and stresses the operation "does not
interrupt the running containers".

This harness performs both operations against the simulated substrate:

* D-VPA: an in-place resize through the ordered two-level cgroup protocol
  (real :class:`CGroupTree` writes, each costing the modelled per-write
  latency);
* native VPA: the upstream plugin's delete-and-rebuild (teardown + cold
  container start).
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.resources import ResourceVector
from repro.hrm.dvpa import DVPA
from repro.kube.objects import ContainerSpec, Pod, PodSpec
from repro.kube.vpa import NativeVPA

from .common import print_table

__all__ = ["run_dvpa_latency", "main"]

rv = ResourceVector.of


def run_dvpa_latency(n_ops: int = 50) -> Dict[str, float]:
    dvpa = DVPA("bench-node", detailed=True)
    dvpa.scale("svc", rv(cpu=1.0, memory=512.0))
    for i in range(n_ops):
        # alternate expand/shrink so both write orders are exercised
        factor = 2.0 if i % 2 == 0 else 1.0
        dvpa.scale("svc", rv(cpu=factor, memory=512.0 * factor))
    dvpa_mean = dvpa.stats.total_latency_ms / max(1, dvpa.stats.operations)

    native = NativeVPA()
    native_total = 0.0
    for i in range(n_ops):
        pod = Pod(
            name=f"app-{i}",
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        "main",
                        requests=rv(cpu=1.0, memory=512.0),
                        limits=rv(cpu=1.0, memory=512.0),
                    )
                ]
            ),
        )
        native_total += native.resize(pod, rv(cpu=2.0, memory=1024.0)).latency_ms
    native_mean = native_total / n_ops

    return {
        "dvpa_mean_ms": dvpa_mean,
        "native_mean_ms": native_mean,
        "speedup": native_mean / dvpa_mean,
        "dvpa_interrupts": 0.0,
        "native_interrupts": float(n_ops),
    }


def main(scale_name: str = "small") -> Dict[str, float]:
    del scale_name
    result = run_dvpa_latency()
    print_table(
        "§7.1 D-VPA scaling-operation latency",
        [
            {
                "method": "Tango D-VPA (in-place)",
                "mean_ms": result["dvpa_mean_ms"],
                "interrupts": 0,
                "paper": "23 ms",
            },
            {
                "method": "K8s VPA (delete-and-rebuild)",
                "mean_ms": result["native_mean_ms"],
                "interrupts": int(result["native_interrupts"]),
                "paper": "~100x slower",
            },
        ],
    )
    print(f"speedup: {result['speedup']:.0f}x (paper: ~100x)")
    return result


if __name__ == "__main__":
    main()
