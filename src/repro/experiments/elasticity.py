"""Elasticity mechanisms head-to-head: HPA / native VPA / D-VPA (§2.1).

The paper motivates D-VPA by dismissing the two K8s-native elasticity paths
for millisecond LC services:

* "Horizontal scaling ... is relatively time-consuming ... due to long
  container start-up time" — an HPA decision only helps after the
  Deployment controller schedules a pod *and* the kubelet's cold start
  (~2.2 s) completes, plus the HPA sync period (15 s upstream);
* "K8s's vertical scaling component ... causes downtime since it relies on
  a delete-and-rebuild approach" — capacity exists but blinks out for the
  rebuild duration;
* D-VPA resizes in place in ~23 ms with zero downtime.

This harness simulates a load step (demand doubles at t=0) and tracks when
each mechanism restores sufficient capacity:

* **time-to-capacity** — first instant serving capacity ≥ new demand;
* **downtime** — capacity lost during the reaction (native VPA only);
* **reaction latency** — decision + actuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.resources import ResourceVector
from repro.hrm.dvpa import DVPA
from repro.kube.api_server import ApiServer
from repro.kube.controller import Deployment, DeploymentController
from repro.kube.hpa import HorizontalPodAutoscaler
from repro.kube.kubelet import CONTAINER_COLD_START_MS
from repro.kube.objects import ContainerSpec, Pod, PodSpec
from repro.kube.scheduler import NodeView
from repro.kube.vpa import NativeVPA

from .common import print_table

__all__ = ["run_elasticity", "main"]

rv = ResourceVector.of

#: per-replica capacity before the step (CPU cores worth of service).
BASE_CPU = 1.0
#: the load step: demand doubles.
DEMAND_FACTOR = 2.0


@dataclass
class MechanismOutcome:
    time_to_capacity_ms: float
    downtime_ms: float
    interrupts: int


def _hpa_path() -> MechanismOutcome:
    """HPA + Deployment + kubelet: scale 2 → 4 replicas."""
    api = ApiServer()
    controller = DeploymentController(api)
    template = PodSpec(
        containers=[
            ContainerSpec(
                "main",
                requests=rv(cpu=BASE_CPU, memory=1024.0),
                limits=rv(cpu=BASE_CPU, memory=1024.0),
            )
        ],
        service_name="svc",
    )
    controller.apply(Deployment("svc", 2, template))
    nodes = [NodeView(f"n{i}", rv(cpu=8, memory=16384), rv()) for i in range(4)]
    controller.reconcile("svc", nodes)

    hpa = HorizontalPodAutoscaler(
        target_utilization=0.5, max_replicas=8, sync_period_ms=15_000.0
    )
    # load steps at t=0; utilisation observed at 1.0 (double the target)
    now = 0.0
    decision = None
    while decision is None:
        decision = hpa.evaluate(now, current_replicas=2, observed_utilization=1.0)
        if decision is None:
            now += 1_000.0
    controller.scale("svc", decision.desired_replicas)
    controller.reconcile("svc", nodes)
    # new replicas serve only after the cold start completes
    return MechanismOutcome(
        time_to_capacity_ms=now + CONTAINER_COLD_START_MS,
        downtime_ms=0.0,
        interrupts=0,
    )


def _native_vpa_path() -> MechanismOutcome:
    """Delete-and-rebuild resize of both replicas to 2× CPU."""
    vpa = NativeVPA()
    worst_finish = 0.0
    downtime = 0.0
    interrupts = 0
    for i in range(2):
        pod = Pod(
            name=f"svc-{i}",
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        "main",
                        requests=rv(cpu=BASE_CPU, memory=1024.0),
                        limits=rv(cpu=BASE_CPU, memory=1024.0),
                    )
                ]
            ),
        )
        outcome = vpa.resize(pod, rv(cpu=BASE_CPU * DEMAND_FACTOR, memory=2048.0))
        worst_finish = max(worst_finish, outcome.latency_ms)
        downtime += outcome.downtime_ms
        interrupts += 1
    return MechanismOutcome(
        time_to_capacity_ms=worst_finish,
        downtime_ms=downtime,
        interrupts=interrupts,
    )


def _dvpa_path() -> MechanismOutcome:
    """In-place resize of both replicas' cgroups."""
    dvpa = DVPA("bench", detailed=True)
    worst = 0.0
    for i in range(2):
        service = f"svc-{i}"
        dvpa.scale(service, rv(cpu=BASE_CPU, memory=1024.0))
        latency = dvpa.scale(
            service, rv(cpu=BASE_CPU * DEMAND_FACTOR, memory=2048.0)
        )
        worst = max(worst, latency)
    return MechanismOutcome(
        time_to_capacity_ms=worst, downtime_ms=0.0, interrupts=0
    )


def run_elasticity() -> Dict[str, MechanismOutcome]:
    return {
        "hpa": _hpa_path(),
        "native-vpa": _native_vpa_path(),
        "d-vpa": _dvpa_path(),
    }


def main(scale_name: str = "small") -> Dict[str, MechanismOutcome]:
    del scale_name
    result = run_elasticity()
    rows = [
        {
            "mechanism": name,
            "time_to_capacity_ms": outcome.time_to_capacity_ms,
            "downtime_ms": outcome.downtime_ms,
            "interrupts": outcome.interrupts,
        }
        for name, outcome in result.items()
    ]
    print_table("§2.1 elasticity mechanisms under a 2x load step", rows)
    return result


if __name__ == "__main__":
    main()
