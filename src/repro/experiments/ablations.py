"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these probe the sensitivity of Tango's design
parameters, as a reviewer (or a deployer) would:

* **re-assurance thresholds** (α, β of Algorithm 1): too-tight thresholds
  thrash allocations; too-loose ones stop reacting to QoS violations;
* **reward mix η** of DCG-BE: η=0 drops the long-term term, η≫1 drowns the
  load-balancing signal (paper sets η=1);
* **preemption policy**: HRM's compressible/incompressible split vs
  evict-only and squeeze-only variants.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.hrm.reassurance import ReassuranceConfig
from repro.scheduling.dcg_be import DCGBEConfig, DCGBEScheduler

from .common import SCALES, print_table, scaled_config
from .fig11 import _run_learning_arm, _trace_for

__all__ = [
    "run_threshold_ablation",
    "run_reward_ablation",
    "run_preemption_ablation",
    "run_coordination_ablation",
    "main",
]


def run_threshold_ablation(scale_name: str = "small", seed: int = 1) -> Dict:
    scale = SCALES[scale_name]
    variants = {
        "default (α=0.25, β=0.45)": ReassuranceConfig(),
        "wide (α=0.1, β=0.5)": ReassuranceConfig(alpha=0.1, beta=0.5),
        "tight (α=0.3, β=0.4)": ReassuranceConfig(alpha=0.3, beta=0.4),
        "loose (α=-0.5, β=0.9)": ReassuranceConfig(alpha=-0.5, beta=0.9),
    }
    result = {}
    for name, cfg in variants.items():
        config = scaled_config(
            TangoConfig.tango, scale, seed=seed, reassurance=cfg
        )
        metrics = TangoSystem(config).run(_trace_for(scale, seed))
        result[name] = {
            "qos_rate": metrics.qos_satisfaction_rate,
            "throughput": float(metrics.be_throughput),
        }
    return result


def run_reward_ablation(scale_name: str = "multi", seed: int = 1) -> Dict:
    scale = SCALES[scale_name]
    result = {}
    for eta in (0.0, 1.0, 4.0):
        scheduler = DCGBEScheduler(DCGBEConfig(seed=seed, eta=eta))
        metrics = _run_learning_arm(scheduler, scale, seed, warmups=1)
        result[f"eta={eta}"] = {"throughput": float(metrics.be_throughput)}
    return result


def run_preemption_ablation(scale_name: str = "small", seed: int = 1) -> Dict:
    """Disable parts of the §4.1 preemption machinery."""
    from repro.hrm.regulations import HRMConfig

    scale = SCALES[scale_name]
    variants = {
        "full HRM": HRMConfig(),
        "no squeeze (evict-only)": HRMConfig(be_squeeze_floor=10.0),
        "no BE expansion": HRMConfig(be_expand_rate=0.0, be_expand_cap=0.0),
    }
    result = {}
    for name, hrm_cfg in variants.items():
        config = scaled_config(TangoConfig.tango, scale, seed=seed, hrm=hrm_cfg)
        metrics = TangoSystem(config).run(_trace_for(scale, seed))
        result[name] = {
            "qos_rate": metrics.qos_satisfaction_rate,
            "throughput": float(metrics.be_throughput),
            "evictions": float(metrics.be_evictions),
            "utilization": metrics.mean_utilization,
        }
    return result


def run_coordination_ablation(scale_name: str = "small", seed: int = 1) -> Dict:
    """Per-type-parallel (the paper's Alg. 2) vs joint multi-commodity solve."""
    from repro.scheduling.dss_lc import DSSLCConfig

    scale = SCALES[scale_name]
    result = {}
    for name, coordinate in (("parallel (paper)", False), ("coordinated", True)):
        config = scaled_config(
            TangoConfig.tango, scale, seed=seed,
            dss_lc=DSSLCConfig(coordinate_types=coordinate, seed=seed),
        )
        metrics = TangoSystem(config).run(_trace_for(scale, seed))
        result[name] = {
            "qos_rate": metrics.qos_satisfaction_rate,
            "tail_ms": metrics.lc_tail_latency_ms() or 0.0,
            "abandoned": float(metrics.lc_abandoned),
        }
    return result


def main(scale_name: str = "small") -> Dict:
    thresholds = run_threshold_ablation(scale_name)
    print_table(
        "Ablation: re-assurance thresholds",
        [{"variant": k, **v} for k, v in thresholds.items()],
    )
    preemption = run_preemption_ablation(scale_name)
    print_table(
        "Ablation: preemption policy",
        [{"variant": k, **v} for k, v in preemption.items()],
    )
    coordination = run_coordination_ablation(scale_name)
    print_table(
        "Ablation: DSS-LC per-type-parallel vs coordinated MCNF",
        [{"variant": k, **v} for k, v in coordination.items()],
    )
    reward = run_reward_ablation()
    print_table(
        "Ablation: DCG-BE reward mix η",
        [{"variant": k, **v} for k, v in reward.items()],
    )
    return {
        "thresholds": thresholds,
        "preemption": preemption,
        "coordination": coordination,
        "reward": reward,
    }


if __name__ == "__main__":
    main()
