"""Figure 1 — Measurement of industrial edge-clouds.

(a) Resource usage of edge clouds over a day: with LC services hosted alone
    (the pre-co-location deployment the paper motivates against), average
    utilisation stays **below ~20 %** even at the afternoon/evening peaks.
(b) Average response latency of LC services: most requests complete within
    **approximately 300 ms**.

We regenerate both panels by running an LC-only day-long (compressed) trace
through the simulator with the K8s-native stack — the deployment the
production measurement reflects — and sampling utilisation and mean latency
per period.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.config import TangoConfig
from repro.workloads.spec import ServiceKind, default_catalog
from repro.workloads.trace import SyntheticTrace, TraceConfig

from .common import SCALES, Scale, build_and_run, print_table, scaled_config

__all__ = ["run_fig1", "main"]


def run_fig1(scale_name: str = "small", seed: int = 1) -> Dict[str, object]:
    scale = SCALES[scale_name]
    # LC-only trace across a compressed day (hours_per_second covers 24h)
    hours_per_second = 24.0 / (scale.duration_ms / 1000.0)
    trace_cfg = TraceConfig(
        n_clusters=scale.n_clusters,
        duration_ms=scale.duration_ms,
        lc_peak_rps=scale.lc_peak_rps,
        be_peak_rps=0.0,  # LC services hosted alone
        hours_per_second=hours_per_second,
        start_hour=0.0,
        seed=seed,
    )
    trace = SyntheticTrace(trace_cfg).generate()
    config = scaled_config(TangoConfig.k8s_native, scale, seed=seed)
    metrics = build_and_run(config, scale, trace=trace)

    n_periods = len(metrics.utilization)
    hours = [
        (i + 1) * (scale.duration_ms / n_periods) / 1000.0 * hours_per_second
        for i in range(n_periods)
    ]
    latencies = metrics.lc_latencies_ms
    return {
        "hours": hours,
        "utilization": metrics.utilization,
        "mean_utilization": metrics.mean_utilization,
        "mean_latency_ms": float(np.mean(latencies)) if latencies else 0.0,
        "p95_latency_ms": metrics.lc_tail_latency_ms() or 0.0,
        "peak_utilization": max(metrics.utilization) if metrics.utilization else 0.0,
    }


def main(scale_name: str = "small") -> Dict[str, object]:
    result = run_fig1(scale_name)
    rows = [
        {
            "panel": "(a) utilization",
            "mean": result["mean_utilization"],
            "peak": result["peak_utilization"],
            "paper": "< 0.20 mean",
        },
        {
            "panel": "(b) LC latency",
            "mean": result["mean_latency_ms"],
            "peak": result["p95_latency_ms"],
            "paper": "~300 ms",
        },
    ]
    print_table("Figure 1: industrial edge-cloud measurement", rows)
    return result


if __name__ == "__main__":
    main()
