"""Figure 12 — algorithm pairing analysis (§7.3).

Every LC policy × every BE policy under the same workload, reporting the
normalized LC QoS-guarantee satisfaction rate (a) and BE throughput (b).

Paper shapes to reproduce:

* DSS-LC beats the other LC policies regardless of the BE pairing
  (≈ +8.2 % QoS), and LC results barely move with the BE policy — HRM
  insulates LC from BE scheduling churn;
* BE throughput *does* move with the LC policy, and the DCG-BE × DSS-LC
  cell is the global best (≈ +5.9 % over DCG-BE × K8s-native) — the
  "optimal algorithm combination for Tango".
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.scheduling.dcg_be import DCGBEConfig, DCGBEScheduler
from repro.scheduling.gnn_sac import GNNSACScheduler

from .common import SCALES, Scale, print_table, scaled_config
from .fig11 import _run_learning_arm, _trace_for

__all__ = ["run_fig12", "main"]

LC_SET = ("dss-lc", "scoring", "k8s-native", "load-greedy")
BE_SET = ("dcg-be", "gnn-sac", "k8s-native", "load-greedy")


def _run_pair(
    lc_policy: str, be_policy: str, scale: Scale, seed: int
) -> Tuple[float, float]:
    def fresh(be_scheduler=None):
        config = scaled_config(
            TangoConfig.tango, scale, seed=seed,
            lc_policy=lc_policy,
            be_policy=be_policy if be_scheduler is None else "dcg-be",
        )
        return TangoSystem(config, be_scheduler=be_scheduler)

    if be_policy in ("dcg-be", "gnn-sac"):
        cls = DCGBEScheduler if be_policy == "dcg-be" else GNNSACScheduler
        scheduler = cls(DCGBEConfig(seed=seed))
        # one warmup pass keeps the 16-cell matrix tractable
        fresh(scheduler).run(_trace_for(scale, 100))
        metrics = fresh(scheduler).run(_trace_for(scale, seed))
    else:
        metrics = fresh().run(_trace_for(scale, seed))
    return metrics.qos_satisfaction_rate, float(metrics.be_throughput)


def run_fig12(scale_name: str = "multi", seed: int = 1) -> Dict[str, object]:
    scale = SCALES[scale_name]
    qos: Dict[Tuple[str, str], float] = {}
    throughput: Dict[Tuple[str, str], float] = {}
    for lc in LC_SET:
        for be in BE_SET:
            q, t = _run_pair(lc, be, scale, seed)
            qos[(lc, be)] = q
            throughput[(lc, be)] = t
    return {"qos": qos, "throughput": throughput}


def main(scale_name: str = "multi") -> Dict[str, object]:
    result = run_fig12(scale_name)
    qos, thr = result["qos"], result["throughput"]
    q_max = max(qos.values()) or 1.0
    t_max = max(thr.values()) or 1.0
    rows_q, rows_t = [], []
    for lc in LC_SET:
        rows_q.append(
            {"LC \\ BE": lc, **{be: qos[(lc, be)] / q_max for be in BE_SET}}
        )
        rows_t.append(
            {"LC \\ BE": lc, **{be: thr[(lc, be)] / t_max for be in BE_SET}}
        )
    print_table("Figure 12(a): normalized LC QoS rate by pairing", rows_q)
    print_table("Figure 12(b): normalized BE throughput by pairing", rows_t)
    return result


if __name__ == "__main__":
    main()
