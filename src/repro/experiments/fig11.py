"""Figure 11 — scheduling-algorithm comparisons (§7.2).

(a, b) **DSS-LC vs LC baselines** (load-greedy, K8s-native, scoring) with BE
       fixed to K8s-native: normalized QoS-guarantee satisfaction rate, plus
       average latency and abandoned-request count.
       Paper shape: DSS-LC best and most stable on all three metrics.

(c)    **DCG-BE vs BE baselines** (GNN-SAC, load-greedy, K8s-native) with LC
       fixed to K8s-native: normalized BE throughput.  Paper shape: all
       three *inter-cluster* algorithms beat K8s-native (which has no
       cross-cluster dispatcher), and DCG-BE leads GNN-SAC (≈ +9.3 %).

(d)    **GNN-encoder ablation** inside DCG-BE: GraphSAGE-A2C vs GCN-A2C vs
       GAT-A2C vs Native-A2C (no message passing); GraphSAGE best.

The learning arms (DCG-BE, GNN-SAC, and every fig-11(d) encoder) are warmed
up on shifted trace seeds before the measured run — the paper trains its
agents online over horizons far longer than one bench run, and its figures
report the settled policy.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.nn.gnn import GATEncoder, GCNEncoder, GraphSAGEEncoder, IdentityEncoder
from repro.scheduling.dcg_be import DCGBEConfig, DCGBEScheduler, N_NODE_FEATURES
from repro.scheduling.gnn_sac import GNNSACScheduler
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

from .common import SCALES, Scale, build_and_run, normalize, print_table, scaled_config

__all__ = ["run_fig11ab", "run_fig11c", "run_fig11d", "main"]

LC_ALGORITHMS = ("dss-lc", "load-greedy", "k8s-native", "scoring")
BE_ALGORITHMS = ("dcg-be", "gnn-sac", "load-greedy", "k8s-native")
GNN_ENCODERS = ("graphsage", "gcn", "gat", "native")

#: warmup passes for learning arms before the measured run.
WARMUP_RUNS = 2


def run_fig11ab(scale_name: str = "small", seed: int = 1) -> Dict[str, object]:
    """LC scheduler sweep; BE side fixed to K8s-native (the §7.2 setup)."""
    scale = SCALES[scale_name]
    result: Dict[str, object] = {}
    for policy in LC_ALGORITHMS:
        config = scaled_config(
            TangoConfig.tango, scale, seed=seed,
            lc_policy=policy, be_policy="k8s-native",
        )
        metrics = build_and_run(config, scale, trace_seed=seed)
        result[policy] = {
            "qos_rate": metrics.qos_satisfaction_rate,
            "qos_per_period": metrics.qos_rate_per_period,
            "avg_latency_ms": float(np.mean(metrics.lc_latencies_ms))
            if metrics.lc_latencies_ms
            else float("inf"),
            "abandoned": metrics.lc_abandoned,
            "tail_ms": metrics.lc_tail_latency_ms() or 0.0,
        }
    return result


def _trace_for(scale: Scale, seed: int):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=scale.n_clusters,
            duration_ms=scale.duration_ms,
            lc_peak_rps=scale.lc_peak_rps,
            be_peak_rps=scale.be_peak_rps,
            seed=seed,
        )
    ).generate()


def _run_learning_arm(
    scheduler,
    scale: Scale,
    seed: int,
    *,
    warmups: int = WARMUP_RUNS,
):
    """Warm a learning BE scheduler on shifted seeds, then measure."""
    def fresh_system():
        config = scaled_config(
            TangoConfig.tango, scale, seed=seed,
            lc_policy="k8s-native", be_policy="dcg-be",
        )
        return TangoSystem(config, be_scheduler=scheduler)

    for w in range(warmups):
        fresh_system().run(_trace_for(scale, 100 + w))
    return fresh_system().run(_trace_for(scale, seed))


def run_fig11c(scale_name: str = "multi", seed: int = 1) -> Dict[str, object]:
    """BE scheduler sweep; LC side fixed to K8s-native (the §7.2 setup)."""
    scale = SCALES[scale_name]
    result: Dict[str, object] = {}
    for policy in ("load-greedy", "k8s-native"):
        config = scaled_config(
            TangoConfig.tango, scale, seed=seed,
            lc_policy="k8s-native", be_policy=policy,
        )
        metrics = build_and_run(config, scale, trace_seed=seed)
        result[policy] = {
            "throughput": float(metrics.be_throughput),
            "per_period": metrics.be_completed_per_period,
        }
    for policy, cls in (("dcg-be", DCGBEScheduler), ("gnn-sac", GNNSACScheduler)):
        scheduler = cls(DCGBEConfig(seed=seed))
        metrics = _run_learning_arm(scheduler, scale, seed)
        result[policy] = {
            "throughput": float(metrics.be_throughput),
            "per_period": metrics.be_completed_per_period,
        }
    return result


def _encoder_for(name: str, cfg: DCGBEConfig):
    rng = np.random.default_rng(cfg.seed)
    hidden = [cfg.encoder_width] * cfg.hops
    if name == "graphsage":
        return GraphSAGEEncoder(
            N_NODE_FEATURES, hidden, rng, sample_size=cfg.sample_size
        )
    if name == "gcn":
        return GCNEncoder(N_NODE_FEATURES, hidden, rng)
    if name == "gat":
        return GATEncoder(N_NODE_FEATURES, hidden, rng)
    if name == "native":
        return IdentityEncoder(N_NODE_FEATURES, hidden, rng)
    raise ValueError(name)


def run_fig11d(
    scale_name: str = "multi", seed: int = 1, warmups: int = 1
) -> Dict[str, object]:
    """GNN encoder ablation inside DCG-BE."""
    scale = SCALES[scale_name]
    result: Dict[str, object] = {}
    for name in GNN_ENCODERS:
        dcg_cfg = DCGBEConfig(seed=seed)
        scheduler = DCGBEScheduler(dcg_cfg, encoder=_encoder_for(name, dcg_cfg))
        metrics = _run_learning_arm(scheduler, scale, seed, warmups=warmups)
        result[name] = {"throughput": float(metrics.be_throughput)}
    return result


def main(scale_name: str = "small") -> Dict[str, object]:
    ab = run_fig11ab(scale_name)
    qos = normalize({k: v["qos_rate"] for k, v in ab.items()})
    rows = [
        {
            "LC_algorithm": k,
            "qos_norm": qos[k],
            "avg_latency_ms": ab[k]["avg_latency_ms"],
            "abandoned": ab[k]["abandoned"],
        }
        for k in LC_ALGORITHMS
    ]
    print_table("Figure 11(a,b): DSS-LC vs LC baselines", rows)

    c = run_fig11c()
    thr = normalize({k: v["throughput"] for k, v in c.items()})
    rows_c = [
        {"BE_algorithm": k, "throughput": c[k]["throughput"], "normalized": thr[k]}
        for k in BE_ALGORITHMS
    ]
    print_table("Figure 11(c): DCG-BE vs BE baselines", rows_c)

    d = run_fig11d()
    thr_d = normalize({k: v["throughput"] for k, v in d.items()})
    rows_d = [
        {"encoder": k, "throughput": d[k]["throughput"], "normalized": thr_d[k]}
        for k in GNN_ENCODERS
    ]
    print_table("Figure 11(d): GNN encoder ablation", rows_d)
    return {"ab": ab, "c": c, "d": d}


if __name__ == "__main__":
    main()
