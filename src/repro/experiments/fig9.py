"""Figure 9 — HRM effectiveness under the P1/P2/P3 patterns (§7.1).

Panels:
(a) the three request patterns themselves (periodic/random LC×BE mixes);
(b) per-kind resource utilisation under K8s **with HRM** — harmonious
    allocation, LC preempts when necessary, BE soaks idle resources;
(c) the same under **K8s-native** — turbulent allocation, fixed quotas;
(d) overall resource utilisation with vs without HRM — HRM clearly higher.

The harness runs each pattern through both stacks on a physical-scale
cluster (1 master + 4 workers, as §7.1) and reports per-period LC/BE
utilisation splits plus the overall means.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.sim.runner import RunnerConfig
from repro.workloads.patterns import PatternConfig, PatternKind, PatternWorkload

from .common import print_table

__all__ = ["run_fig9", "main"]

#: K8s default policy for both requests kinds, per the §7.1 setup.
_PATTERN_DURATION_MS = 20_000.0


def _one_cell(pattern: PatternKind, with_hrm: bool, seed: int) -> Dict[str, object]:
    records = PatternWorkload(
        PatternConfig(
            pattern=pattern,
            duration_ms=_PATTERN_DURATION_MS,
            lc_mean_rps=10.0,
            be_mean_rps=2.5,
            seed=seed,
        )
    ).generate(cluster_id=0)
    # §7.1 uses K8s default scheduling for both kinds; only the resource
    # manager differs between the two arms.
    factory = TangoConfig.tango if with_hrm else TangoConfig.k8s_native
    config = factory(
        lc_policy="k8s-native",
        be_policy="k8s-native",
        topology=TopologyConfig(n_clusters=1, workers_per_cluster=4, seed=seed),
        runner=RunnerConfig(duration_ms=_PATTERN_DURATION_MS),
    )
    metrics = TangoSystem(config).run(records)
    return {
        "lc_utilization": metrics.lc_utilization,
        "be_utilization": metrics.be_utilization,
        "overall": metrics.utilization,
        "mean_overall": metrics.mean_utilization,
        "qos_rate": metrics.qos_satisfaction_rate,
        "throughput": metrics.be_throughput,
    }


def run_fig9(scale_name: str = "small", seed: int = 1) -> Dict[str, object]:
    del scale_name  # Fig. 9 is defined on the physical-scale cluster
    result: Dict[str, object] = {}
    for pattern in (PatternKind.P1, PatternKind.P2, PatternKind.P3):
        result[pattern.value] = {
            "with_hrm": _one_cell(pattern, True, seed),
            "without_hrm": _one_cell(pattern, False, seed),
        }
    return result


def main(scale_name: str = "small") -> Dict[str, object]:
    result = run_fig9(scale_name)
    rows = []
    for pattern, arms in result.items():
        rows.append(
            {
                "pattern": pattern,
                "util_with_HRM": arms["with_hrm"]["mean_overall"],
                "util_without": arms["without_hrm"]["mean_overall"],
                "gain": arms["with_hrm"]["mean_overall"]
                / max(arms["without_hrm"]["mean_overall"], 1e-9),
            }
        )
    print_table("Figure 9(d): overall utilisation, HRM vs K8s-native", rows)
    return result


if __name__ == "__main__":
    main()
