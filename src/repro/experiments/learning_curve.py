"""DCG-BE online-learning curve (the time axis of Fig. 11(c)).

The paper's Fig. 11(c) plots normalized BE throughput over periods while
DCG-BE and GNN-SAC train *online*.  This harness makes that learning curve a
first-class artifact: the same agent runs consecutive trace episodes (fresh
cluster state, shifted trace seed per episode) and we record per-episode
throughput alongside a static K8s-native reference measured on the identical
episodes.

Because online RL at bench horizons is noisy, the harness reports both the
raw series and a smoothed (cumulative-mean) curve; the bench asserts only
the weak monotonicity the paper's figure shows (later ≥ early, with slack).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.scheduling.dcg_be import DCGBEConfig, DCGBEScheduler
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

from .common import print_table

__all__ = ["run_learning_curve", "main"]

_N_CLUSTERS = 6
_DURATION_MS = 10_000.0


def _trace(seed: int):
    return SyntheticTrace(
        TraceConfig(
            n_clusters=_N_CLUSTERS,
            duration_ms=_DURATION_MS,
            lc_peak_rps=12.0,
            be_peak_rps=10.0,
            seed=seed,
        )
    ).generate()


def _system(be_scheduler=None, be_policy="dcg-be", seed=5):
    config = TangoConfig.tango(
        lc_policy="k8s-native",
        be_policy=be_policy,
        topology=TopologyConfig(
            n_clusters=_N_CLUSTERS, workers_per_cluster=3, seed=seed
        ),
        runner=RunnerConfig(duration_ms=_DURATION_MS),
    )
    return TangoSystem(config, be_scheduler=be_scheduler)


def run_learning_curve(episodes: int = 6, seed: int = 5) -> Dict[str, List[float]]:
    scheduler = DCGBEScheduler(DCGBEConfig(seed=seed))
    learned: List[float] = []
    static: List[float] = []
    for episode in range(episodes):
        trace = _trace(300 + episode)
        learned.append(float(_system(scheduler).run(trace).be_throughput))
        static.append(
            float(_system(be_policy="k8s-native").run(trace).be_throughput)
        )
    cumulative = [
        sum(learned[: i + 1]) / (i + 1) for i in range(len(learned))
    ]
    return {
        "dcg_be": learned,
        "k8s_native": static,
        "dcg_be_cumulative_mean": cumulative,
    }


def main(scale_name: str = "small") -> Dict[str, List[float]]:
    del scale_name
    result = run_learning_curve()
    rows = [
        {
            "episode": i,
            "dcg_be": result["dcg_be"][i],
            "dcg_be_cum_mean": result["dcg_be_cumulative_mean"][i],
            "k8s_native": result["k8s_native"][i],
        }
        for i in range(len(result["dcg_be"]))
    ]
    print_table("DCG-BE online learning curve (Fig. 11(c) time axis)", rows)
    return result


if __name__ == "__main__":
    main()
