"""Figure 13 — Tango vs CERES vs DSACO on large-scale hybrid clusters (§7.3).

The paper's headline comparison on the dual-space testbed:

* **resource utilisation** (b, c, d): Tango high and flexible; CERES lower
  ("poor resource utilization with inflexibility"); headline **+36.9 %**
  for Tango over CERES;
* **LC QoS-guarantee satisfaction rate** (e): Tango better and more stable
  than DSACO; headline **+11.3 %**;
* **long-term BE throughput** (f): Tango's DCG-BE + HRM over CERES by
  **+47.6 %**.

Each system runs the same trace on the same (heterogeneous, multi-cluster)
topology; only the stack differs:

* Tango    = HRM + DSS-LC + DCG-BE (+ re-assurance)
* CERES    = local elastic manager + K8s-native dispatch both sides
* DSACO    = static manager + distributed SAC offloading both sides
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem

from .common import SCALES, Scale, print_table, scaled_config
from .fig11 import _trace_for

__all__ = ["run_fig13", "main"]

SYSTEMS = ("tango", "ceres", "dsaco")


def _build(name: str, scale: Scale, seed: int) -> TangoSystem:
    factory = {
        "tango": TangoConfig.tango,
        "ceres": TangoConfig.ceres,
        "dsaco": TangoConfig.dsaco,
    }[name]
    return TangoSystem(scaled_config(factory, scale, seed=seed))


def run_fig13(scale_name: str = "constrained", seed: int = 1) -> Dict[str, object]:
    scale = SCALES[scale_name]
    result: Dict[str, object] = {}
    for name in SYSTEMS:
        if name == "tango":
            # warm the DCG-BE policy once, as in the fig-11 learning arms
            warm = _build(name, scale, seed)
            warm.run(_trace_for(scale, 100))
            system = TangoSystem(
                scaled_config(TangoConfig.tango, scale, seed=seed),
                be_scheduler=warm.be_scheduler,
            )
        else:
            system = _build(name, scale, seed)
        metrics = system.run(_trace_for(scale, seed))
        result[name] = {
            "utilization": metrics.mean_utilization,
            "utilization_series": metrics.utilization,
            "qos_rate": metrics.qos_satisfaction_rate,
            "qos_series": metrics.qos_rate_per_period,
            "throughput": float(metrics.be_throughput),
            "throughput_series": metrics.be_completed_per_period,
            "abandoned": metrics.lc_abandoned,
        }
    return result


def main(scale_name: str = "constrained") -> Dict[str, object]:
    result = run_fig13(scale_name)
    rows = [
        {
            "system": name,
            "utilization": result[name]["utilization"],
            "qos_rate": result[name]["qos_rate"],
            "throughput": result[name]["throughput"],
        }
        for name in SYSTEMS
    ]
    print_table("Figure 13: Tango vs CERES vs DSACO", rows)
    tango, ceres, dsaco = (result[n] for n in SYSTEMS)
    print(
        f"utilization vs CERES: +{(tango['utilization'] / max(ceres['utilization'], 1e-9) - 1) * 100:.1f}% "
        "(paper: +36.9%)"
    )
    print(
        f"QoS rate vs DSACO: +{(tango['qos_rate'] / max(dsaco['qos_rate'], 1e-9) - 1) * 100:.1f}% "
        "(paper: +11.3%)"
    )
    print(
        f"throughput vs CERES: +{(tango['throughput'] / max(ceres['throughput'], 1e-9) - 1) * 100:.1f}% "
        "(paper: +47.6%)"
    )
    return result


if __name__ == "__main__":
    main()
