"""§7.2 DSS-LC decision-latency scaling.

"DSS-LC is also ideal for timely performance, with a response time of
1.99 ms for a node size of 500 and 3.98 ms for a node size of 1000, which is
less than 2 % of the QoS target."

The harness sweeps the node count and times one full dispatch decision
(graph construction + min-cost max-flow solve) per size.  The shape that
must hold: near-linear growth, with the 1000-node decision roughly twice
the 500-node one and both far below the smallest LC QoS target (250 ms).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.state_storage import NodeSnapshot, SystemSnapshot
from repro.scheduling.dss_lc import DSSLCScheduler
from repro.sim.request import ServiceRequest
from repro.workloads.spec import ServiceKind, default_catalog

from .common import print_table

__all__ = ["run_dss_latency", "main"]

_LC = next(s for s in default_catalog() if s.kind is ServiceKind.LC)


def _snapshot(n_nodes: int, rng: np.random.Generator) -> SystemSnapshot:
    nodes = [
        NodeSnapshot(
            name=f"n{i}",
            cluster_id=0,
            cpu_total=8.0,
            cpu_available=float(rng.uniform(0.5, 8.0)),
            mem_total=16384.0,
            mem_available=float(rng.uniform(1024.0, 16384.0)),
            lc_queue=0,
            be_queue=0,
            running=0,
            min_slack=1.0,
        )
        for i in range(n_nodes)
    ]
    return SystemSnapshot(
        time_ms=0.0, nodes=nodes, delay_ms=[[1.0]], central_cluster_id=0
    )


def run_dss_latency(
    node_counts: Sequence[int] = (100, 250, 500, 1000),
    n_requests: int = 50,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[int, float]:
    rng = np.random.default_rng(seed)
    result: Dict[int, float] = {}
    for n in node_counts:
        scheduler = DSSLCScheduler()
        snapshot = _snapshot(n, rng)
        for _ in range(repeats):
            requests = [
                ServiceRequest(spec=_LC, origin_cluster=0, arrival_ms=0.0)
                for _ in range(n_requests)
            ]
            scheduler.dispatch(0, requests, snapshot, [0], 0.0)
        result[n] = scheduler.mean_decision_latency_ms()
    return result


def main(scale_name: str = "small") -> Dict[int, float]:
    del scale_name
    result = run_dss_latency()
    rows = [
        {
            "nodes": n,
            "decision_ms": latency,
            "paper": "1.99 ms @500 / 3.98 ms @1000",
        }
        for n, latency in result.items()
    ]
    print_table("§7.2 DSS-LC decision latency vs node count", rows)
    return result


if __name__ == "__main__":
    main()
