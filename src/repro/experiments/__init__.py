"""Experiment harnesses: one module per paper figure/table.

Each module exposes ``run_*`` functions returning plain dicts (what the
benchmarks assert on) and a ``main(scale_name)`` that prints the same rows
the paper's figure reports.  See EXPERIMENTS.md for the paper-vs-measured
record and benchmarks/ for the shape assertions.

| module | reproduces |
|---|---|
| ``fig1`` | Fig. 1 — industrial edge-cloud measurement |
| ``fig9`` | Fig. 9 — HRM vs K8s-native under P1/P2/P3 |
| ``fig10`` | Fig. 10 — QoS re-assurance on/off |
| ``fig11`` | Fig. 11(a-d) — scheduler comparisons + GNN ablation |
| ``fig12`` | Fig. 12 — LC × BE pairing matrix |
| ``fig13`` | Fig. 13 — Tango vs CERES vs DSACO |
| ``dvpa_latency`` | §7.1 — D-VPA vs delete-and-rebuild latency |
| ``dss_latency`` | §7.2 — DSS-LC decision time vs node count |
| ``elasticity`` | §2.1 — HPA vs native VPA vs D-VPA under a load step |
| ``scale_expansion`` | §7.3 — behaviour vs system size |
| ``learning_curve`` | Fig. 11(c) time axis — online training |
| ``ablations`` | design-choice sensitivity (thresholds, preemption, η, coordination) |
"""

from . import common

__all__ = ["common"]
