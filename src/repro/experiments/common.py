"""Shared plumbing for the per-figure experiment harnesses.

Every experiment module exposes ``run_*(scale=...)`` returning a plain dict
of series/summaries (so benchmarks can assert on shapes) plus a ``main()``
that prints the same rows the paper's figure/table reports.

Scales:

* ``"small"`` — CI-sized: a few clusters, tens of seconds of trace.  This is
  what the benchmark suite runs; shapes (orderings, rough factors) hold.
* ``"paper"`` — closer to the paper's hybrid testbed (more clusters, longer
  trace).  Slower; for manual runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.metrics.collectors import RunMetrics
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

__all__ = [
    "Scale",
    "SCALES",
    "build_and_run",
    "scaled_config",
    "normalize",
    "print_table",
]


@dataclass(frozen=True)
class Scale:
    name: str
    n_clusters: int
    workers_per_cluster: Optional[int]
    duration_ms: float
    lc_peak_rps: float
    be_peak_rps: float


SCALES: Dict[str, Scale] = {
    "tiny": Scale("tiny", 3, 3, 10_000.0, 28.0, 8.0),
    "small": Scale("small", 4, 4, 20_000.0, 30.0, 8.0),
    # the paper's twin space is 104 clusters / ~1000 nodes; "paper" keeps the
    # heterogeneous 3-20 workers per cluster draw at a runnable size
    # multi-cluster heterogeneous regime for the BE-side experiments:
    # geographic load skew over many small clusters is where inter-cluster
    # scheduling separates (§7.2-7.3)
    "multi": Scale("multi", 8, None, 15_000.0, 12.0, 10.0),
    # resource-constrained multi-cluster regime (the paper's premise: edges
    # are scarce); used by the Fig. 13 state-of-the-art comparison
    "constrained": Scale("constrained", 8, 3, 15_000.0, 25.0, 10.0),
    "paper": Scale("paper", 20, None, 60_000.0, 30.0, 8.0),
}


def build_and_run(
    config: TangoConfig,
    scale: Scale,
    *,
    trace_seed: int = 1,
    trace: Optional[Sequence] = None,
) -> RunMetrics:
    """Run one system configuration against the scale's canonical trace."""
    if trace is None:
        trace = SyntheticTrace(
            TraceConfig(
                n_clusters=scale.n_clusters,
                duration_ms=scale.duration_ms,
                lc_peak_rps=scale.lc_peak_rps,
                be_peak_rps=scale.be_peak_rps,
                seed=trace_seed,
            )
        ).generate()
    system = TangoSystem(config)
    return system.run(trace)


def scaled_config(factory, scale: Scale, *, seed: int = 1, **overrides) -> TangoConfig:
    overrides.setdefault(
        "topology",
        TopologyConfig(
            n_clusters=scale.n_clusters,
            workers_per_cluster=scale.workers_per_cluster,
            seed=seed,
        ),
    )
    overrides.setdefault("runner", RunnerConfig(duration_ms=scale.duration_ms))
    return factory(**overrides)


def normalize(values: Dict[str, float]) -> Dict[str, float]:
    """Normalise a metric dict to its maximum (the paper's figure style)."""
    peak = max(values.values()) if values else 1.0
    if peak <= 0:
        return {k: 0.0 for k in values}
    return {k: v / peak for k, v in values.items()}


def print_table(title: str, rows: List[Dict[str, object]]) -> None:
    """Render rows as an aligned text table (the bench harness output)."""
    if not rows:
        print(f"{title}: (no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r[c])) for r in rows)) for c in columns
    }
    print(f"\n== {title} ==")
    print("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
