"""Scale-expansion study — §7's third evaluation question.

"Can Tango adapt to system scale expansion?"  The paper answers by moving
from the 4 physical clusters to the 104-cluster hybrid testbed.  This
harness sweeps the cluster count while holding per-cluster load constant
and checks that Tango's quality metrics hold (or improve — more nearby
clusters give DSS-LC more spill options) and that decision overheads grow
gracefully:

* LC QoS-guarantee satisfaction rate per system size;
* per-dispatch DSS-LC decision latency (must stay ≪ QoS targets);
* BE throughput per node (work-conserving scaling — no central bottleneck).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.topology import TopologyConfig
from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.sim.runner import RunnerConfig
from repro.workloads.trace import SyntheticTrace, TraceConfig

from .common import print_table

__all__ = ["run_scale_expansion", "main"]

_DURATION_MS = 10_000.0
_LC_RPS = 18.0
_BE_RPS = 6.0


def run_scale_expansion(
    cluster_counts: Sequence[int] = (2, 4, 8, 16),
    seed: int = 1,
) -> Dict[int, Dict[str, float]]:
    result: Dict[int, Dict[str, float]] = {}
    for n in cluster_counts:
        config = TangoConfig.tango(
            topology=TopologyConfig(
                n_clusters=n, workers_per_cluster=3, seed=seed,
                region_km=1200.0,
            ),
            runner=RunnerConfig(duration_ms=_DURATION_MS),
        )
        trace = SyntheticTrace(
            TraceConfig(
                n_clusters=n,
                duration_ms=_DURATION_MS,
                lc_peak_rps=_LC_RPS,
                be_peak_rps=_BE_RPS,
                seed=seed,
            )
        ).generate()
        system = TangoSystem(config)
        metrics = system.run(trace)
        n_nodes = system.system.total_nodes()
        result[n] = {
            "nodes": float(n_nodes),
            "qos_rate": metrics.qos_satisfaction_rate,
            "throughput_per_node": metrics.be_throughput / max(1, n_nodes),
            "dss_decision_ms": system.lc_scheduler.mean_decision_latency_ms(),
            "utilization": metrics.mean_utilization,
        }
    return result


def main(scale_name: str = "small") -> Dict[int, Dict[str, float]]:
    del scale_name
    result = run_scale_expansion()
    rows = [
        {"clusters": n, **{k: v for k, v in stats.items()}}
        for n, stats in result.items()
    ]
    print_table("§7.3 scale expansion: Tango vs system size", rows)
    return result


if __name__ == "__main__":
    main()
