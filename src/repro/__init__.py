"""repro — reproduction of Tango (ICPP 2023).

Tango: Harmonious Management and Scheduling for Mixed Services Co-located
among Distributed Edge-Clouds (Feng et al., ICPP 2023).

Public API highlights::

    from repro import TangoSystem, TangoConfig
    from repro.workloads.trace import SyntheticTrace, TraceConfig

    system = TangoSystem(TangoConfig.tango())
    metrics = system.run(SyntheticTrace(TraceConfig()).generate())
"""

from repro.core.config import TangoConfig
from repro.core.tango import TangoSystem
from repro.cluster.resources import ResourceKind, ResourceVector
from repro.metrics.collectors import RunMetrics

__version__ = "1.0.0"

__all__ = [
    "TangoConfig",
    "TangoSystem",
    "ResourceKind",
    "ResourceVector",
    "RunMetrics",
    "__version__",
]
